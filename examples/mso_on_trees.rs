//! Theorem 2.2 end-to-end: constant-size certification of MSO properties
//! on trees, with the automaton run laid out as certificates.
//!
//! ```text
//! cargo run --example mso_on_trees
//! ```

use locert::automata::library;
use locert::automata::trees::LabeledTree;
use locert::cert::schemes::mso_tree::MsoTreeScheme;
use locert::cert::{run_scheme, Instance};
use locert::graph::{generators, IdAssignment, NodeId, RootedTree};

fn main() {
    println!("== Theorem 2.2: MSO on trees, O(1)-bit certificates ==\n");

    // The property: "the tree has a perfect matching" — an MSO property
    // recognized by a 3-state tree automaton (states U / M / reject).
    let automaton = library::has_perfect_matching();
    println!(
        "automaton: {} states, deterministic = {}",
        automaton.num_states(),
        automaton.is_deterministic()
    );

    // Show the accepting run on a small tree.
    let g = generators::path(6);
    let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
    let run = automaton
        .accepting_run(&LabeledTree::unlabeled(rooted))
        .expect("P_6 has a perfect matching");
    println!("accepting run on P_6 (0=U needs parent, 1=M matched): {run:?}\n");

    // Certify across growing sizes: the size column never moves.
    let scheme = MsoTreeScheme::new(automaton);
    println!("{:>8} | certificate bits", "n");
    println!("---------|----------------");
    for exp in [4u32, 6, 8, 10, 12] {
        let n = 1usize << exp; // even, so P_n has a perfect matching.
        let g = generators::path(n);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let out = run_scheme(&scheme, &inst).expect("yes-instance");
        assert!(out.accepted());
        println!("{n:>8} | {}", out.max_bits());
    }

    // A no-instance: odd paths have no perfect matching; the prover has
    // nothing to hand out.
    let g = generators::path(9);
    let ids = IdAssignment::contiguous(9);
    let inst = Instance::new(&g, &ids);
    println!(
        "\nP_9 (no perfect matching): prover answers {:?}",
        run_scheme(&scheme, &inst).expect_err("refused")
    );

    // A nondeterministic property: "some leaf at depth exactly 2".
    let nd = MsoTreeScheme::new(library::some_leaf_at_depth(2));
    let spider = generators::spider(4, 2);
    let ids = IdAssignment::contiguous(spider.num_nodes());
    let inst = Instance::new(&spider, &ids);
    let out = run_scheme(&nd, &inst).expect("spider legs end at depth 2");
    println!(
        "\nnondeterministic automaton (leaf at depth 2) on a spider: accepted = {}, {} bits",
        out.accepted(),
        out.max_bits()
    );
}
