//! Section 4 warm-up: compile an MSO sentence about words into an NFA
//! (Büchi–Elgot–Trakhtenbrot) and certify it on a labeled path graph with
//! constant-size certificates.
//!
//! ```text
//! cargo run --example words_on_paths
//! ```

use locert::automata::mso_words::{compile, eval_word_formula, PosVar, WordFormula};
use locert::cert::schemes::word_path::WordPathScheme;
use locert::cert::{run_scheme, Instance};
use locert::graph::{generators, IdAssignment};

fn main() {
    println!("== MSO on words → NFA → certification on paths ==\n");

    // φ = "no two consecutive 1s".
    let phi = WordFormula::Not(Box::new(WordFormula::Exists(
        PosVar(0),
        Box::new(WordFormula::Exists(
            PosVar(1),
            Box::new(WordFormula::And(
                Box::new(WordFormula::Succ(PosVar(0), PosVar(1))),
                Box::new(WordFormula::And(
                    Box::new(WordFormula::Letter(PosVar(0), 1)),
                    Box::new(WordFormula::Letter(PosVar(1), 1)),
                )),
            )),
        )),
    )));
    let nfa = compile(&phi, 2).expect("compiles");
    println!(
        "compiled NFA: {} states over alphabet {{0, 1}}",
        nfa.num_states()
    );

    // Cross-check compiler vs. brute-force semantics on all words ≤ 8.
    let mut checked = 0;
    for len in 0..=8usize {
        for bits in 0..(1u32 << len) {
            let word: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
            assert_eq!(nfa.accepts(&word), eval_word_formula(&word, &phi));
            checked += 1;
        }
    }
    println!("compiler validated against brute force on {checked} words\n");

    // Certify on labeled paths of growing size: constant certificates.
    let scheme = WordPathScheme::new(nfa);
    println!("{:>8} | certificate bits", "n");
    println!("---------|----------------");
    for exp in [4u32, 8, 12] {
        let n = 1usize << exp;
        let g = generators::path(n);
        let ids = IdAssignment::contiguous(n);
        let letters: Vec<usize> = (0..n).map(|i| usize::from(i % 3 == 0)).collect();
        let inst = Instance::with_inputs(&g, &ids, &letters);
        let out = run_scheme(&scheme, &inst).expect("1s are isolated");
        assert!(out.accepted());
        println!("{n:>8} | {}", out.max_bits());
    }

    // And a word that violates the property.
    let g = generators::path(5);
    let ids = IdAssignment::contiguous(5);
    let letters = [0usize, 1, 1, 0, 0];
    let inst = Instance::with_inputs(&g, &ids, &letters);
    println!(
        "\nword 01100: prover answers {:?}",
        run_scheme(&scheme, &inst).expect_err("refused")
    );
}
