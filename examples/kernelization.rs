//! Theorem 2.6 end-to-end: certify an FO property of a bounded-treedepth
//! graph through the k-reduced kernel, and inspect the kernel itself.
//!
//! ```text
//! cargo run --example kernelization
//! ```

use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::kernel_mso::KernelMsoScheme;
use locert::cert::{run_scheme, Instance};
use locert::graph::{generators, IdAssignment};
use locert::kernel::{k_reduce, TypeId};
use locert::logic::ef::duplicator_wins;
use locert::logic::{eval, props};
use locert::treedepth::EliminationTree;

fn main() {
    println!("== Theorem 2.6: FO certification via certified kernels ==\n");

    // A big star: treedepth 2, and it satisfies "some vertex dominates".
    let n = 1000;
    let g = generators::star(n);
    let phi = props::has_dominating_vertex();
    println!("graph: star on {n} vertices; φ = {phi}");

    // The kernelization by hand (Section 6): with k = quantifier depth 2,
    // all but 2 leaves are pruned.
    let mut parents = vec![Some(0); n];
    parents[0] = None;
    let model = EliminationTree::new(&g, &parents).unwrap();
    let red = k_reduce(&g, &model, 2);
    println!(
        "k-reduction (k = 2): kernel has {} vertices, {} end types, {} pruned subtrees",
        red.kernel_size(),
        red.types.len(),
        red.pruned.iter().filter(|&&p| p).count()
    );
    for i in 0..red.types.len() {
        let data = red.types.get(TypeId(i as u32));
        println!(
            "  type {i}: depth {}, ancestor vector {:?}, children {:?}",
            data.ancestors.len(),
            data.ancestors,
            data.children
        );
    }

    // Proposition 6.3: G ≃_2 H — the kernel satisfies the same depth-2
    // sentences. (EF games need small graphs, so check on a small star.)
    let small = generators::star(9);
    let mut sp = vec![Some(0); 9];
    sp[0] = None;
    let small_model = EliminationTree::new(&small, &sp).unwrap();
    let small_red = k_reduce(&small, &small_model, 2);
    println!(
        "\nEF check on star(9): G ≃_2 H = {}",
        duplicator_wins(&small, &small_red.kernel, 2)
    );
    println!(
        "φ on G: {}, φ on H: {}",
        eval::models(&small, &phi),
        eval::models(&small_red.kernel, &phi)
    );

    // The full certified pipeline.
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = KernelMsoScheme::new(id_bits_for(&inst), 2, phi).expect("FO sentence");
    let out = run_scheme(&scheme, &inst).expect("yes-instance");
    println!(
        "\ncertified: accepted = {}, certificate size = {} bits \
         (t·log2 n = {:.1} plus the constant kernel table)",
        out.accepted(),
        out.max_bits(),
        2.0 * (n as f64).log2()
    );
}
