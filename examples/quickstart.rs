//! Quickstart: certify a spanning tree and a treedepth bound, watch a
//! corrupted certificate get caught.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::spanning_tree::SpanningTreeScheme;
use locert::cert::schemes::treedepth::TreedepthScheme;
use locert::cert::{run_scheme, run_verification, Instance, Prover};
use locert::graph::{generators, IdAssignment, NodeId};

fn main() {
    // A path on 15 vertices: treedepth ⌈log₂ 16⌉ = 4.
    let n = 15;
    let g = generators::path(n);
    let ids = IdAssignment::contiguous(n);
    let instance = Instance::new(&g, &ids);
    println!("graph: P_{n} ({} edges)", g.num_edges());

    // 1. Certify a spanning tree (Proposition 3.4).
    let st = SpanningTreeScheme::new(id_bits_for(&instance));
    let outcome = run_scheme(&st, &instance).expect("connected graph");
    println!(
        "spanning tree certified: accepted = {}, certificate size = {} bits",
        outcome.accepted(),
        outcome.max_bits()
    );

    // 2. Certify treedepth ≤ 4 (Theorem 2.4).
    let td = TreedepthScheme::new(id_bits_for(&instance), 4);
    let outcome = run_scheme(&td, &instance).expect("td(P_15) = 4");
    println!(
        "treedepth <= 4 certified: accepted = {}, certificate size = {} bits (t·log2 n = {:.1})",
        outcome.accepted(),
        outcome.max_bits(),
        4.0 * (n as f64).log2()
    );

    // 3. Treedepth ≤ 3 is false — the prover refuses.
    let td3 = TreedepthScheme::new(id_bits_for(&instance), 3);
    println!(
        "treedepth <= 3: prover says {:?}",
        run_scheme(&td3, &instance).expect_err("no-instance")
    );

    // 4. Corrupt an honest certificate: some vertex rejects.
    let honest = td.assign(&instance).expect("yes-instance");
    let mut forged = honest.clone();
    let victim = NodeId(7);
    let cert = forged.cert(victim).clone();
    *forged.cert_mut(victim) = cert.with_bit_flipped(3);
    let outcome = run_verification(&td, &instance, &forged);
    println!(
        "after flipping one bit of vertex {victim}: accepted = {}, rejecting vertices = {:?}",
        outcome.accepted(),
        outcome.rejecting()
    );
}
