//! Section 7 end-to-end: the matching gadget of Theorem 2.5, its
//! treedepth dichotomy, the cops-and-robber replay, and the EQUALITY
//! fooling attack behind Theorem 7.1.
//!
//! ```text
//! cargo run --example lower_bounds
//! ```

use locert::graph::NodeId;
use locert::lb::bounds::treedepth_rate;
use locert::lb::cc::{decides_equality, fooling_attack, CopyProtocol, TruncatedProtocol};
use locert::lb::treedepth_gadget::{build_gadget, matching_bits};
use locert::treedepth::cops::{best_escape_robber, cop_number, play_optimal_cops};
use locert::treedepth::treedepth_exact;

fn main() {
    println!("== Theorem 2.5: treedepth <= 5 needs Ω(log n) bits ==\n");

    // The gadget at matching size 2 (17 vertices).
    let (equal, _) = build_gadget(2, &[0, 1], &[0, 1]);
    let (unequal, _) = build_gadget(2, &[0, 1], &[1, 0]);
    println!(
        "equal matchings:   treedepth = {}, cop number = {}",
        treedepth_exact(&equal),
        cop_number(&equal)
    );
    println!(
        "unequal matchings: treedepth = {}, cop number = {}",
        treedepth_exact(&unequal),
        cop_number(&unequal)
    );

    // Figure 4: optimal cops against the best-escaping robber.
    let used = play_optimal_cops(&equal, NodeId(0), best_escape_robber(&equal));
    println!("optimal cop play captures the best escaper with {used} cops\n");

    // The Ω(ℓ/r) rates: ℓ = ⌊log2 n!⌋ bits over r = 4n + 1 interface
    // vertices.
    println!(
        "{:>6} | {:>4} | {:>12} | rate/log2(n)",
        "n", "ℓ", "rate [bits]"
    );
    println!("-------|------|--------------|------------");
    for n in [8usize, 32, 128, 512, 2048] {
        let rate = treedepth_rate(n);
        println!(
            "{n:>6} | {:>4} | {rate:>12.2} | {:.3}",
            matching_bits(n),
            rate / (n as f64).log2()
        );
    }

    // Theorem 7.1 in action: the honest ℓ-bit EQUALITY protocol works;
    // any shorter one is broken by the fooling-set attack.
    println!("\n== Theorem 7.1: EQUALITY needs Ω(ℓ) certificate bits ==\n");
    let l = 4;
    println!(
        "honest {l}-bit protocol decides EQUALITY: {}",
        decides_equality(&CopyProtocol { l }, l).is_ok()
    );
    let broken = TruncatedProtocol { l, m: 2 };
    let (s1, s2, cert) = fooling_attack(&broken, l).expect("pigeonhole");
    println!("2-bit protocol fooled: inputs {s1:?} ≠ {s2:?} share accepting certificate {cert:?}");
}
