//! `locert` — command-line front end for the certification library.
//!
//! ```text
//! locert certify <scheme> <graph-file> [--certs OUT]   prover → certificates
//! locert verify  <scheme> <graph-file> --certs FILE    run every local verifier
//! locert schemes                                       list available schemes
//! ```
//!
//! Graph files use the edge-list format of `locert::graph::io` (lines
//! `u v`, optional `p <n>` header, `#`/`c` comments). Certificates are
//! stored one per line as `<len_bits>:<hex>`, in vertex order.
//!
//! Scheme specifiers:
//!
//! ```text
//! spanning-tree            Proposition 3.4
//! vertex-count             Proposition 3.4 (pins n from the graph file)
//! acyclicity               the graph is a tree
//! tree-diameter:<D>        diameter ≤ D, on trees
//! treedepth:<t>            Theorem 2.4
//! mso:perfect-matching     Theorem 2.2 (tree promise)
//! mso:height:<c>           Theorem 2.2 (tree promise)
//! mso:uniform-leaves:<c>   Theorem 2.2 (tree promise)
//! tree-depth:<k>           rooted depth ≤ k on trees, O(log k) bits
//! dominating               Lemma A.3 (has a dominating vertex)
//! ptfree:<t>               Corollary 2.7 (P_t-minor-free)
//! ctfree:<t>               Corollary 2.7 (C_t-minor-free)
//! fpf-automorphism         universal scheme, Θ̃(n) bits (Theorem 2.3's ceiling)
//! ```

use locert::automata::library;
use locert::cert::bits::Certificate;
use locert::cert::schemes::acyclicity::AcyclicityScheme;
use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::depth2_fo::Depth2FoScheme;
use locert::cert::schemes::minor_free::{CtMinorFreeScheme, PathMinorFreeScheme};
use locert::cert::schemes::mso_tree::MsoTreeScheme;
use locert::cert::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use locert::cert::schemes::tree_depth_bound::TreeDepthBoundScheme;
use locert::cert::schemes::tree_diameter::TreeDiameterScheme;
use locert::cert::schemes::treedepth::TreedepthScheme;
use locert::cert::schemes::universal::fpf_automorphism_scheme;
use locert::cert::{run_verification, Assignment, Instance, Scheme};
use locert::graph::{io, Graph, IdAssignment};
use locert::logic::props;
use std::process::ExitCode;

const SCHEME_HELP: &str = "\
available schemes:
  spanning-tree           O(log n)   Proposition 3.4
  vertex-count            O(log n)   Proposition 3.4
  acyclicity              O(log n)   the graph is a tree
  tree-diameter:<D>       O(log n)   diameter <= D on trees
  treedepth:<t>           O(t log n) Theorem 2.4
  mso:perfect-matching    O(1)       Theorem 2.2 (tree promise)
  mso:height:<c>          O(1)       Theorem 2.2 (tree promise)
  mso:uniform-leaves:<c>  O(1)       Theorem 2.2 (tree promise)
  tree-depth:<k>          O(log k)   rooted depth <= k on trees (§2.4 remark)
  dominating              O(log n)   Lemma A.3
  ptfree:<t>              O(log n)   Corollary 2.7
  ctfree:<t>              O(log n)   Corollary 2.7 (block promise, see docs)
  fpf-automorphism        ~n^2       universal scheme (Theorem 2.3 ceiling)";

fn build_scheme(spec: &str, id_bits: u32) -> Result<Box<dyn Scheme>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let param = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("scheme `{spec}` needs a parameter\n{SCHEME_HELP}"))?
            .parse()
            .map_err(|_| format!("invalid parameter in `{spec}`"))
    };
    Ok(match parts[0] {
        "spanning-tree" => Box::new(SpanningTreeScheme::new(id_bits)),
        "vertex-count" => Box::new(VertexCountScheme::any_count(id_bits)),
        "acyclicity" => Box::new(AcyclicityScheme::new(id_bits)),
        "tree-diameter" => Box::new(TreeDiameterScheme::new(id_bits, param(1)? as u64)),
        "treedepth" => Box::new(TreedepthScheme::new(id_bits, param(1)?)),
        "tree-depth" => Box::new(TreeDepthBoundScheme::new(param(1)?)),
        "mso" => match parts.get(1) {
            Some(&"perfect-matching") => {
                Box::new(MsoTreeScheme::new(library::has_perfect_matching()))
            }
            Some(&"height") => Box::new(MsoTreeScheme::new(library::height_at_most(param(2)?))),
            Some(&"uniform-leaves") => {
                Box::new(MsoTreeScheme::new(library::uniform_leaf_depth(param(2)?)))
            }
            _ => return Err(format!("unknown MSO property in `{spec}`\n{SCHEME_HELP}")),
        },
        "dominating" => Box::new(
            Depth2FoScheme::from_formula(id_bits, &props::has_dominating_vertex())
                .expect("depth-2 sentence"),
        ),
        "ptfree" => Box::new(PathMinorFreeScheme::new(id_bits, param(1)?)),
        "ctfree" => Box::new(CtMinorFreeScheme::new(id_bits, param(1)?)),
        "fpf-automorphism" => Box::new(fpf_automorphism_scheme(id_bits)),
        _ => return Err(format!("unknown scheme `{spec}`\n{SCHEME_HELP}")),
    })
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g = io::parse_edge_list(&text).map_err(|e| format!("{path}: {e}"))?;
    if g.num_nodes() == 0 {
        return Err("graph is empty".into());
    }
    if !g.is_connected() {
        return Err("graph is disconnected (the model assumes connectivity)".into());
    }
    Ok(g)
}

fn cmd_certify(spec: &str, graph_path: &str, certs_out: Option<&str>) -> Result<(), String> {
    let g = load_graph(graph_path)?;
    let ids = IdAssignment::contiguous(g.num_nodes());
    let inst = Instance::new(&g, &ids);
    let scheme = build_scheme(spec, id_bits_for(&inst))?;
    let assignment = scheme.assign(&inst).map_err(|e| format!("prover: {e}"))?;
    let outcome = run_verification(scheme.as_ref(), &inst, &assignment);
    println!(
        "scheme {}: n = {}, certificate size = {} bits (total {} bits), verification: {}",
        scheme.name(),
        g.num_nodes(),
        assignment.max_bits(),
        assignment.total_bits(),
        if outcome.accepted() {
            "all accept"
        } else {
            "REJECTED (bug!)"
        }
    );
    if let Some(path) = certs_out {
        let mut text = String::new();
        for v in g.nodes() {
            text.push_str(&assignment.cert(v).to_hex());
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("certificates written to {path}");
    }
    if !outcome.accepted() {
        return Err("honest certificates were rejected — please report this".into());
    }
    Ok(())
}

fn cmd_verify(spec: &str, graph_path: &str, certs_path: &str) -> Result<(), String> {
    let g = load_graph(graph_path)?;
    let ids = IdAssignment::contiguous(g.num_nodes());
    let inst = Instance::new(&g, &ids);
    let scheme = build_scheme(spec, id_bits_for(&inst))?;
    let text = std::fs::read_to_string(certs_path)
        .map_err(|e| format!("cannot read {certs_path}: {e}"))?;
    let certs: Vec<Certificate> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            Certificate::from_hex(line.trim())
                .ok_or_else(|| format!("{certs_path}: line {} is not a certificate", i + 1))
        })
        .collect::<Result<_, _>>()?;
    if certs.len() != g.num_nodes() {
        return Err(format!(
            "{} certificates for {} vertices",
            certs.len(),
            g.num_nodes()
        ));
    }
    let outcome = run_verification(scheme.as_ref(), &inst, &Assignment::new(certs));
    if outcome.accepted() {
        println!("ACCEPTED: every vertex accepts");
        Ok(())
    } else {
        println!("REJECTED by vertices {:?}", outcome.rejecting());
        Err("verification failed".into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("schemes") => {
            println!("{SCHEME_HELP}");
            Ok(())
        }
        Some("certify") if args.len() >= 3 => {
            let certs_out = args
                .iter()
                .position(|a| a == "--certs")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            cmd_certify(&args[1], &args[2], certs_out)
        }
        Some("verify") if args.len() >= 3 => {
            let certs = args
                .iter()
                .position(|a| a == "--certs")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            match certs {
                Some(c) => cmd_verify(&args[1], &args[2], c),
                None => Err("verify needs --certs FILE".into()),
            }
        }
        _ => Err(format!(
            "usage:\n  locert certify <scheme> <graph-file> [--certs OUT]\n  \
             locert verify <scheme> <graph-file> --certs FILE\n  locert schemes\n\n{SCHEME_HELP}"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
