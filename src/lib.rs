//! # locert — compact local certification of MSO properties
//!
//! Umbrella crate for the `locert` workspace, a full reproduction of
//! *"What can be certified compactly? Compact local certification of MSO
//! properties in tree-like graphs"* (Bousquet, Feuilloley, Pierron —
//! PODC 2022).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short module name:
//!
//! - [`graph`]: graphs, rooted trees, canonical forms, generators;
//! - [`logic`]: FO/MSO formulas, model checking, Ehrenfeucht–Fraïssé games;
//! - [`automata`]: word automata and unranked–unordered tree automata;
//! - [`treedepth`]: elimination trees, exact treedepth, cops-and-robber;
//! - [`kernel`]: the Section 6 kernelization (k-reduced graphs);
//! - [`cert`]: the local-certification framework and every scheme in the
//!   paper;
//! - [`lb`]: the Section 7 communication-complexity lower bounds;
//! - [`net`]: seeded message-passing simulation of verification over an
//!   unreliable network (drop/duplicate/reorder/corrupt/crash), with
//!   retransmit, backoff, and the `netstorm` fault campaign.
//!
//! # Quickstart
//!
//! Certify that a path has treedepth at most 3 and verify it locally:
//!
//! ```
//! use locert::cert::schemes::common::id_bits_for;
//! use locert::cert::schemes::treedepth::TreedepthScheme;
//! use locert::cert::{run_scheme, Instance};
//! use locert::graph::{generators, IdAssignment};
//!
//! let g = generators::path(7); // treedepth 3
//! let ids = IdAssignment::contiguous(7);
//! let instance = Instance::new(&g, &ids);
//! let scheme = TreedepthScheme::new(id_bits_for(&instance), 3);
//! let outcome = run_scheme(&scheme, &instance).expect("prover succeeds");
//! assert!(outcome.accepted());
//! ```

pub use locert_automata as automata;
pub use locert_core as cert;
pub use locert_graph as graph;
pub use locert_kernel as kernel;
pub use locert_lb as lb;
pub use locert_logic as logic;
pub use locert_net as net;
pub use locert_treedepth as treedepth;
