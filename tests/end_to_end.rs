//! Integration tests: full certification pipelines across crates, with
//! adversarial identifier assignments and cross-instance replay attacks.

use locert::automata::library;
use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::kernel_mso::KernelMsoScheme;
use locert::cert::schemes::minor_free::PathMinorFreeScheme;
use locert::cert::schemes::mso_tree::MsoTreeScheme;
use locert::cert::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use locert::cert::schemes::treedepth::{ModelStrategy, TreedepthScheme};
use locert::cert::{run_scheme, run_verification, Instance, Prover, ProverError, Scheme};
use locert::graph::{generators, IdAssignment};
use locert::logic::props;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every scheme must be correct under arbitrary (shuffled, gappy)
/// identifier assignments — certification quantifies over all of them.
#[test]
fn schemes_survive_adversarial_identifiers() {
    let mut rng = StdRng::seed_from_u64(2022);
    for trial in 0..5 {
        let n = 20;
        let (g, parents) = generators::random_bounded_treedepth(n, 3, 0.4, &mut rng);
        for ids in [
            IdAssignment::contiguous(n),
            IdAssignment::shuffled(n, &mut rng),
            IdAssignment::random_polynomial(n, 3, &mut rng),
        ] {
            let inst = Instance::new(&g, &ids);
            let b = id_bits_for(&inst);
            let schemes: Vec<Box<dyn Scheme>> = vec![
                Box::new(SpanningTreeScheme::new(b)),
                Box::new(VertexCountScheme::new(b, n as u64)),
                Box::new(
                    TreedepthScheme::new(b, 3)
                        .with_strategy(ModelStrategy::Explicit(parents.clone())),
                ),
            ];
            for scheme in schemes {
                let out = run_scheme(scheme.as_ref(), &inst)
                    .unwrap_or_else(|e| panic!("{} failed: {e} (trial {trial})", scheme.name()));
                assert!(out.accepted(), "{} rejected honest prover", scheme.name());
            }
        }
    }
}

/// Honest certificates for one instance replayed on a different instance
/// (same size, same ids) must be rejected whenever the property fails
/// there.
#[test]
fn cross_instance_replay_rejected() {
    let n = 12;
    let ids = IdAssignment::contiguous(n);
    let star = generators::star(n);
    let path = generators::path(n);
    let inst_star = Instance::new(&star, &ids);
    let inst_path = Instance::new(&path, &ids);
    let b = id_bits_for(&inst_star);

    // Treedepth 2 holds for the star, fails for the path.
    let td = TreedepthScheme::new(b, 2);
    let honest = td.assign(&inst_star).expect("star has treedepth 2");
    assert!(run_verification(&td, &inst_star, &honest).accepted());
    assert!(!run_verification(&td, &inst_path, &honest).accepted());

    // Perfect matching holds for P_12 rooted anywhere, fails for the star
    // (11 leaves).
    let pm = MsoTreeScheme::new(library::has_perfect_matching());
    let honest_pm = pm.assign(&inst_path).expect("P_12 has a PM");
    assert!(run_verification(&pm, &inst_path, &honest_pm).accepted());
    assert!(!run_verification(&pm, &inst_star, &honest_pm).accepted());
}

/// The kernel-MSO scheme decision agrees with brute-force model checking
/// across a randomized workload (the full Theorem 2.6 pipeline).
#[test]
fn kernel_mso_agrees_with_model_checking() {
    let mut rng = StdRng::seed_from_u64(64);
    let phi = props::triangle_free();
    let mut yes = 0;
    let mut no = 0;
    for _ in 0..8 {
        let (g, parents) = generators::random_bounded_treedepth(13, 3, 0.5, &mut rng);
        let ids = IdAssignment::shuffled(13, &mut rng);
        let inst = Instance::new(&g, &ids);
        let scheme = KernelMsoScheme::new(id_bits_for(&inst), 3, phi.clone())
            .expect("FO")
            .with_strategy(ModelStrategy::Explicit(parents));
        let expected = locert::logic::eval::models(&g, &phi);
        match run_scheme(&scheme, &inst) {
            Ok(out) => {
                assert!(out.accepted());
                assert!(expected, "accepted a graph with a triangle");
                yes += 1;
            }
            Err(ProverError::NotAYesInstance) => {
                assert!(!expected, "refused a triangle-free graph");
                no += 1;
            }
            Err(e) => panic!("{e}"),
        }
    }
    assert!(yes + no == 8);
}

/// P_t-minor-freeness certified sizes stay logarithmic while the
/// ground-truth decision matches the exact minor check.
#[test]
fn minor_freeness_pipeline() {
    let mut rng = StdRng::seed_from_u64(65);
    for _ in 0..6 {
        let g = generators::random_tree(14, &mut rng);
        let ids = IdAssignment::contiguous(14);
        let inst = Instance::new(&g, &ids);
        for t in 4..=6 {
            let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), t);
            let expected = !locert::graph::minors::has_path_minor(&g, t);
            match run_scheme(&scheme, &inst) {
                Ok(out) => {
                    assert!(out.accepted());
                    assert!(expected);
                }
                Err(ProverError::NotAYesInstance) => assert!(!expected),
                Err(e) => panic!("{e}"),
            }
        }
    }
}

/// Certificates must parse bit-exactly: appending a spare bit to a
/// certificate is caught by the exhaustion check.
#[test]
fn trailing_garbage_rejected() {
    use locert::cert::bits::BitWriter;
    let n = 8;
    let g = generators::path(n); // td(P_8) = 4.
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = TreedepthScheme::new(id_bits_for(&inst), 4);
    let honest = scheme.assign(&inst).expect("td(P_8) = 4");
    assert!(run_verification(&scheme, &inst, &honest).accepted());
    let mut padded = honest.clone();
    let victim = locert::graph::NodeId(3);
    let mut w = BitWriter::new();
    w.write_cert(padded.cert(victim));
    w.write_bit(true);
    *padded.cert_mut(victim) = w.finish();
    assert!(!run_verification(&scheme, &inst, &padded).accepted());
}

/// Scheme composition sanity: a scheme accepted on one graph class keeps
/// rejecting on another after honest-certificate mutations.
#[test]
fn mutation_storm() {
    use locert::cert::attacks::mutation_attacks;
    let mut rng = StdRng::seed_from_u64(66);
    let n = 10;
    let even_path = generators::path(n); // PM exists.
    let star = generators::star(n); // no PM.
    let ids = IdAssignment::contiguous(n);
    let inst_yes = Instance::new(&even_path, &ids);
    let inst_no = Instance::new(&star, &ids);
    let scheme = MsoTreeScheme::new(library::has_perfect_matching());
    let base = scheme.assign(&inst_yes).expect("yes");
    assert!(
        mutation_attacks(&scheme, &inst_no, &base, &mut rng, 600).is_none(),
        "a mutated perfect-matching certificate fooled the verifier on a star"
    );
}
