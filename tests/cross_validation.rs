//! Cross-validation: independent implementations of the same quantity
//! must agree (solvers, automata vs. logic, games vs. recursion).

use locert::automata::library;
use locert::automata::trees::LabeledTree;
use locert::graph::{generators, Graph, NodeId, RootedTree};
use locert::kernel::k_reduce;
use locert::logic::ef::duplicator_wins;
use locert::logic::{eval, props};
use locert::treedepth::cops::cop_number;
use locert::treedepth::{bounds, optimal_elimination_tree, treedepth_exact, EliminationTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact treedepth = cops-and-robber game value = closed forms, over a
/// zoo of graphs.
#[test]
fn treedepth_solvers_agree() {
    let mut rng = StdRng::seed_from_u64(70);
    let mut zoo: Vec<Graph> = vec![
        generators::path(9),
        generators::cycle(7),
        generators::star(8),
        generators::clique(5),
        generators::spider(3, 3),
        generators::complete_kary_tree(2, 3),
    ];
    for _ in 0..6 {
        zoo.push(generators::random_connected(9, 4, &mut rng));
    }
    for g in &zoo {
        let exact = treedepth_exact(g);
        assert_eq!(exact, cop_number(g), "cops disagree on {g:?}");
        let model = optimal_elimination_tree(g);
        assert_eq!(model.height(), exact, "model height disagrees on {g:?}");
    }
    for n in 1..=18 {
        assert_eq!(
            treedepth_exact(&generators::path(n)),
            bounds::treedepth_of_path(n)
        );
    }
    for n in 3..=14 {
        assert_eq!(
            treedepth_exact(&generators::cycle(n)),
            bounds::treedepth_of_cycle(n)
        );
    }
}

/// Tree automata vs. brute-force MSO model checking: "height ≤ c" is an
/// MSO property of the *rooted* tree; compare the automaton against the
/// direct structural computation and (for the unrooted diameter proxy)
/// the logic evaluator against BFS.
#[test]
fn automata_agree_with_structures() {
    let mut rng = StdRng::seed_from_u64(71);
    for _ in 0..25 {
        let n = 1 + rand::RngExt::random_range(&mut rng, 0..11usize);
        let g = generators::random_tree(n, &mut rng);
        let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        let height = rooted.height() + 1;
        let max_kids = g
            .nodes()
            .map(|v| rooted.children(v).len())
            .max()
            .unwrap_or(0);
        let t = LabeledTree::unlabeled(rooted);
        for c in 1..=5 {
            assert_eq!(
                library::height_at_most(c).accepts(&t),
                height <= c,
                "height automaton, n = {n}, c = {c}"
            );
        }
        for d in 1..=4 {
            assert_eq!(
                library::max_children_at_most(d).accepts(&t),
                max_kids <= d,
                "arity automaton, n = {n}, d = {d}"
            );
        }
    }
}

/// The logic evaluator vs. direct graph algorithms on FO-expressible
/// facts.
#[test]
fn logic_agrees_with_graph_algorithms() {
    use locert::graph::traversal;
    let mut rng = StdRng::seed_from_u64(72);
    for _ in 0..10 {
        let g = generators::random_connected(8, 4, &mut rng);
        // Diameter ≤ 2.
        assert_eq!(
            eval::models(&g, &props::diameter_at_most_2()),
            traversal::diameter(&g).unwrap() <= 2
        );
        // Triangle-freeness vs circumference.
        assert_eq!(
            eval::models(&g, &props::triangle_free()),
            !locert::graph::minors::has_cycle_at_least(&g, 3, 3)
        );
        // Path containment.
        for t in 2..=5 {
            assert_eq!(
                eval::models(&g, &props::has_path(t)),
                locert::graph::minors::has_path_of_order(&g, t)
            );
        }
    }
}

/// EF-equivalence of kernels implies agreement on concrete sentences of
/// the right depth — the full Proposition 6.3 statement, spot-checked.
#[test]
fn kernel_preserves_low_depth_sentences() {
    let mut rng = StdRng::seed_from_u64(73);
    let sentences = [
        props::has_dominating_vertex(), // depth 2
        props::is_clique(),             // depth 2
        props::min_degree_1(),          // depth 2
    ];
    for _ in 0..6 {
        let (g, parents) = generators::random_bounded_treedepth(12, 3, 0.5, &mut rng);
        let model = EliminationTree::new(&g, &parents)
            .unwrap()
            .make_coherent(&g);
        let red = k_reduce(&g, &model, 2);
        assert!(duplicator_wins(&g, &red.kernel, 2));
        for phi in &sentences {
            assert_eq!(
                eval::models(&g, phi),
                eval::models(&red.kernel, phi),
                "kernel disagrees on {phi}"
            );
        }
    }
}

/// Word-automata closure laws: De Morgan over random regular languages
/// built from the library pieces.
#[test]
fn word_automata_boolean_laws() {
    use locert::automata::words::{Dfa, Nfa};
    let even_ones = Dfa::new(2, 2, 0, vec![true, false], vec![vec![0, 1], vec![1, 0]]).unwrap();
    let ends_one = Dfa::new(2, 2, 0, vec![false, true], vec![vec![0, 1], vec![0, 1]]).unwrap();
    // ¬(A ∪ B) ≡ ¬A ∩ ¬B.
    let lhs = even_ones.union(&ends_one).complement();
    let rhs = even_ones.complement().intersect(&ends_one.complement());
    assert!(lhs.equivalent(&rhs));
    // Determinization preserves the language.
    let nfa = Nfa::from_dfa(&even_ones).union(&Nfa::from_dfa(&ends_one));
    let det = nfa.determinize();
    for len in 0..=8usize {
        for bits in 0..(1u32 << len) {
            let w: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
            assert_eq!(nfa.accepts(&w), det.accepts(&w));
        }
    }
    // Minimization preserves and is minimal for the union (3 states:
    // parity × last-letter collapses to... verify only equivalence and
    // non-expansion).
    let min = det.minimize();
    assert!(min.equivalent(&det));
    assert!(min.num_states() <= det.num_states());
}

/// The Theorem 2.5 gadget dichotomy across *all* matchings at n = 2 and a
/// random sample at n = 3 using the cops engine (25 vertices is beyond
/// comfortable exact-solver territory in debug builds).
#[test]
fn gadget_dichotomy_sampled() {
    use locert::lb::treedepth_gadget::{build_gadget, unrank_permutation};
    for ra in 0..2u64 {
        for rb in 0..2u64 {
            let (g, _) = build_gadget(2, &unrank_permutation(2, ra), &unrank_permutation(2, rb));
            let td = treedepth_exact(&g);
            assert_eq!(td == 5, ra == rb);
        }
    }
}
