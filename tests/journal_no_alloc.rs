//! Asserts the journal's disabled fast path is allocation-free.
//!
//! Journal instrumentation sits on hot paths (`run_verification`,
//! `Assignment::cert_mut`, the fault campaigns), so when no `--journal`
//! flag enabled it, recording must cost one relaxed atomic load and
//! nothing else — in particular, the event-constructing closure passed
//! to `record_with` must never run. A counting global allocator makes
//! that claim checkable: with the journal disabled, a burst of
//! `record_with` calls and instrumented `cert_mut` calls performs zero
//! allocations — even with the live-tailing stream sink compiled in and
//! a subscriber registered, since publication sits behind the same
//! enabled gate.
//!
//! This lives in its own integration-test binary because the
//! `#[global_allocator]` is process-wide; keeping a single `#[test]`
//! here means no concurrent test can allocate and pollute the count.

use locert_core::framework::{Instance, Prover};
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_graph::{generators, IdAssignment};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_journal_fast_path_does_not_allocate() {
    // Build everything that legitimately allocates up front.
    let graph = generators::path(16);
    let ids = IdAssignment::contiguous(graph.num_nodes());
    let instance = Instance::new(&graph, &ids);
    let scheme = VertexCountScheme::new(8, 16);
    let mut assignment = scheme.assign(&instance).expect("honest prover");
    let vertices: Vec<_> = instance.graph().nodes().collect();

    locert_trace::journal::disable();
    assert!(!locert_trace::journal::enabled());

    // A live streaming subscriber must not change the disabled cost:
    // the subscription check sits behind the same enabled gate, so a
    // registered tailer costs nothing until recording is on. (Creating
    // the subscription allocates; do it before the measured window.)
    let subscription = locert_trace::journal::stream::subscribe();

    let before = ALLOCATIONS.load(Ordering::SeqCst);

    // Direct record_with calls: the closure builds a String, so if it
    // ever ran the counter would move.
    for i in 0..10_000u64 {
        locert_trace::journal::record_with(|| locert_trace::journal::Event::Marker {
            label: format!("marker-{i}"),
        });
        locert_trace::journal::record_with(|| locert_trace::journal::Event::Verdict {
            vertex: i,
            accepted: true,
            reason: None,
            bits_read: i,
        });
    }

    // The cert_mut instrumentation point, as fault campaigns hit it.
    for _ in 0..1_000 {
        for &v in &vertices {
            let cert = assignment.cert_mut(v);
            let _ = cert.len_bits();
        }
    }

    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled journal path allocated {} times (with a live subscriber registered)",
        after - before
    );
    assert!(
        subscription.is_empty(),
        "a disabled journal must not publish to subscribers"
    );

    // Sanity: the same closure allocates once recording is on, proving
    // the counter actually observes this code path — and the subscriber
    // now sees the entry, proving the stream seam was live all along.
    locert_trace::journal::enable();
    locert_trace::journal::reset();
    locert_trace::journal::record_with(|| locert_trace::journal::Event::Marker {
        label: format!("enabled-{}", vertices.len()),
    });
    let enabled_allocs = ALLOCATIONS.load(Ordering::SeqCst) - after;
    assert!(
        enabled_allocs > 0,
        "counting allocator must observe the enabled path"
    );
    assert_eq!(
        subscription.drain().len(),
        1,
        "the enabled path publishes to the live subscriber"
    );
    drop(subscription);
    locert_trace::journal::disable();
    locert_trace::journal::reset();
}
