//! Fault-injection invariants and fuzz-style robustness tests.
//!
//! Soundness says every *wrong* certificate assignment is rejected
//! somewhere; these tests pin down the complementary engineering claims:
//! verification never panics on garbage, injection is deterministic, and
//! an unfaulted plan is indistinguishable from the honest world.

use locert::automata::library;
use locert::cert::bits::{BitWriter, Certificate};
use locert::cert::faults::{inject, run_with_faults, FaultModel, FaultPlan};
use locert::cert::schemes::acyclicity::AcyclicityScheme;
use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::depth2_fo::Depth2FoScheme;
use locert::cert::schemes::existential_fo::ExistentialFoScheme;
use locert::cert::schemes::minor_free::PathMinorFreeScheme;
use locert::cert::schemes::mso_tree::MsoTreeScheme;
use locert::cert::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use locert::cert::schemes::tree_depth_bound::TreeDepthBoundScheme;
use locert::cert::schemes::tree_diameter::TreeDiameterScheme;
use locert::cert::schemes::treedepth::TreedepthScheme;
use locert::cert::{run_verification, Assignment, Instance, Prover, Scheme};
use locert::graph::{generators, Graph, IdAssignment, NodeId};
use locert::logic::props;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Every scheme under test, paired with a yes-instance its prover accepts.
fn all_schemes(b: u32) -> Vec<(Box<dyn Scheme>, Graph)> {
    vec![
        (Box::new(AcyclicityScheme::new(b)), generators::path(10)),
        (Box::new(SpanningTreeScheme::new(b)), generators::cycle(10)),
        (
            Box::new(VertexCountScheme::new(b, 10)),
            generators::path(10),
        ),
        (
            Box::new(TreeDiameterScheme::new(b, 3)),
            generators::star(10),
        ),
        (Box::new(TreedepthScheme::new(b, 3)), generators::path(7)),
        (Box::new(TreeDepthBoundScheme::new(2)), generators::star(10)),
        (
            Box::new(MsoTreeScheme::new(library::has_perfect_matching())),
            generators::path(10),
        ),
        (
            Box::new(ExistentialFoScheme::new(b, &props::has_clique(3)).expect("existential")),
            generators::clique(4),
        ),
        (
            Box::new(
                Depth2FoScheme::from_formula(b, &props::has_dominating_vertex()).expect("depth 2"),
            ),
            generators::star(10),
        ),
        (
            Box::new(PathMinorFreeScheme::new(b, 4)),
            generators::star(10),
        ),
    ]
}

/// A certificate of `bits` uniformly random bits.
fn random_cert(rng: &mut StdRng, bits: usize) -> Certificate {
    let mut w = BitWriter::new();
    for _ in 0..bits {
        w.write_bit(rng.random_bool(0.5));
    }
    w.finish()
}

/// Feeding arbitrary byte strings as certificates to every scheme's
/// verifier — on graphs of several shapes, with under- and over-length
/// assignments — must never panic. Acceptance is irrelevant here;
/// completing the sweep is the assertion.
#[test]
fn fuzz_random_certificates_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF022);
    let graphs = [
        generators::path(9),
        generators::star(9),
        generators::cycle(9),
        generators::clique(5),
        generators::spider(3, 3),
    ];
    for g in &graphs {
        let n = g.num_nodes();
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(g, &ids);
        for (scheme, _) in all_schemes(6) {
            for _ in 0..30 {
                // Random lengths, including 0 and far beyond honest width.
                let certs: Vec<Certificate> = (0..n)
                    .map(|_| {
                        let bits = rng.random_range(0..200usize);
                        random_cert(&mut rng, bits)
                    })
                    .collect();
                let asg = Assignment::new(certs);
                let _ = run_verification(scheme.as_ref(), &inst, &asg);
            }
            // Truncated assignment: fewer certificates than vertices.
            let short = Assignment::new(vec![random_cert(&mut rng, 8); n / 2]);
            let _ = run_verification(scheme.as_ref(), &inst, &short);
            // Empty assignment.
            let _ = run_verification(scheme.as_ref(), &inst, &Assignment::new(Vec::new()));
        }
    }
}

/// Every fault model injected at every site of every scheme's yes-instance
/// must run to completion (no panic), whatever it does to acceptance.
#[test]
fn fuzz_every_fault_model_never_panics() {
    for (scheme, g) in all_schemes(6) {
        let ids = IdAssignment::contiguous(g.num_nodes());
        let inst = Instance::new(&g, &ids);
        let honest = scheme
            .assign(&inst)
            .unwrap_or_else(|e| panic!("{}: prover refused yes-instance: {e}", scheme.name()));
        for model in FaultModel::ALL {
            for site in 0..g.num_nodes() {
                let plan = FaultPlan::new(site as u64).with_fault(model, NodeId(site));
                let _ = run_with_faults(scheme.as_ref(), &inst, &honest, &plan);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An honest yes-instance under an *unfaulted* plan still accepts:
    /// injection with an empty plan is the identity.
    #[test]
    fn unfaulted_plan_preserves_acceptance(seq in prop::collection::vec(0usize..8, 6), seed in 0u64..1000) {
        let n = 8;
        let g = generators::tree_from_prufer(n, &seq);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = AcyclicityScheme::new(id_bits_for(&inst));
        let honest = scheme.assign(&inst).expect("tree is a yes-instance");
        let outcome = run_with_faults(&scheme, &inst, &honest, &FaultPlan::new(seed));
        prop_assert!(!outcome.detected());
        prop_assert!(!outcome.effective);
        // And the original assignment still verifies untouched.
        prop_assert!(run_verification(&scheme, &inst, &honest).accepted());
    }

    /// A fault plan with a fixed seed injects identically every time.
    #[test]
    fn fault_plans_are_deterministic(model_ix in 0usize..FaultModel::ALL.len(), seed in 0u64..10_000, seq in prop::collection::vec(0usize..8, 6)) {
        let n = 8;
        let g = generators::tree_from_prufer(n, &seq);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = VertexCountScheme::new(id_bits_for(&inst), n as u64);
        let honest = scheme.assign(&inst).expect("yes-instance");
        let model = FaultModel::ALL[model_ix];
        let plan = FaultPlan::single_at_random_site(model, n, seed);
        let w1 = inject(&inst, &honest, &plan);
        let w2 = inject(&inst, &honest, &plan);
        prop_assert_eq!(w1.certs(), w2.certs());
        prop_assert_eq!(w1.is_effective(), w2.is_effective());
        let o1 = run_with_faults(&scheme, &inst, &honest, &plan);
        let o2 = run_with_faults(&scheme, &inst, &honest, &plan);
        prop_assert_eq!(o1, o2);
    }

    /// `to_hex`/`from_hex` round-trips certificates of arbitrary bit
    /// length, including the empty certificate.
    #[test]
    fn certificate_hex_roundtrip(bits in prop::collection::vec(0u64..2, 0..75)) {
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b == 1);
        }
        let cert = w.finish();
        prop_assert_eq!(cert.len_bits(), bits.len());
        let hex = cert.to_hex();
        let back = Certificate::from_hex(&hex);
        prop_assert_eq!(back, Some(cert));
    }
}
