//! Integration tests for the appendix material: LCL certification through
//! the Theorem 2.2 scheme, distributed graph automata, and automata
//! closure properties on random inputs.

use locert::automata::lcl;
use locert::automata::trees::LabeledTree;
use locert::automata::words::Dfa;
use locert::cert::schemes::mso_tree::MsoTreeScheme;
use locert::cert::{run_scheme, run_verification, Instance, Prover};
use locert::graph::{generators, IdAssignment, NodeId, RootedTree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The full Appendix C.2 loop: solve an unbounded-degree LCL on a tree,
/// distribute the solution as node inputs, certify its validity with the
/// Theorem 2.2 scheme (O(1) bits), and watch corrupted solutions fail.
#[test]
fn lcl_solutions_certified_with_constant_bits() {
    let mut rng = StdRng::seed_from_u64(100);
    let problem = lcl::maximal_independent_set();
    let scheme = MsoTreeScheme::new(problem.solution_automaton());
    for _ in 0..10 {
        let n = 2 + rng.random_range(0..20usize);
        let g = generators::random_tree(n, &mut rng);
        let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        let solution = problem
            .solve(&LabeledTree::unlabeled(rooted))
            .expect("trees always have an MIS");
        let ids = IdAssignment::shuffled(n, &mut rng);
        let inst = Instance::with_inputs(&g, &ids, &solution);
        let out = run_scheme(&scheme, &inst).expect("valid solution certifies");
        assert!(out.accepted());
        assert_eq!(out.max_bits(), scheme.certificate_bits());

        // Corrupt the solution at a random vertex: with the honest
        // certificates replayed, some vertex must reject.
        let honest = scheme.assign(&inst).unwrap();
        let mut bad = solution.clone();
        let v = rng.random_range(0..n);
        bad[v] = 1 - bad[v];
        let inst_bad = Instance::with_inputs(&g, &ids, &bad);
        assert!(
            !run_verification(&scheme, &inst_bad, &honest).accepted(),
            "corrupted MIS accepted on {g:?} at vertex {v}"
        );
    }
}

/// The 2-coloring LCL is solvable on every tree and its certified
/// solutions are proper colorings.
#[test]
fn two_coloring_lcl_certified() {
    let mut rng = StdRng::seed_from_u64(101);
    let problem = lcl::proper_two_coloring();
    let scheme = MsoTreeScheme::new(problem.solution_automaton());
    for _ in 0..8 {
        let n = 1 + rng.random_range(0..16usize);
        let g = generators::random_tree(n, &mut rng);
        let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        let coloring = problem
            .solve(&LabeledTree::unlabeled(rooted))
            .expect("bipartite");
        for (u, v) in g.edges() {
            assert_ne!(coloring[u.0], coloring[v.0]);
        }
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::with_inputs(&g, &ids, &coloring);
        assert!(run_scheme(&scheme, &inst).unwrap().accepted());
    }
}

/// Distributed graph automata vs. certification: the DGA flooding
/// automaton decides a distance property within its round budget, while
/// the same property at radius 1 (our model) would need certificates —
/// exercised by checking the DGA ground truth against BFS.
#[test]
fn dga_flooding_against_bfs() {
    use locert::automata::dga::labels_within_distance;
    use locert::graph::traversal;
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..10 {
        let n = 4 + rng.random_range(0..10usize);
        let g = generators::random_tree(n, &mut rng);
        let a_vertex = rng.random_range(0..n);
        let mut b_vertex = rng.random_range(0..n);
        if b_vertex == a_vertex {
            b_vertex = (b_vertex + 1) % n;
        }
        let mut labels = vec![0usize; n];
        labels[a_vertex] = 1;
        labels[b_vertex] = 2;
        let d = traversal::bfs_distances(&g, NodeId(b_vertex))[a_vertex].unwrap();
        for r in 1..=6 {
            let automaton = labels_within_distance(r);
            assert_eq!(
                automaton.accepts(&g, &labels),
                r >= d,
                "r = {r}, d = {d}, graph {g:?}"
            );
        }
    }
}

/// DFA minimization: equivalent, never larger, and idempotent, over a
/// family of randomly generated automata.
#[test]
fn minimization_laws_on_random_dfas() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..30 {
        let states = 2 + rng.random_range(0..6usize);
        let transitions: Vec<Vec<usize>> = (0..states)
            .map(|_| (0..2).map(|_| rng.random_range(0..states)).collect())
            .collect();
        let accepting: Vec<bool> = (0..states).map(|_| rng.random_bool(0.4)).collect();
        let dfa = Dfa::new(states, 2, 0, accepting, transitions).unwrap();
        let min = dfa.minimize();
        assert!(min.num_states() <= dfa.num_states());
        assert!(min.equivalent(&dfa));
        let min2 = min.minimize();
        assert_eq!(min2.num_states(), min.num_states());
        assert!(min2.equivalent(&min));
        // Spot-check words directly.
        for len in 0..=6usize {
            for bits in 0..(1u32 << len) {
                let w: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
                assert_eq!(dfa.accepts(&w), min.accepts(&w));
            }
        }
    }
}

/// Tree-automata products recognize intersections on random trees.
#[test]
fn tree_automata_product_law() {
    use locert::automata::library;
    let mut rng = StdRng::seed_from_u64(104);
    let a = library::height_at_most(3);
    let b = library::has_perfect_matching();
    let both = a.intersect(&b);
    for _ in 0..25 {
        let n = 1 + rng.random_range(0..12usize);
        let g = generators::random_tree(n, &mut rng);
        let t = LabeledTree::unlabeled(RootedTree::from_tree(&g, NodeId(0)).unwrap());
        assert_eq!(
            both.accepts(&t),
            a.accepts(&t) && b.accepts(&t),
            "product law failed on {g:?}"
        );
    }
}

/// Union-complete and complement laws for deterministic tree automata.
#[test]
fn tree_automata_boolean_laws() {
    use locert::automata::library;
    let mut rng = StdRng::seed_from_u64(105);
    let a = library::height_at_most(2);
    let b = library::max_children_at_most(2);
    assert!(a.is_deterministic() && b.is_deterministic());
    let union = a.union_complete(&b);
    let neg_a = a.complement_deterministic();
    for _ in 0..25 {
        let n = 1 + rng.random_range(0..10usize);
        let g = generators::random_tree(n, &mut rng);
        let t = LabeledTree::unlabeled(RootedTree::from_tree(&g, NodeId(0)).unwrap());
        assert_eq!(union.accepts(&t), a.accepts(&t) || b.accepts(&t));
        assert_eq!(neg_a.accepts(&t), !a.accepts(&t));
    }
}

/// The automatic Theorem 2.2 pipeline end-to-end: FO sentence → budgeted
/// type-discovery compiler → O(1)-bit certification scheme.
#[test]
fn compiled_fo_sentence_certified_with_constant_bits() {
    use locert::automata::synthesis::fo_tree_automaton;
    use locert::cert::ProverError;
    use locert::logic::props;

    let compiled = fo_tree_automaton(&props::has_dominating_vertex(), 9, 63)
        .expect("compilation succeeds at rank 2");
    let scheme = MsoTreeScheme::new(compiled.automaton().clone());
    let mut sizes = Vec::new();
    for n in [8usize, 64, 512] {
        let g = generators::star(n);
        let rooted = RootedTree::from_tree(&g, NodeId(0)).unwrap();
        assert!(compiled.covers(&rooted), "star(n) is covered at any n");
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let out = run_scheme(&scheme, &inst).expect("dominated tree certifies");
        assert!(out.accepted());
        sizes.push(out.max_bits());
    }
    // Theorem 2.2 from a formula: constant certificates.
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");

    // A path of 6 has no dominating vertex: the prover refuses.
    let g = generators::path(6);
    let ids = IdAssignment::contiguous(6);
    let inst = Instance::new(&g, &ids);
    assert_eq!(
        run_scheme(&scheme, &inst).unwrap_err(),
        ProverError::NotAYesInstance
    );
}
