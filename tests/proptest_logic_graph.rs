//! Property-based tests for the logic stack (parser/printer round-trips,
//! evaluator laws) and graph algorithms (biconnectivity, minors).

use locert::graph::bcc::biconnected_components;
use locert::graph::{generators, traversal, Graph, NodeId};
use locert::logic::ast::{self, Formula, SetVar, Var};
use locert::logic::parser::parse;
use locert::logic::{eval, Formula as F};
use proptest::prelude::*;

/// A recursive proptest strategy over FO/MSO formulas (small variable
/// pools so sentences stay evaluable).
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let var = (0u32..3).prop_map(Var);
    let setvar = (0u32..2).prop_map(SetVar);
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (var.clone(), var.clone()).prop_map(|(x, y)| ast::eq(x, y)),
        (var.clone(), var.clone()).prop_map(|(x, y)| ast::adj(x, y)),
        (var.clone(), setvar.clone()).prop_map(|(x, s)| ast::mem(x, s)),
    ];
    leaf.prop_recursive(4, 24, 3, move |inner| {
        let var = (0u32..3).prop_map(Var);
        let setvar = (0u32..2).prop_map(SetVar);
        prop_oneof![
            inner.clone().prop_map(ast::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ast::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ast::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ast::implies(a, b)),
            (var.clone(), inner.clone()).prop_map(|(x, f)| ast::forall(x, f)),
            (var, inner.clone()).prop_map(|(x, f)| ast::exists(x, f)),
            (setvar.clone(), inner.clone()).prop_map(|(s, f)| ast::forall_set(s, f)),
            (setvar, inner).prop_map(|(s, f)| ast::exists_set(s, f)),
        ]
    })
}

/// Closes a formula by quantifying all free variables universally.
fn close(f: Formula) -> Formula {
    let mut g = f;
    for v in g.free_vars() {
        g = ast::forall(v, g);
    }
    for s in g.free_set_vars() {
        g = ast::forall_set(s, g);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printer → parser round-trip is the identity on the AST.
    #[test]
    fn parse_display_roundtrip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(reparsed, f);
    }

    /// De Morgan / double negation at the semantic level: ¬¬φ ≡ φ and
    /// ¬(a ∧ b) ≡ ¬a ∨ ¬b, on a fixed small graph.
    #[test]
    fn evaluator_boolean_laws(f in formula_strategy(), g_pick in 0usize..3) {
        let graphs = [
            generators::path(4),
            generators::cycle(4),
            generators::star(4),
        ];
        let g = &graphs[g_pick];
        let phi = close(f);
        let double_neg = ast::not(ast::not(phi.clone()));
        prop_assert_eq!(eval::models(g, &phi), eval::models(g, &double_neg));
    }

    /// Conjunction evaluates pointwise.
    #[test]
    fn evaluator_conjunction(a in formula_strategy(), b in formula_strategy()) {
        let g = generators::path(3);
        let pa = close(a);
        let pb = close(b);
        let both = ast::and(pa.clone(), pb.clone());
        prop_assert_eq!(
            eval::models(&g, &both),
            eval::models(&g, &pa) && eval::models(&g, &pb)
        );
    }

    /// BCC: component edge sets partition the edges, and the reported cut
    /// vertices are exactly those whose removal disconnects their
    /// component.
    #[test]
    fn bcc_invariants(n in 3usize..10, extra in 0usize..8, seed in 0u64..300) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let d = biconnected_components(&g);
        // Partition check.
        let mut seen = std::collections::BTreeSet::new();
        for comp in &d.components {
            for &(u, v) in comp {
                let key = (u.0.min(v.0), u.0.max(v.0));
                prop_assert!(seen.insert(key), "edge {key:?} in two components");
            }
        }
        prop_assert_eq!(seen.len(), g.num_edges());
        // Cut-vertex check against the naive definition.
        for v in g.nodes() {
            let rest: Vec<NodeId> = g.nodes().filter(|&u| u != v).collect();
            let (sub, _) = g.induced_subgraph(&rest);
            let naive_cut = !rest.is_empty() && !traversal::is_connected(&sub);
            prop_assert_eq!(
                d.cut_vertices.contains(&v),
                naive_cut,
                "cut status of {} on {:?}", v, &g
            );
        }
    }

    /// Longest-path search: the bounded search agrees with the exhaustive
    /// one on random graphs, and both are monotone in t.
    #[test]
    fn path_search_consistency(n in 2usize..9, extra in 0usize..6, seed in 0u64..300) {
        use locert::graph::minors;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let lp = minors::longest_path_exact(&g);
        for t in 1..=n + 1 {
            prop_assert_eq!(minors::has_path_of_order(&g, t), t <= lp);
        }
    }

    /// Cycle search: has_cycle_at_least matches the circumference.
    #[test]
    fn cycle_search_consistency(n in 3usize..9, extra in 1usize..6, seed in 0u64..300) {
        use locert::graph::minors;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let circ = minors::circumference_exact(&g);
        for lo in 3..=n {
            prop_assert_eq!(
                minors::has_cycle_at_least(&g, lo, n),
                circ >= lo,
                "lo = {}, circ = {}, g = {:?}", lo, circ, &g
            );
        }
    }
}

/// Non-proptest sanity: the formula strategy covers MSO (membership) and
/// deep nesting — guard against silent strategy degeneration.
#[test]
fn strategy_produces_interesting_formulas() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let strat = formula_strategy();
    let mut saw_set = false;
    let mut saw_quant = false;
    for _ in 0..200 {
        let f = strat.new_tree(&mut runner).unwrap().current();
        let s = f.to_string();
        if s.contains('∈') {
            saw_set = true;
        }
        if s.contains('∀') || s.contains('∃') {
            saw_quant = true;
        }
    }
    assert!(saw_set, "strategy never produced membership atoms");
    assert!(saw_quant, "strategy never produced quantifiers");
}

/// Keep the F alias used (the facade re-export is part of the public API).
#[test]
fn facade_reexports() {
    let _f: F = Formula::True;
    let g: Graph = generators::path(2);
    assert_eq!(g.num_edges(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input (it returns errors).
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,40}") {
        let _ = parse(&s);
    }

    /// …including inputs built from the grammar's own token vocabulary.
    #[test]
    fn parser_total_on_token_soup(parts in prop::collection::vec(
        prop_oneof![
            Just("forall"), Just("exists"), Just("x0"), Just("X1"),
            Just("("), Just(")"), Just("."), Just("="), Just("~"),
            Just("in"), Just("&"), Just("|"), Just("->"), Just("!"),
            Just("true"), Just("false"),
        ], 0..16)) {
        let s = parts.join(" ");
        let _ = parse(&s);
    }
}
