//! Property-based tests (proptest) on the core data structures and
//! invariants.

use locert::cert::bits::{BitReader, BitWriter};
use locert::cert::schemes::common::id_bits_for;
use locert::cert::schemes::spanning_tree::SpanningTreeScheme;
use locert::cert::schemes::treedepth::{ModelStrategy, TdCert, TreedepthScheme};
use locert::cert::{run_scheme, Instance};
use locert::graph::canon::{tree_isomorphic, unrooted_code};
use locert::graph::{generators, Graph, IdAssignment, Ident, NodeId};
use locert::kernel::k_reduce;
use locert::treedepth::EliminationTree;
use proptest::prelude::*;

proptest! {
    /// Bit writer/reader round-trip for arbitrary field sequences.
    #[test]
    fn bits_roundtrip(fields in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 0..20)) {
        let mut w = BitWriter::new();
        let mut expected = Vec::new();
        for &(value, width) in &fields {
            let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            w.write(masked, width);
            expected.push((masked, width));
        }
        let cert = w.finish();
        prop_assert_eq!(
            cert.len_bits(),
            fields.iter().map(|&(_, w)| w as usize).sum::<usize>()
        );
        let mut r = BitReader::new(&cert);
        for (value, width) in expected {
            prop_assert_eq!(r.read(width), Some(value));
        }
        prop_assert!(r.exhausted());
    }

    /// Prüfer decoding always yields a tree, and uniformly covers degree
    /// profiles: degree(v) = 1 + multiplicity of v in the sequence.
    #[test]
    fn prufer_degrees(seq in prop::collection::vec(0usize..8, 6)) {
        let n = 8;
        let g = generators::tree_from_prufer(n, &seq);
        prop_assert!(g.is_tree());
        for v in 0..n {
            let mult = seq.iter().filter(|&&x| x == v).count();
            prop_assert_eq!(g.degree(NodeId(v)), 1 + mult);
        }
    }

    /// AHU canonical codes are invariant under relabeling, and two trees
    /// with different degree multisets never collide.
    #[test]
    fn canonical_code_relabel_invariant(seq in prop::collection::vec(0usize..7, 5), perm_seed in 0u64..1000) {
        let n = 7;
        let g = generators::tree_from_prufer(n, &seq);
        // Relabel with a seeded permutation.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let h = Graph::from_edges(n, g.edges().map(|(u, v)| (perm[u.0], perm[v.0]))).unwrap();
        prop_assert_eq!(tree_isomorphic(&g, &h), Some(true));
        prop_assert_eq!(unrooted_code(&g), unrooted_code(&h));
    }

    /// The bounded-treedepth generator always produces a valid model, and
    /// the k-reduction keeps a connected kernel containing the root.
    #[test]
    fn generator_witness_valid(n in 2usize..40, t in 2usize..5, k in 1usize..4, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, parents) = generators::random_bounded_treedepth(n, t, 0.4, &mut rng);
        let model = EliminationTree::new(&g, &parents).expect("witness is a model");
        prop_assert!(model.height() <= t);
        let coherent = model.make_coherent(&g);
        prop_assert!(coherent.is_coherent(&g));
        let red = k_reduce(&g, &coherent, k);
        prop_assert!(red.kept[coherent.root().0]);
        prop_assert!(red.kernel_size() >= 1);
        prop_assert!(red.kernel_size() <= n);
    }

    /// Spanning-tree certification is complete on arbitrary connected
    /// graphs with arbitrary identifier spreads.
    #[test]
    fn spanning_tree_complete(n in 1usize..30, extra in 0usize..20, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let ids = IdAssignment::random_polynomial(n, 2, &mut rng);
        let inst = Instance::new(&g, &ids);
        let scheme = SpanningTreeScheme::new(id_bits_for(&inst));
        let out = run_scheme(&scheme, &inst).expect("connected");
        prop_assert!(out.accepted());
        prop_assert!(out.max_bits() <= 3 * id_bits_for(&inst) as usize);
    }

    /// Treedepth certification is complete whenever the witness is valid,
    /// and its size obeys the O(t log n) budget.
    #[test]
    fn treedepth_complete_with_witness(n in 2usize..40, t in 2usize..5, seed in 0u64..200) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, parents) = generators::random_bounded_treedepth(n, t, 0.3, &mut rng);
        let ids = IdAssignment::shuffled(n, &mut rng);
        let inst = Instance::new(&g, &ids);
        let b = id_bits_for(&inst);
        let scheme = TreedepthScheme::new(b, t)
            .with_strategy(ModelStrategy::Explicit(parents));
        let out = run_scheme(&scheme, &inst).expect("witnessed");
        prop_assert!(out.accepted());
        // Budget: length header + t ids + (t−1) tree entries of 2 ids.
        let budget = 8 + (t * b as usize) + (t - 1) * 2 * b as usize;
        prop_assert!(out.max_bits() <= budget, "bits {} > budget {budget}", out.max_bits());
    }

    /// TdCert serialization round-trips for arbitrary ancestor lists.
    #[test]
    fn tdcert_roundtrip(len in 1usize..6, seed in 0u64..1000) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = 8;
        let id_bits = 10;
        let cert = TdCert {
            ancestors: (0..len).map(|_| Ident(rng.random_range(1..1000u64))).collect(),
            trees: (0..len - 1)
                .map(|_| (Ident(rng.random_range(1..1000u64)), rng.random_range(0..1000u64)))
                .collect(),
        };
        let mut w = BitWriter::new();
        cert.write(&mut w, id_bits, t);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let parsed = TdCert::read(&mut r, id_bits, t).expect("parses");
        prop_assert_eq!(parsed, cert);
        prop_assert!(r.exhausted());
    }

    /// Tree-automaton guard evaluation is monotone for AtLeast and
    /// antitone for AtMost in every count coordinate.
    #[test]
    fn guard_monotonicity(counts in prop::collection::vec(0usize..6, 3), state in 0usize..3, c in 0usize..5) {
        use locert::automata::trees::{CountAtom, Guard};
        let atom = CountAtom { states: 1 << state, count: c };
        let at_least = Guard::AtLeast(atom);
        let at_most = Guard::AtMost(atom);
        let mut bumped = counts.clone();
        bumped[state] += 1;
        if at_least.eval(&counts) {
            prop_assert!(at_least.eval(&bumped));
        }
        if at_most.eval(&bumped) {
            prop_assert!(at_most.eval(&counts));
        }
    }

    /// Tree enumeration counts match the closed-form counting for random
    /// parameters (exhaustive agreement is in the unit tests; this pins
    /// the u128 and f64 counters against each other).
    #[test]
    fn tree_counting_consistency(n in 1usize..14, d in 0usize..5) {
        use locert::graph::enumerate::{count_trees, count_trees_log2};
        let exact = count_trees(n, d).expect("no overflow at this size");
        let log = count_trees_log2(n, d);
        if exact == 0 {
            prop_assert!(log.is_infinite() && log < 0.0);
        } else {
            prop_assert!((log - (exact as f64).log2()).abs() < 1e-6);
        }
    }
}
