//! Black-box tests of `trace-check`'s v2 `journal`-section validation:
//! consistent ring accounting passes (and is surfaced in the OK line),
//! impossible accounting fails.

use std::path::PathBuf;
use std::process::{Command, Output};

fn check(doc: &str, name: &str) -> Output {
    let dir = std::env::temp_dir().join(format!("trace-check-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path: PathBuf = dir.join(name);
    std::fs::write(&path, doc).expect("write metrics doc");
    Command::new(env!("CARGO_BIN_EXE_trace-check"))
        .arg(&path)
        .output()
        .expect("spawn trace-check")
}

/// A minimal valid `locert-trace/v2` document with the given optional
/// `journal` section spliced in.
fn v2_doc(journal: Option<&str>) -> String {
    let journal = journal.map_or_else(String::new, |j| format!(r#","journal":{j}"#));
    format!(
        concat!(
            r#"{{"schema":"locert-trace/v2","quick":true,"#,
            r#""experiments":[{{"id":"s2","telemetry":{{"counters":{{"x":1}}}}}}],"#,
            r#""timings":[{{"id":"s2","wall_s":0.5,"telemetry":{{"spans":[{{}}]}}}}]"#,
            r#"{}}}"#
        ),
        journal
    )
}

#[test]
fn journal_section_is_optional() {
    let out = check(&v2_doc(None), "plain.json");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        !stdout.contains("journal"),
        "no journal note without one: {stdout}"
    );
}

#[test]
fn consistent_journal_accounting_passes_and_is_reported() {
    let out = check(
        &v2_doc(Some(r#"{"capacity":8,"dropped":0,"entries":3}"#)),
        "journal-ok.json",
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("journal 3/8 events, 0 dropped"),
        "OK line surfaces the ring state: {stdout}"
    );

    // A full ring that dropped events is consistent too.
    let out = check(
        &v2_doc(Some(r#"{"capacity":4,"dropped":6,"entries":4}"#)),
        "journal-full.json",
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("journal 4/4 events, 6 dropped"));
}

#[test]
fn impossible_journal_accounting_fails() {
    // More entries than the ring holds.
    let out = check(
        &v2_doc(Some(r#"{"capacity":4,"dropped":0,"entries":9}"#)),
        "journal-overfull.json",
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("9 entries in a ring of 4"));

    // Drops without a full ring: drop-oldest only evicts when full.
    let out = check(
        &v2_doc(Some(r#"{"capacity":8,"dropped":2,"entries":3}"#)),
        "journal-phantom-drop.json",
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ring is not full"));

    // Zero capacity and missing fields are malformed.
    let out = check(
        &v2_doc(Some(r#"{"capacity":0,"dropped":0,"entries":0}"#)),
        "journal-zero-cap.json",
    );
    assert!(!out.status.success());
    let out = check(&v2_doc(Some(r#"{"dropped":0}"#)), "journal-missing.json");
    assert!(!out.status.success());
}
