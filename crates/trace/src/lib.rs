//! `locert-trace` — workspace-wide tracing and metrics for the locert
//! reproduction.
//!
//! The paper's upper bounds are claims about *resources* (certificate bits
//! as functions of `n`, `t`, `k`); this crate gives every layer of the
//! workspace a way to report where those resources — and the wall time
//! spent computing them — actually go. Three pieces:
//!
//! - **hierarchical spans** ([`span!`]/[`event!`]): RAII guards that
//!   aggregate wall time per call-tree path. Spans on the same path are
//!   merged (name → calls + total ns), so per-vertex instrumentation stays
//!   bounded in memory;
//! - **a metrics registry**: named atomic [`Counter`]s and fixed-bucket
//!   [`Histogram`]s (power-of-two buckets), safe to update from any
//!   thread;
//! - **structured export** ([`snapshot`] → [`export`]): JSON for machines
//!   and a markdown summary for humans, with a hand-rolled JSON
//!   reader/writer ([`json`]) since the workspace is offline and
//!   serde-free.
//!
//! Everything is gated on a global subscriber flag ([`enable`]): while
//! disabled — the default — every instrumentation point is a single
//! relaxed atomic load and **nothing is recorded**, so instrumented hot
//! paths cost nothing measurable in ordinary builds and benches.
//!
//! Metric names follow the workspace convention `layer.component.metric`
//! (e.g. `core.framework.verifier.invocations`,
//! `treedepth.exact.branches`); see DESIGN.md §6 for the taxonomy.
//!
//! # Example
//!
//! ```
//! locert_trace::enable();
//! {
//!     let _outer = locert_trace::span!("example.outer");
//!     for _ in 0..3 {
//!         let _inner = locert_trace::span!("example.inner");
//!         locert_trace::add("example.work.items", 2);
//!         locert_trace::record("example.work.size", 17);
//!     }
//! }
//! let snap = locert_trace::snapshot();
//! assert_eq!(snap.counters["example.work.items"], 6);
//! locert_trace::disable();
//! locert_trace::reset();
//! ```

pub mod export;
pub mod journal;
pub mod json;
pub mod ledger;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global subscriber flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the global subscriber on: spans, counters and histograms start
/// recording.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the global subscriber off (the default). Instrumentation points
/// reduce to one relaxed atomic load; nothing is recorded.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the global subscriber is on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Registry: counters + histograms + span forest
// ---------------------------------------------------------------------------

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
    /// Aggregated span forest, merged in as outermost spans close.
    roots: Mutex<BTreeMap<&'static str, AggNode>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        roots: Mutex::new(BTreeMap::new()),
    })
}

/// Zeroes every registered counter and histogram and clears the recorded
/// span forest. Registered names (and any cached [`Counter`]/[`Histogram`]
/// handles) stay valid. Call between measurement units (e.g. between
/// experiments) with no spans open.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").values() {
        c.store(0, Ordering::SeqCst);
    }
    for h in reg.histograms.lock().expect("histogram registry").values() {
        h.reset();
    }
    reg.roots.lock().expect("span forest").clear();
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A handle to a named monotone counter. Cloning is cheap; increments are
/// atomic and may come from any thread. Increments are dropped while the
/// subscriber is [`disable`]d.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Registers (or looks up) the counter `name`.
    pub fn named(name: &str) -> Counter {
        let mut map = registry().counters.lock().expect("counter registry");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Adds `v` (a no-op while the subscriber is disabled).
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            self.cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// Convenience: `Counter::named(name).add(v)`, gated on [`enabled`] before
/// touching the registry lock.
#[inline]
pub fn add(name: &str, v: u64) {
    if enabled() {
        Counter::named(name).add(v);
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of buckets: bucket 0 holds the value 0; bucket `i ≥ 1` holds
/// values `v` with `⌊log₂ v⌋ = i − 1` (i.e. `2^{i−1} ≤ v < 2^i`); the last
/// bucket absorbs everything from `2^{NUM_BUCKETS−2}` up.
pub const NUM_BUCKETS: usize = 40;

/// The bucket a value lands in — stable across versions and platforms
/// (this mapping is part of the export format).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistogramCells {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::SeqCst);
        }
        self.count.store(0, Ordering::SeqCst);
        self.sum.store(0, Ordering::SeqCst);
        self.min.store(u64::MAX, Ordering::SeqCst);
        self.max.store(0, Ordering::SeqCst);
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// A handle to a named fixed-bucket histogram (power-of-two buckets, see
/// [`bucket_index`]). Cloning is cheap; recording is atomic and lock-free.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Registers (or looks up) the histogram `name`.
    pub fn named(name: &str) -> Histogram {
        let mut map = registry().histograms.lock().expect("histogram registry");
        let cells = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::new()))
            .clone();
        Histogram { cells }
    }

    /// Records one observation (a no-op while the subscriber is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cells.record(v);
        }
    }
}

/// Convenience: `Histogram::named(name).record(v)`, gated on [`enabled`]
/// before touching the registry lock.
#[inline]
pub fn record(name: &str, v: u64) {
    if enabled() {
        Histogram::named(name).record(v);
    }
}

/// A read-only copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (`None` when empty).
    pub min: Option<u64>,
    /// Largest observation (`None` when empty).
    pub max: Option<u64>,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending;
    /// the overflow bucket's bound is `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, when any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One aggregated node of the span tree: every entry through the same
/// call-tree path merges here.
#[derive(Debug, Clone, Default)]
struct AggNode {
    calls: u64,
    total_ns: u64,
    children: BTreeMap<&'static str, AggNode>,
}

impl AggNode {
    fn merge(&mut self, other: AggNode) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        for (name, child) in other.children {
            self.children.entry(name).or_default().merge(child);
        }
    }
}

/// An exported span-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (static, from the [`span!`] site).
    pub name: String,
    /// Number of times this path was entered.
    pub calls: u64,
    /// Total wall time across all entries, in nanoseconds (0 for
    /// [`event!`] marks).
    pub total_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

fn to_span_nodes(map: &BTreeMap<&'static str, AggNode>) -> Vec<SpanNode> {
    map.iter()
        .map(|(&name, agg)| SpanNode {
            name: name.to_string(),
            calls: agg.calls,
            total_ns: agg.total_ns,
            children: to_span_nodes(&agg.children),
        })
        .collect()
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    children: BTreeMap<&'static str, AggNode>,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span entry; created by [`span`]/[`span!`]. Guards
/// must be dropped in LIFO order on the thread that created them (plain
/// lexical scoping guarantees this). While the subscriber is disabled the
/// guard is disarmed and records nothing.
#[must_use = "a span records on drop; binding it to `_` closes it immediately"]
pub struct Span {
    armed: bool,
}

/// Enters a span named `name`. Prefer the [`span!`] macro.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan {
            name,
            start: Instant::now(),
            children: BTreeMap::new(),
        });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let finished = STACK.with(|s| s.borrow_mut().pop());
        let Some(active) = finished else { return };
        let node = AggNode {
            calls: 1,
            total_ns: active.start.elapsed().as_nanos() as u64,
            children: active.children,
        };
        let merged_into_parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(parent) = stack.last_mut() {
                parent
                    .children
                    .entry(active.name)
                    .or_default()
                    .merge(node.clone());
                true
            } else {
                false
            }
        });
        if !merged_into_parent {
            let mut roots = registry().roots.lock().expect("span forest");
            roots.entry(active.name).or_default().merge(node);
        }
    }
}

/// Records a zero-duration mark under the current span (or at the root
/// when no span is open). Prefer the [`event!`] macro.
pub fn event(name: &'static str) {
    if !enabled() {
        return;
    }
    let recorded = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(top) = stack.last_mut() {
            let node = top.children.entry(name).or_default();
            node.calls += 1;
            true
        } else {
            false
        }
    });
    if !recorded {
        let mut roots = registry().roots.lock().expect("span forest");
        roots.entry(name).or_default().calls += 1;
    }
}

/// Enters a hierarchical span: `let _guard = span!("layer.component.op");`.
/// Compiles to one relaxed atomic load when the subscriber is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Records a zero-duration mark under the current span:
/// `event!("layer.component.happened");`.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event($name)
    };
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time copy of the whole registry: counters, histograms, and
/// the aggregated span forest. Take one with [`snapshot`] after the spans
/// of interest have closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter name → value. Zero-valued counters are omitted.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → state. Empty histograms are omitted.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Root spans, sorted by name.
    pub spans: Vec<SpanNode>,
}

/// Copies the current registry state out (see [`Snapshot`]).
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::SeqCst)))
        .filter(|&(_, v)| v > 0)
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("histogram registry")
        .iter()
        .filter_map(|(name, cells)| {
            let count = cells.count.load(Ordering::SeqCst);
            if count == 0 {
                return None;
            }
            let buckets = (0..NUM_BUCKETS)
                .filter_map(|i| {
                    let c = cells.buckets[i].load(Ordering::SeqCst);
                    (c > 0).then(|| (bucket_le(i), c))
                })
                .collect();
            Some((
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum: cells.sum.load(Ordering::SeqCst),
                    min: Some(cells.min.load(Ordering::SeqCst)),
                    max: Some(cells.max.load(Ordering::SeqCst)),
                    buckets,
                },
            ))
        })
        .collect();
    let spans = to_span_nodes(&reg.roots.lock().expect("span forest"));
    Snapshot {
        counters,
        histograms,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave: the registry and the
    /// subscriber flag are process-wide.
    pub(crate) fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fresh() -> std::sync::MutexGuard<'static, ()> {
        let guard = serial();
        disable();
        reset();
        guard
    }

    #[test]
    fn bucket_boundaries_pinned() {
        // The bucket mapping is part of the export format: pin the
        // documented contract (bucket 0 = value 0; bucket i ≥ 1 holds
        // ⌊log₂ v⌋ = i − 1; the last bucket absorbs everything above).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Exact powers of two open a new bucket: 2^k lands in bucket k+1.
        for k in 0..38u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "v = 2^{k}");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "v = 2^{k} - 1");
            }
        }
        // Everything from 2^38 up saturates into the overflow bucket.
        assert_eq!(bucket_index(1u64 << 38), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_le_matches_bucket_index() {
        // bucket_le(i) is the largest value mapped to bucket i, and its
        // successor starts bucket i + 1.
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(NUM_BUCKETS - 1), u64::MAX);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_le(i)), i, "upper bound of {i}");
            if i < NUM_BUCKETS - 1 {
                assert_eq!(bucket_index(bucket_le(i) + 1), i + 1, "successor of {i}");
            }
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = fresh();
        {
            let _s = span!("test.disabled.span");
            add("test.disabled.counter", 3);
            record("test.disabled.histogram", 9);
            event!("test.disabled.event");
        }
        let snap = snapshot();
        assert!(snap.spans.iter().all(|s| s.name != "test.disabled.span"));
        assert!(!snap.counters.contains_key("test.disabled.counter"));
        assert!(!snap.histograms.contains_key("test.disabled.histogram"));
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = fresh();
        enable();
        {
            let _outer = span!("test.outer");
            for _ in 0..3 {
                let _inner = span!("test.inner");
                event!("test.tick");
            }
        }
        disable();
        let snap = snapshot();
        let outer = snap
            .spans
            .iter()
            .find(|s| s.name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.calls, 1);
        let inner = outer
            .children
            .iter()
            .find(|s| s.name == "test.inner")
            .expect("inner nested under outer");
        assert_eq!(inner.calls, 3);
        let tick = inner
            .children
            .iter()
            .find(|s| s.name == "test.tick")
            .expect("event nested under inner");
        assert_eq!(tick.calls, 3);
        assert_eq!(tick.total_ns, 0);
        reset();
    }

    #[test]
    fn concurrent_counter_increments_sum() {
        let _g = fresh();
        enable();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = Counter::named("test.concurrent.counter");
                    let h = Histogram::named("test.concurrent.histogram");
                    for i in 0..per_thread {
                        c.add(1);
                        h.record(i % 37);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        disable();
        let snap = snapshot();
        assert_eq!(
            snap.counters["test.concurrent.counter"],
            threads * per_thread
        );
        assert_eq!(
            snap.histograms["test.concurrent.histogram"].count,
            threads * per_thread
        );
        reset();
    }

    #[test]
    fn bucket_boundaries_are_stable() {
        // The mapping is part of the export format: value → bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Inclusive upper bounds.
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(3), 7);
        assert_eq!(bucket_le(NUM_BUCKETS - 1), u64::MAX);
        // Every value lands in the bucket whose bound covers it.
        for v in [0u64, 1, 2, 3, 4, 5, 100, 1023, 1024, 1 << 45] {
            let i = bucket_index(v);
            assert!(v <= bucket_le(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_le(i - 1), "{v} below its bucket");
            }
        }
    }

    #[test]
    fn histogram_stats_track_min_max_sum() {
        let _g = fresh();
        enable();
        let h = Histogram::named("test.stats.histogram");
        for v in [5u64, 0, 17, 3] {
            h.record(v);
        }
        disable();
        let snap = snapshot();
        let s = &snap.histograms["test.stats.histogram"];
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 25);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(17));
        assert_eq!(s.mean(), Some(6.25));
        reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let _g = fresh();
        enable();
        let c = Counter::named("test.reset.counter");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        let snap = snapshot();
        assert_eq!(snap.counters["test.reset.counter"], 2);
        disable();
        reset();
    }
}
