//! A minimal JSON value type with writer and parser.
//!
//! The workspace is offline (no serde); telemetry export needs exactly
//! this much JSON: objects, arrays, strings, numbers, booleans, null.
//! The writer escapes strings per RFC 8259; the parser accepts anything
//! the writer emits (plus ordinary whitespace), which is what the
//! round-trip tests and the `trace-check` CI gate rely on.
//!
//! Numbers are stored as `f64`. Counter values above 2^53 would lose
//! precision; telemetry counts stay far below that.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are written without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys are sorted (BTreeMap), so output is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Obj(pairs.into_iter().collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity literal; `null` is the
                    // only representable degradation (and the parser
                    // rejects non-finite numbers anyway).
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offending input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(v)
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per `[`/`{` level; bounding it turns
/// adversarial inputs like `"[".repeat(1 << 20)` into a [`ParseError`]
/// instead of a stack overflow.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    /// Bumps the container nesting depth, failing past [`MAX_DEPTH`].
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    /// Reads exactly four hex digits at the cursor (the payload of a
    /// `\u` escape) and advances past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1; // past 'u'
                            let unit = self.hex4()?;
                            let c = if (0xD800..=0xDBFF).contains(&unit) {
                                // High surrogate: combine with a
                                // following \uXXXX low surrogate;
                                // unpaired → replacement char.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let save = self.pos;
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..=0xDFFF).contains(&low) {
                                        let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(cp).unwrap_or('\u{fffd}')
                                    } else {
                                        self.pos = save;
                                        '\u{fffd}'
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                // Lone low surrogates are also unpaired.
                                char::from_u32(unit).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        let x = text.parse::<f64>().map_err(|_| self.err("bad number"))?;
        if !x.is_finite() {
            // `1e999` overflows to +inf; JSON numbers must stay finite.
            return Err(ParseError {
                offset: start,
                message: "non-finite number".to_string(),
            });
        }
        Ok(Value::Num(x))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-17.0),
            Value::Num(2.5),
            Value::Str("hello".into()),
            Value::Str("quotes \" and \\ and\nnewline\ttab\u{1}ctl".into()),
        ] {
            let text = v.to_string();
            assert_eq!(parse(&text).expect("parses"), v, "text: {text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj([
            (
                "list".to_string(),
                Value::Arr(vec![1u64.into(), 2u64.into()]),
            ),
            (
                "nested".to_string(),
                Value::obj([("k".to_string(), Value::Str("v|,\"".into()))]),
            ),
            ("flag".to_string(), true.into()),
            ("nothing".to_string(), Value::Null),
        ]);
        assert_eq!(parse(&v.to_string()).expect("parses"), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"a\" : [ 1 , \"π ≤ 4\" ] , \"b\" : null } ").expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[1].as_str()),
            Some("π ≤ 4")
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("[1, @]").expect_err("must fail");
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn rejects_malformed_escapes() {
        for bad in [
            r#""\x""#,
            r#""\u12""#,
            r#""\u12zz""#,
            r#""\u""#,
            "\"\\",
            r#""\"#,
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1D11E (musical G clef) = 𝄞.
        let v = parse(r#""𝄞""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{1D11E}"));
        // Unpaired high surrogate → replacement char, rest of string kept.
        let v = parse(r#""\ud834x""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{fffd}x"));
        // High surrogate followed by a non-surrogate escape: replacement
        // char, then the decoded escape.
        let v = parse(r#""\ud834A""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{fffd}A"));
        // Lone low surrogate → replacement char.
        let v = parse(r#""\udd1e""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn bounds_recursion_depth() {
        // Just inside the bound parses; one level past it fails cleanly.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&deep).expect_err("too deep");
        assert!(err.message.contains("MAX_DEPTH"), "msg: {}", err.message);
        // An adversarial prefix with no closers must not overflow the
        // stack either.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"a\":".repeat(100_000)).is_err());
    }

    #[test]
    fn rejects_non_finite_numbers() {
        for bad in ["NaN", "Infinity", "-Infinity", "1e999", "-1e999"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
        // The writer degrades non-finite values to null rather than
        // emitting text the parser would reject.
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
        let arr = Value::Arr(vec![Value::Num(f64::NEG_INFINITY), Value::Num(1.0)]);
        assert_eq!(
            parse(&arr.to_string())
                .expect("parses")
                .as_arr()
                .map(<[Value]>::len),
            Some(2)
        );
    }
}
