//! `trace-check` — CI gate for telemetry artifacts.
//!
//! Usage: `trace-check METRICS_JSON`
//!
//! Exits non-zero (with a diagnostic) unless the file exists, parses as
//! JSON, and contains a non-empty `experiments` array in which every
//! entry carries an `id`, a span tree, and a counters object — the shape
//! `experiments --metrics` writes.

use locert_trace::json::{self, Value};
use std::process::ExitCode;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let experiments = doc
        .get("experiments")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: missing top-level \"experiments\" array"))?;
    if experiments.is_empty() {
        return Err(format!("{path}: \"experiments\" is empty"));
    }
    for (i, exp) in experiments.iter().enumerate() {
        let id = exp
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: experiments[{i}] has no \"id\""))?;
        let spans = exp
            .get("telemetry")
            .and_then(|t| t.get("spans"))
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{path}: experiment {id} has no span tree"))?;
        if spans.is_empty() {
            return Err(format!("{path}: experiment {id} recorded no spans"));
        }
        match exp.get("telemetry").and_then(|t| t.get("counters")) {
            Some(Value::Obj(counters)) if !counters.is_empty() => {}
            _ => return Err(format!("{path}: experiment {id} recorded no counters")),
        }
    }
    Ok(format!(
        "{path}: OK ({} experiments, {} bytes)",
        experiments.len(),
        text.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace-check METRICS_JSON");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
