//! `trace-check` — CI gate for telemetry artifacts.
//!
//! Usage:
//!
//! ```text
//! trace-check METRICS_JSON
//! trace-check --compare A_JSON B_JSON
//! ```
//!
//! The single-file mode exits non-zero (with a diagnostic) unless the
//! file exists, parses as JSON, and has the shape `experiments --metrics`
//! writes: a `locert-trace/v2` document with a non-empty `experiments`
//! array (per entry: `id` + non-empty deterministic counters) and a
//! matching `timings` array (per entry: `id` + `wall_s` + span tree).
//! The optional v2 `journal` section (written when the run recorded a
//! journal) must carry consistent ring-buffer accounting: `capacity`
//! ≥ 1, `entries` ≤ `capacity`, and a `dropped` count — reported in the
//! OK line so a truncated journal is visible at a glance. The legacy
//! `locert-trace/v1` shape (wall_s and spans inline in `experiments`)
//! is still accepted.
//!
//! `--compare` checks that two dumps have byte-identical *deterministic*
//! sections (`quick` + `experiments`, serialized with sorted keys) — the
//! CI determinism gate between `LOCERT_THREADS=1` and `=4` runs. The
//! `timings` sections are expected to differ and are ignored.

use locert_trace::json::{self, Value};
use std::process::ExitCode;

fn parse_doc(path: &str) -> Result<(Value, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((doc, text.len()))
}

fn check(path: &str) -> Result<String, String> {
    let (doc, bytes) = parse_doc(path)?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    let v2 = match schema {
        "locert-trace/v2" => true,
        "locert-trace/v1" => false,
        other => return Err(format!("{path}: unknown schema {other:?}")),
    };
    let experiments = doc
        .get("experiments")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: missing top-level \"experiments\" array"))?;
    if experiments.is_empty() {
        return Err(format!("{path}: \"experiments\" is empty"));
    }
    for (i, exp) in experiments.iter().enumerate() {
        let id = exp
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: experiments[{i}] has no \"id\""))?;
        match exp.get("telemetry").and_then(|t| t.get("counters")) {
            Some(Value::Obj(counters)) if !counters.is_empty() => {}
            _ => return Err(format!("{path}: experiment {id} recorded no counters")),
        }
        if !v2 {
            // v1 carried wall_s and the span tree inline.
            let spans = exp
                .get("telemetry")
                .and_then(|t| t.get("spans"))
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{path}: experiment {id} has no span tree"))?;
            if spans.is_empty() {
                return Err(format!("{path}: experiment {id} recorded no spans"));
            }
        }
    }
    if v2 {
        let timings = doc
            .get("timings")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{path}: missing top-level \"timings\" array"))?;
        if timings.len() != experiments.len() {
            return Err(format!(
                "{path}: timings has {} entries, experiments {}",
                timings.len(),
                experiments.len()
            ));
        }
        for (i, t) in timings.iter().enumerate() {
            let id = t
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{path}: timings[{i}] has no \"id\""))?;
            if t.get("wall_s").and_then(Value::as_num).is_none() {
                return Err(format!("{path}: timing {id} has no wall_s"));
            }
            let spans = t
                .get("telemetry")
                .and_then(|tel| tel.get("spans"))
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{path}: timing {id} has no span tree"))?;
            if spans.is_empty() {
                return Err(format!("{path}: timing {id} recorded no spans"));
            }
        }
    }
    let journal_note = match doc.get("journal") {
        None => String::new(),
        Some(_) if !v2 => {
            return Err(format!(
                "{path}: \"journal\" section requires locert-trace/v2"
            ));
        }
        Some(j) => {
            let field = |name: &str| {
                j.get(name)
                    .and_then(Value::as_num)
                    .filter(|v| v.fract() == 0.0 && *v >= 0.0)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("{path}: journal section has no integer \"{name}\""))
            };
            let capacity = field("capacity")?;
            let dropped = field("dropped")?;
            let entries = field("entries")?;
            if capacity == 0 {
                return Err(format!("{path}: journal capacity must be at least 1"));
            }
            if entries > capacity {
                return Err(format!(
                    "{path}: journal claims {entries} entries in a ring of {capacity}"
                ));
            }
            if dropped > 0 && entries < capacity {
                return Err(format!(
                    "{path}: journal dropped {dropped} events but the ring is not full \
                     ({entries} of {capacity})"
                ));
            }
            format!(", journal {entries}/{capacity} events, {dropped} dropped")
        }
    };
    Ok(format!(
        "{path}: OK ({schema}, {} experiments, {bytes} bytes{journal_note})",
        experiments.len(),
    ))
}

/// The deterministic section of a dump, re-serialized (sorted keys, so
/// formatting differences don't matter — only content does).
fn deterministic_section(path: &str) -> Result<String, String> {
    let (doc, _) = parse_doc(path)?;
    let quick = doc
        .get("quick")
        .cloned()
        .ok_or_else(|| format!("{path}: missing \"quick\""))?;
    let experiments = doc
        .get("experiments")
        .cloned()
        .ok_or_else(|| format!("{path}: missing \"experiments\""))?;
    Ok(Value::obj([
        ("quick".to_string(), quick),
        ("experiments".to_string(), experiments),
    ])
    .to_string())
}

fn compare(a: &str, b: &str) -> Result<String, String> {
    let sa = deterministic_section(a)?;
    let sb = deterministic_section(b)?;
    if sa == sb {
        Ok(format!(
            "deterministic sections identical ({a} vs {b}, {} bytes)",
            sa.len()
        ))
    } else {
        // Locate the first divergence for the diagnostic.
        let at = sa
            .bytes()
            .zip(sb.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| sa.len().min(sb.len()));
        let ctx = |s: &str| {
            let start = at.saturating_sub(40);
            let end = (at + 40).min(s.len());
            s.get(start..end)
                .unwrap_or("<non-utf8 boundary>")
                .to_string()
        };
        Err(format!(
            "deterministic sections differ at byte {at}:\n  {a}: …{}…\n  {b}: …{}…",
            ctx(&sa),
            ctx(&sb)
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [path] => check(path),
        [flag, a, b] if flag == "--compare" => compare(a, b),
        _ => {
            eprintln!("usage: trace-check METRICS_JSON | trace-check --compare A_JSON B_JSON");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
