//! The bit ledger: per-certificate attribution of bit spans to named
//! witness components.
//!
//! Certificate size is the paper's central measure, and the schemes'
//! upper bounds are proved component by component — a spanning-tree
//! pointer here, a distance counter there, an automaton state, a kernel
//! table. The ledger makes that decomposition observable: while a
//! [`capture`] is active, every prover records, for each certificate it
//! finalizes, the spans of bits it attributed to named components (via
//! `BitWriter::component` in `locert-core`). Spans are derived from
//! consecutive component marks, so they tile the certificate by
//! construction — start to finish, no gaps, no overlaps — and a
//! debug-mode invariant on the prover side insists the first mark sits
//! at bit 0, i.e. that *every* bit is attributed.
//!
//! Mirrors the [`crate::journal`] capture seam: a global activity count
//! gates the instrumentation points (one relaxed atomic load while no
//! capture is active anywhere), and records divert into a thread-local
//! sink so concurrent captures on different threads cannot mix.
//!
//! # Example
//!
//! ```
//! use locert_trace::ledger::{self, CertLedger};
//!
//! let ((), ledger) = ledger::capture(|| {
//!     // A prover would do this through BitWriter::component /
//!     // BitWriter::finish_for; the raw call records vertex 0 with a
//!     // 5-bit "root-id" span followed by a 3-bit "distance" span.
//!     ledger::record_cert(0, 8, &[("root-id", 0), ("distance", 5)]);
//! });
//! let cert = &ledger.certs[0];
//! assert!(cert.is_tiled() && cert.fully_attributed());
//! assert_eq!(cert.component_bits()["distance"], 3);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The pseudo-component charged with bits written before the first
/// component mark. A fully instrumented prover never produces it; the
/// conformance gate treats its presence as an attribution failure.
pub const UNATTRIBUTED: &str = "unattributed";

/// One attributed bit span inside a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSpan {
    /// The witness component the bits belong to (e.g. `"root-id"`,
    /// `"distance"`, `"automaton-state"`, `"kernel-table"`).
    pub component: &'static str,
    /// First bit of the span.
    pub start: usize,
    /// Length in bits (always positive; empty marks are dropped).
    pub len: usize,
}

/// The attribution of one finalized certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertLedger {
    /// The vertex (NodeId index) the certificate was written for.
    pub vertex: usize,
    /// Total certificate length in bits.
    pub total_bits: usize,
    /// Attributed spans in bit order.
    pub spans: Vec<LedgerSpan>,
}

impl CertLedger {
    /// Builds the span list from `(component, start)` marks taken at
    /// monotonically non-decreasing bit offsets. Each span runs from its
    /// mark to the next mark (the last to `total_bits`); zero-length
    /// spans are dropped. Bits before the first mark — attribution the
    /// prover skipped — become an [`UNATTRIBUTED`] span so the ledger
    /// still tiles the certificate.
    pub fn from_marks(vertex: usize, total_bits: usize, marks: &[(&'static str, usize)]) -> Self {
        let mut spans = Vec::with_capacity(marks.len() + 1);
        let first = marks.first().map_or(total_bits, |&(_, start)| start);
        if first > 0 {
            spans.push(LedgerSpan {
                component: UNATTRIBUTED,
                start: 0,
                len: first,
            });
        }
        for (i, &(component, start)) in marks.iter().enumerate() {
            let end = marks.get(i + 1).map_or(total_bits, |&(_, next)| next);
            debug_assert!(start <= end, "component marks out of order");
            debug_assert!(end <= total_bits, "component mark past the end");
            if end > start {
                spans.push(LedgerSpan {
                    component,
                    start,
                    len: end - start,
                });
            }
        }
        CertLedger {
            vertex,
            total_bits,
            spans,
        }
    }

    /// Whether the spans exactly tile `0..total_bits`: contiguous, in
    /// order, no gaps, no overlaps. True by construction for ledgers
    /// built through [`CertLedger::from_marks`].
    pub fn is_tiled(&self) -> bool {
        let mut pos = 0;
        for span in &self.spans {
            if span.start != pos || span.len == 0 {
                return false;
            }
            pos += span.len;
        }
        pos == self.total_bits
    }

    /// Whether the ledger is tiled *and* every bit carries a real
    /// component name (no [`UNATTRIBUTED`] span).
    pub fn fully_attributed(&self) -> bool {
        self.is_tiled() && self.spans.iter().all(|s| s.component != UNATTRIBUTED)
    }

    /// Bits per component in this certificate (a component marked
    /// several times sums its spans).
    pub fn component_bits(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for span in &self.spans {
            *out.entry(span.component).or_insert(0) += span.len;
        }
        out
    }
}

/// Everything one [`capture`] saw: the attribution of every certificate
/// finalized during the capture, in finish order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitLedger {
    /// Per-certificate records, in the order the provers finished them.
    pub certs: Vec<CertLedger>,
}

impl BitLedger {
    /// The *final* record per vertex. Composite provers (combinators,
    /// block decompositions) finalize inner certificates first and the
    /// enclosing certificate last, so the last record for a vertex is
    /// the one that describes the certificate actually assigned.
    pub fn final_certs(&self) -> BTreeMap<usize, &CertLedger> {
        let mut out = BTreeMap::new();
        for cert in &self.certs {
            out.insert(cert.vertex, cert);
        }
        out
    }

    /// Maximum certificate size over the final records (the paper's
    /// measure, recomputed from the ledger).
    pub fn max_bits(&self) -> usize {
        self.final_certs()
            .values()
            .map(|c| c.total_bits)
            .max()
            .unwrap_or(0)
    }

    /// Per-component totals across all final certificates.
    pub fn component_bits(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for cert in self.final_certs().values() {
            for (component, bits) in cert.component_bits() {
                *out.entry(component).or_insert(0) += bits;
            }
        }
        out
    }

    /// Per-component maxima over final certificates: the largest number
    /// of bits any single vertex spends on each component. The
    /// per-component analogue of [`BitLedger::max_bits`].
    pub fn component_max_bits(&self) -> BTreeMap<&'static str, usize> {
        let mut out: BTreeMap<&'static str, usize> = BTreeMap::new();
        for cert in self.final_certs().values() {
            for (component, bits) in cert.component_bits() {
                let slot = out.entry(component).or_insert(0);
                *slot = (*slot).max(bits);
            }
        }
        out
    }

    /// Whether every final certificate is fully attributed.
    pub fn fully_attributed(&self) -> bool {
        !self.certs.is_empty() && self.final_certs().values().all(|c| c.fully_attributed())
    }
}

// ---------------------------------------------------------------------------
// Capture machinery
// ---------------------------------------------------------------------------

/// Number of captures active across all threads. Non-zero tells
/// `BitWriter` instances to keep component marks at all; the
/// thread-local sink then decides whether a finalized certificate is
/// actually recorded (only on the capturing thread).
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's capture sink, if a capture is running on it.
    static SINK: RefCell<Option<Vec<CertLedger>>> = const { RefCell::new(None) };
}

/// Whether any capture is active anywhere (one relaxed atomic load —
/// the whole cost of a disabled attribution point).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Records the attribution of a finalized certificate — if a capture is
/// active *on this thread*. Called by `BitWriter::finish_for`; other
/// threads' prover runs are ignored, so concurrent captures cannot mix.
pub fn record_cert(vertex: usize, total_bits: usize, marks: &[(&'static str, usize)]) {
    if !active() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.push(CertLedger::from_marks(vertex, total_bits, marks));
        }
    });
}

/// Runs `f` with bit-ledger recording active on this thread and returns
/// its result together with everything the provers attributed. Captures
/// nest (the outer sink is saved and restored, even on unwind); a
/// nested capture's records do not reach the outer one.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, BitLedger) {
    struct Restore(Option<Vec<CertLedger>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let outer = self.0.take();
            SINK.with(|s| *s.borrow_mut() = outer);
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let mut guard = Restore(SINK.with(|s| s.borrow_mut().replace(Vec::new())));
    let result = f();
    let certs = SINK
        .with(|s| std::mem::replace(&mut *s.borrow_mut(), guard.0.take()))
        .unwrap_or_default();
    // The outer sink is already back in place; running the guard's Drop
    // now would overwrite it with the `None` we just took out, losing a
    // nesting capture's records. Forget it and decrement ACTIVE by hand
    // (the Drop path still restores correctly on unwind, where the swap
    // above never ran).
    std::mem::forget(guard);
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
    (result, BitLedger { certs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_tile_by_construction() {
        let c = CertLedger::from_marks(3, 10, &[("a", 0), ("b", 4), ("c", 4), ("d", 9)]);
        assert!(c.is_tiled());
        assert!(c.fully_attributed());
        // The zero-length "b"/"c" boundary keeps only the non-empty span.
        assert_eq!(
            c.spans
                .iter()
                .map(|s| (s.component, s.start, s.len))
                .collect::<Vec<_>>(),
            vec![("a", 0, 4), ("c", 4, 5), ("d", 9, 1)]
        );
        assert_eq!(c.component_bits()["c"], 5);
    }

    #[test]
    fn missing_leading_mark_becomes_unattributed() {
        let c = CertLedger::from_marks(0, 8, &[("tail", 5)]);
        assert!(c.is_tiled());
        assert!(!c.fully_attributed());
        assert_eq!(c.spans[0].component, UNATTRIBUTED);
        assert_eq!(c.spans[0].len, 5);
    }

    #[test]
    fn no_marks_at_all_is_one_unattributed_span() {
        let c = CertLedger::from_marks(0, 6, &[]);
        assert!(c.is_tiled());
        assert!(!c.fully_attributed());
        assert_eq!(c.spans.len(), 1);
        // The empty certificate is trivially fully attributed.
        let e = CertLedger::from_marks(0, 0, &[]);
        assert!(e.is_tiled() && e.fully_attributed());
        assert!(e.spans.is_empty());
    }

    #[test]
    fn capture_collects_and_deactivates() {
        assert!(!active());
        let (value, ledger) = capture(|| {
            assert!(active());
            record_cert(0, 4, &[("x", 0)]);
            record_cert(1, 2, &[("y", 0)]);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(ledger.certs.len(), 2);
        assert!(ledger.fully_attributed());
        assert_eq!(ledger.max_bits(), 4);
        assert!(!active());
        // Records outside a capture go nowhere.
        record_cert(9, 8, &[("z", 0)]);
        let ((), empty) = capture(|| {});
        assert!(empty.certs.is_empty());
        assert!(!empty.fully_attributed(), "empty ledger attests nothing");
    }

    #[test]
    fn last_record_per_vertex_wins() {
        let ((), ledger) = capture(|| {
            // An inner prover writes vertex 0 first (e.g. a combinator's
            // first operand), then the composite writes the real cert.
            record_cert(0, 3, &[("inner", 0)]);
            record_cert(0, 9, &[("length-header", 0), ("embedded", 4)]);
        });
        let finals = ledger.final_certs();
        assert_eq!(finals.len(), 1);
        assert_eq!(finals[&0].total_bits, 9);
        assert_eq!(ledger.component_bits()["embedded"], 5);
        assert_eq!(ledger.component_max_bits()["length-header"], 4);
        assert_eq!(ledger.max_bits(), 9);
    }

    #[test]
    fn captures_nest_without_leaking() {
        let ((), outer) = capture(|| {
            record_cert(0, 2, &[("outer", 0)]);
            let ((), inner) = capture(|| {
                record_cert(5, 7, &[("inner", 0)]);
            });
            assert_eq!(inner.certs.len(), 1);
            assert_eq!(inner.certs[0].vertex, 5);
            record_cert(1, 2, &[("outer", 0)]);
        });
        assert_eq!(outer.certs.len(), 2);
        assert!(outer.certs.iter().all(|c| c.spans[0].component == "outer"));
    }
}
