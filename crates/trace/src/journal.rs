//! A structured, replayable event journal.
//!
//! Where the span/counter layer *aggregates* (how many, how long), the
//! journal *records*: a bounded ring buffer of typed [`Event`]s in the
//! order they happened — prover start/end, one verdict per vertex with
//! its rejection reason and certificate-view volume, fault injections,
//! campaign rounds. Entries carry a monotone sequence number and **no
//! timestamps**, so a run with a fixed seed produces a byte-identical
//! JSONL export: the journal is the replay artifact.
//!
//! The journal is independent of the span subscriber: it has its own
//! enable flag so `experiments --journal` can record events without
//! paying for span aggregation (and vice versa). Like every other
//! instrumentation point in this crate, a disabled journal costs one
//! relaxed atomic load per call site — [`record_with`] takes a closure
//! so event construction (and its allocations) is skipped entirely when
//! recording is off.
//!
//! Event payloads are plain `u64`/`String` values rather than types from
//! `locert-core`: the trace crate sits below core in the dependency
//! graph, and string reason codes are what the JSONL format stores
//! anyway. Core's `RejectReason::code()` is the bridge.

use crate::json::{self, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema identifier written in the JSONL header line.
pub const JOURNAL_SCHEMA: &str = "locert-journal/v1";

/// Default ring-buffer capacity (entries). Large enough for every
/// experiment in the suite; a run that overflows it keeps the *newest*
/// entries and counts the dropped ones.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Registry counter bumped once per entry evicted from the ring buffer
/// (overflow or a capacity shrink). Lets CI artifacts surface silent
/// truncation: a metrics snapshot with this counter non-zero means the
/// journal on disk is missing its oldest events.
pub const DROPPED_EVENTS_COUNTER: &str = "journal.dropped_events";

fn dropped_events_counter() -> &'static crate::Counter {
    static C: OnceLock<crate::Counter> = OnceLock::new();
    C.get_or_init(|| crate::Counter::named(DROPPED_EVENTS_COUNTER))
}

/// One journal event. Variants mirror the phases of a certification
/// run; reasons are kebab-case codes (see `locert-core`'s
/// `RejectReason::code`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A prover began assigning certificates for `scheme`.
    ProverStart {
        /// Scheme display name.
        scheme: String,
    },
    /// The prover finished; `ok` is false when it returned an error.
    ProverEnd {
        /// Scheme display name.
        scheme: String,
        /// Whether certificate assignment succeeded.
        ok: bool,
        /// Maximum per-vertex certificate size in bits (0 on failure).
        max_bits: u64,
    },
    /// One vertex's verification verdict.
    Verdict {
        /// The vertex (NodeId index).
        vertex: u64,
        /// Whether the vertex accepted.
        accepted: bool,
        /// Rejection reason code; `None` when accepted.
        reason: Option<String>,
        /// Certificate bits in the vertex's radius-1 view (own + neighbors).
        bits_read: u64,
    },
    /// A certificate was mutated in place (`Assignment::cert_mut`).
    CertMutated {
        /// The vertex whose certificate was handed out mutably.
        vertex: u64,
    },
    /// A fault model touched the world at `site`.
    FaultInjected {
        /// Fault model name (`FaultModel::name`).
        model: String,
        /// The targeted vertex.
        site: u64,
        /// Whether the injection changed the presented world.
        effective: bool,
    },
    /// A verifier rejected in a faulty world; provenance links it back
    /// to the injection site.
    Detection {
        /// Fault model name.
        model: String,
        /// The injected fault site.
        site: u64,
        /// The rejecting vertex.
        detector: u64,
        /// Rejection reason code.
        reason: String,
        /// BFS distance from fault site to detector, when connected.
        distance: Option<u64>,
    },
    /// One run of a fault campaign finished.
    CampaignRound {
        /// Fault model name.
        model: String,
        /// Run index within the campaign.
        run: u64,
        /// Whether any vertex rejected.
        detected: bool,
        /// Distance from fault site to the nearest rejector.
        locality: Option<u64>,
    },
    /// The differential oracle observed a disagreement between a scheme
    /// run and ground truth, a sibling scheme, or a metamorphic relation.
    OracleDisagreement {
        /// Oracle case name.
        case: String,
        /// Which relation broke (e.g. `completeness`, `sibling:<name>`,
        /// `relabel`, `union`).
        relation: String,
        /// Vertex count of the disagreeing instance.
        vertices: u64,
    },
    /// One accepted step of the counterexample shrinker.
    ShrinkStep {
        /// Oracle case name.
        case: String,
        /// What was removed (`drop-vertex` or `drop-edge`).
        action: String,
        /// Vertex count after the step.
        vertices: u64,
    },
    /// A network frame was handed to the link layer (`locert-net`).
    NetSend {
        /// Sending vertex (NodeId index).
        src: u64,
        /// Receiving vertex (NodeId index).
        dst: u64,
        /// Logical send time in the discrete-event clock.
        time: u64,
        /// Frame payload size in bits (header + certificate).
        bits: u64,
        /// Frame kind: `data` or `ack`.
        kind: String,
    },
    /// The link layer discarded a frame.
    NetDrop {
        /// Sending vertex.
        src: u64,
        /// Intended receiver.
        dst: u64,
        /// Logical send time.
        time: u64,
        /// Why the frame died: `loss`, `partition`, or `dead-receiver`.
        cause: String,
    },
    /// A node's retransmit timer fired and it resent a data frame.
    NetRetry {
        /// Retransmitting vertex.
        node: u64,
        /// Neighbor index (position in the adjacency list, not NodeId).
        neighbor: u64,
        /// Retry attempt number (1 = first retransmit).
        attempt: u64,
        /// Logical time of the retransmit.
        time: u64,
    },
    /// A node crashed (losing its certificate) or restarted.
    NetCrash {
        /// The affected vertex.
        node: u64,
        /// Logical time of the transition.
        time: u64,
        /// `true` on crash, `false` on restart.
        down: bool,
    },
    /// A node's final network verdict at quiescence.
    NetVerdict {
        /// The vertex.
        vertex: u64,
        /// `accepted`, `rejected`, or `inconclusive`.
        status: String,
        /// Rejection reason code when `status == "rejected"`.
        reason: Option<String>,
        /// Count of neighbors never heard from (inconclusive only).
        missing: u64,
        /// Logical time the verdict last changed.
        time: u64,
    },
    /// One `locert-serve` request lifecycle: admission through verdict
    /// (or typed rejection), with its cache disposition.
    ServeRequest {
        /// Connection ordinal, in accept order.
        conn: u64,
        /// Request ordinal within the connection (batch entries count
        /// individually).
        req: u64,
        /// Stable scheme id (`locert-core`'s shared catalogue).
        scheme: String,
        /// Request mode: `prove`, `verify`, or `roundtrip`.
        mode: String,
        /// Vertex count of the request graph.
        vertices: u64,
        /// `accepted`, `rejected`, or a typed wire error code
        /// (e.g. `unknown-scheme`, `overloaded`).
        outcome: String,
        /// Certificate-cache disposition: `hit`, `miss`, or `bypass`
        /// (modes that never consult the cache).
        cache: String,
    },
    /// A logical round boundary for windowed analytics. Emitted at the
    /// *start* of a round: everything up to the next boundary event
    /// belongs to this round.
    ///
    /// `round` is the producer's own round number when it has a
    /// deterministic one (fault campaigns use the run index); `None`
    /// when the producer has no local counter (`run_verification`), in
    /// which case readers assign ordinals by position — well-defined
    /// because the journal itself is deterministic for a fixed seed.
    RoundMark {
        /// The emitting subsystem (e.g. `core.verify`,
        /// `core.faults.campaign`).
        scope: String,
        /// Producer-local round number, when one exists.
        round: Option<u64>,
    },
    /// A free-form boundary marker (experiment start, phase change).
    Marker {
        /// Marker label.
        label: String,
    },
}

/// A journal entry: the event plus its position in the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Monotone sequence number, assigned at record time. Survives
    /// ring-buffer eviction: after overflow the first retained entry
    /// has `seq > 0`.
    pub seq: u64,
    /// The recorded event.
    pub event: Event,
}

/// Everything the journal held when the snapshot was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Retained entries, oldest first.
    pub entries: Vec<Entry>,
    /// Entries evicted by the ring buffer before the snapshot.
    pub dropped: u64,
}

impl JournalSnapshot {
    /// The verdict events, in record order — the per-vertex decision
    /// trail a replay reconstructs.
    pub fn verdicts(&self) -> impl Iterator<Item = &Event> {
        self.entries
            .iter()
            .map(|e| &e.event)
            .filter(|e| matches!(e, Event::Verdict { .. }))
    }
}

static JOURNAL_ENABLED: AtomicBool = AtomicBool::new(false);

struct Buf {
    entries: VecDeque<Entry>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

fn buf() -> &'static Mutex<Buf> {
    static BUF: OnceLock<Mutex<Buf>> = OnceLock::new();
    BUF.get_or_init(|| {
        Mutex::new(Buf {
            entries: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dropped: 0,
        })
    })
}

/// Turns journal recording on.
pub fn enable() {
    JOURNAL_ENABLED.store(true, Ordering::Relaxed);
}

/// Turns journal recording off. Already-recorded entries stay until
/// [`reset`].
pub fn disable() {
    JOURNAL_ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is on (one relaxed load — the entire cost of a
/// disabled instrumentation point).
#[inline]
pub fn enabled() -> bool {
    JOURNAL_ENABLED.load(Ordering::Relaxed)
}

/// Sets the ring-buffer capacity. Existing overflow is evicted oldest
/// first.
pub fn set_capacity(capacity: usize) {
    let evicted;
    {
        let mut b = buf().lock().expect("journal buffer");
        b.capacity = capacity.max(1);
        let before = b.entries.len();
        while b.entries.len() > b.capacity {
            b.entries.pop_front();
            b.dropped += 1;
        }
        evicted = (before - b.entries.len()) as u64;
    }
    if evicted > 0 {
        dropped_events_counter().add(evicted);
    }
}

/// The current ring-buffer capacity in entries.
pub fn capacity() -> usize {
    buf().lock().expect("journal buffer").capacity
}

/// Clears all entries and restarts sequence numbering.
pub fn reset() {
    let mut b = buf().lock().expect("journal buffer");
    b.entries.clear();
    b.next_seq = 0;
    b.dropped = 0;
}

thread_local! {
    /// Active [`capture`] buffer for this thread, if any. A stack via
    /// the saved outer value in `capture` itself, so captures nest.
    static CAPTURE: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
}

/// Records the event produced by `make` — *if* the journal is enabled.
/// When disabled this is exactly one relaxed atomic load; the closure
/// is never called, so callers may capture freely and build strings
/// inside it without a disabled-path cost.
///
/// Inside a [`capture`] on this thread, the event is diverted to the
/// capture buffer instead of the global ring.
#[inline]
pub fn record_with(make: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let event = make();
    let diverted = CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        match c.as_mut() {
            Some(buffer) => {
                buffer.push(event.clone());
                true
            }
            None => false,
        }
    });
    if diverted {
        return;
    }
    append_one(event);
}

fn append_one(event: Event) {
    // Load the subscriber flag before taking the buffer lock so the
    // common no-subscriber case never clones the event.
    let live = stream::active();
    let mut b = buf().lock().expect("journal buffer");
    let seq = b.next_seq;
    b.next_seq += 1;
    let mut evicted = false;
    if b.entries.len() == b.capacity {
        b.entries.pop_front();
        b.dropped += 1;
        evicted = true;
    }
    let entry = Entry { seq, event };
    let published = live.then(|| entry.clone());
    b.entries.push_back(entry);
    drop(b);
    // Outside the buffer lock: the registry and subscriber locks must
    // never nest inside it (and vice versa).
    if evicted {
        dropped_events_counter().add(1);
    }
    if let Some(entry) = published {
        stream::publish(&entry);
    }
}

/// Runs `f` with this thread's journal writes diverted into a private
/// buffer, returning `f`'s result together with the captured events (in
/// the order they were recorded). Nothing reaches the global ring until
/// the caller hands the buffer to [`append_events`].
///
/// This is the determinism seam for parallel work: tasks that may run
/// in any order and on any thread capture their events locally, and the
/// coordinator appends the buffers in a canonical order — the resulting
/// journal is byte-identical to a sequential run. When the journal is
/// disabled `f` runs unwrapped and the returned buffer is empty.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    if !enabled() {
        return (f(), Vec::new());
    }
    /// Restores the outer buffer even if `f` unwinds, so a panicking
    /// task on a long-lived worker thread can't leave the diversion
    /// installed (captured events are dropped with the panic).
    struct Restore(Option<Vec<Event>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let outer = self.0.take();
            CAPTURE.with(|c| *c.borrow_mut() = outer);
        }
    }
    let mut guard = Restore(CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())));
    let result = f();
    let events = CAPTURE
        .with(|c| std::mem::replace(&mut *c.borrow_mut(), guard.0.take()))
        .unwrap_or_default();
    std::mem::forget(guard);
    (result, events)
}

/// Appends pre-recorded events to the journal in order, assigning
/// sequence numbers at append time. The flush half of [`capture`].
pub fn append_events(events: impl IntoIterator<Item = Event>) {
    if !enabled() {
        return;
    }
    for event in events {
        append_one(event);
    }
}

/// Copies the current contents out of the ring buffer.
pub fn snapshot() -> JournalSnapshot {
    let b = buf().lock().expect("journal buffer");
    JournalSnapshot {
        entries: b.entries.iter().cloned().collect(),
        dropped: b.dropped,
    }
}

// ---------------------------------------------------------------------
// JSONL encoding
// ---------------------------------------------------------------------

fn opt_u64(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Value::from)
}

/// One event as a JSON object (without the `seq` field).
pub fn event_to_json(event: &Event) -> Value {
    let typed = |ty: &str, rest: Vec<(String, Value)>| {
        let mut pairs = vec![("type".to_string(), Value::from(ty))];
        pairs.extend(rest);
        Value::obj(pairs)
    };
    match event {
        Event::ProverStart { scheme } => typed(
            "prover-start",
            vec![("scheme".to_string(), Value::from(scheme.as_str()))],
        ),
        Event::ProverEnd {
            scheme,
            ok,
            max_bits,
        } => typed(
            "prover-end",
            vec![
                ("scheme".to_string(), Value::from(scheme.as_str())),
                ("ok".to_string(), Value::from(*ok)),
                ("max_bits".to_string(), Value::from(*max_bits)),
            ],
        ),
        Event::Verdict {
            vertex,
            accepted,
            reason,
            bits_read,
        } => typed(
            "verdict",
            vec![
                ("vertex".to_string(), Value::from(*vertex)),
                ("accepted".to_string(), Value::from(*accepted)),
                (
                    "reason".to_string(),
                    reason.as_deref().map_or(Value::Null, Value::from),
                ),
                ("bits_read".to_string(), Value::from(*bits_read)),
            ],
        ),
        Event::CertMutated { vertex } => typed(
            "cert-mutated",
            vec![("vertex".to_string(), Value::from(*vertex))],
        ),
        Event::FaultInjected {
            model,
            site,
            effective,
        } => typed(
            "fault-injected",
            vec![
                ("model".to_string(), Value::from(model.as_str())),
                ("site".to_string(), Value::from(*site)),
                ("effective".to_string(), Value::from(*effective)),
            ],
        ),
        Event::Detection {
            model,
            site,
            detector,
            reason,
            distance,
        } => typed(
            "detection",
            vec![
                ("model".to_string(), Value::from(model.as_str())),
                ("site".to_string(), Value::from(*site)),
                ("detector".to_string(), Value::from(*detector)),
                ("reason".to_string(), Value::from(reason.as_str())),
                ("distance".to_string(), opt_u64(*distance)),
            ],
        ),
        Event::CampaignRound {
            model,
            run,
            detected,
            locality,
        } => typed(
            "campaign-round",
            vec![
                ("model".to_string(), Value::from(model.as_str())),
                ("run".to_string(), Value::from(*run)),
                ("detected".to_string(), Value::from(*detected)),
                ("locality".to_string(), opt_u64(*locality)),
            ],
        ),
        Event::OracleDisagreement {
            case,
            relation,
            vertices,
        } => typed(
            "oracle-disagreement",
            vec![
                ("case".to_string(), Value::from(case.as_str())),
                ("relation".to_string(), Value::from(relation.as_str())),
                ("vertices".to_string(), Value::from(*vertices)),
            ],
        ),
        Event::ShrinkStep {
            case,
            action,
            vertices,
        } => typed(
            "shrink-step",
            vec![
                ("case".to_string(), Value::from(case.as_str())),
                ("action".to_string(), Value::from(action.as_str())),
                ("vertices".to_string(), Value::from(*vertices)),
            ],
        ),
        Event::NetSend {
            src,
            dst,
            time,
            bits,
            kind,
        } => typed(
            "net-send",
            vec![
                ("src".to_string(), Value::from(*src)),
                ("dst".to_string(), Value::from(*dst)),
                ("time".to_string(), Value::from(*time)),
                ("bits".to_string(), Value::from(*bits)),
                ("kind".to_string(), Value::from(kind.as_str())),
            ],
        ),
        Event::NetDrop {
            src,
            dst,
            time,
            cause,
        } => typed(
            "net-drop",
            vec![
                ("src".to_string(), Value::from(*src)),
                ("dst".to_string(), Value::from(*dst)),
                ("time".to_string(), Value::from(*time)),
                ("cause".to_string(), Value::from(cause.as_str())),
            ],
        ),
        Event::NetRetry {
            node,
            neighbor,
            attempt,
            time,
        } => typed(
            "net-retry",
            vec![
                ("node".to_string(), Value::from(*node)),
                ("neighbor".to_string(), Value::from(*neighbor)),
                ("attempt".to_string(), Value::from(*attempt)),
                ("time".to_string(), Value::from(*time)),
            ],
        ),
        Event::NetCrash { node, time, down } => typed(
            "net-crash",
            vec![
                ("node".to_string(), Value::from(*node)),
                ("time".to_string(), Value::from(*time)),
                ("down".to_string(), Value::from(*down)),
            ],
        ),
        Event::NetVerdict {
            vertex,
            status,
            reason,
            missing,
            time,
        } => typed(
            "net-verdict",
            vec![
                ("vertex".to_string(), Value::from(*vertex)),
                ("status".to_string(), Value::from(status.as_str())),
                (
                    "reason".to_string(),
                    reason.as_deref().map_or(Value::Null, Value::from),
                ),
                ("missing".to_string(), Value::from(*missing)),
                ("time".to_string(), Value::from(*time)),
            ],
        ),
        Event::ServeRequest {
            conn,
            req,
            scheme,
            mode,
            vertices,
            outcome,
            cache,
        } => typed(
            "serve-request",
            vec![
                ("conn".to_string(), Value::from(*conn)),
                ("req".to_string(), Value::from(*req)),
                ("scheme".to_string(), Value::from(scheme.as_str())),
                ("mode".to_string(), Value::from(mode.as_str())),
                ("vertices".to_string(), Value::from(*vertices)),
                ("outcome".to_string(), Value::from(outcome.as_str())),
                ("cache".to_string(), Value::from(cache.as_str())),
            ],
        ),
        Event::RoundMark { scope, round } => typed(
            "round-mark",
            vec![
                ("scope".to_string(), Value::from(scope.as_str())),
                ("round".to_string(), opt_u64(*round)),
            ],
        ),
        Event::Marker { label } => typed(
            "marker",
            vec![("label".to_string(), Value::from(label.as_str()))],
        ),
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    let x = v.get(key)?.as_num()?;
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 {
        Some(x as u64)
    } else {
        None
    }
}

fn get_opt_u64(v: &Value, key: &str) -> Option<Option<u64>> {
    match v.get(key)? {
        Value::Null => Some(None),
        _ => get_u64(v, key).map(Some),
    }
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    Some(v.get(key)?.as_str()?.to_string())
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Parses one event object back (the inverse of [`event_to_json`]).
pub fn event_from_json(v: &Value) -> Option<Event> {
    match v.get("type")?.as_str()? {
        "prover-start" => Some(Event::ProverStart {
            scheme: get_str(v, "scheme")?,
        }),
        "prover-end" => Some(Event::ProverEnd {
            scheme: get_str(v, "scheme")?,
            ok: get_bool(v, "ok")?,
            max_bits: get_u64(v, "max_bits")?,
        }),
        "verdict" => Some(Event::Verdict {
            vertex: get_u64(v, "vertex")?,
            accepted: get_bool(v, "accepted")?,
            reason: match v.get("reason")? {
                Value::Null => None,
                r => Some(r.as_str()?.to_string()),
            },
            bits_read: get_u64(v, "bits_read")?,
        }),
        "cert-mutated" => Some(Event::CertMutated {
            vertex: get_u64(v, "vertex")?,
        }),
        "fault-injected" => Some(Event::FaultInjected {
            model: get_str(v, "model")?,
            site: get_u64(v, "site")?,
            effective: get_bool(v, "effective")?,
        }),
        "detection" => Some(Event::Detection {
            model: get_str(v, "model")?,
            site: get_u64(v, "site")?,
            detector: get_u64(v, "detector")?,
            reason: get_str(v, "reason")?,
            distance: get_opt_u64(v, "distance")?,
        }),
        "campaign-round" => Some(Event::CampaignRound {
            model: get_str(v, "model")?,
            run: get_u64(v, "run")?,
            detected: get_bool(v, "detected")?,
            locality: get_opt_u64(v, "locality")?,
        }),
        "oracle-disagreement" => Some(Event::OracleDisagreement {
            case: get_str(v, "case")?,
            relation: get_str(v, "relation")?,
            vertices: get_u64(v, "vertices")?,
        }),
        "shrink-step" => Some(Event::ShrinkStep {
            case: get_str(v, "case")?,
            action: get_str(v, "action")?,
            vertices: get_u64(v, "vertices")?,
        }),
        "net-send" => Some(Event::NetSend {
            src: get_u64(v, "src")?,
            dst: get_u64(v, "dst")?,
            time: get_u64(v, "time")?,
            bits: get_u64(v, "bits")?,
            kind: get_str(v, "kind")?,
        }),
        "net-drop" => Some(Event::NetDrop {
            src: get_u64(v, "src")?,
            dst: get_u64(v, "dst")?,
            time: get_u64(v, "time")?,
            cause: get_str(v, "cause")?,
        }),
        "net-retry" => Some(Event::NetRetry {
            node: get_u64(v, "node")?,
            neighbor: get_u64(v, "neighbor")?,
            attempt: get_u64(v, "attempt")?,
            time: get_u64(v, "time")?,
        }),
        "net-crash" => Some(Event::NetCrash {
            node: get_u64(v, "node")?,
            time: get_u64(v, "time")?,
            down: get_bool(v, "down")?,
        }),
        "net-verdict" => Some(Event::NetVerdict {
            vertex: get_u64(v, "vertex")?,
            status: get_str(v, "status")?,
            reason: match v.get("reason")? {
                Value::Null => None,
                r => Some(r.as_str()?.to_string()),
            },
            missing: get_u64(v, "missing")?,
            time: get_u64(v, "time")?,
        }),
        "serve-request" => Some(Event::ServeRequest {
            conn: get_u64(v, "conn")?,
            req: get_u64(v, "req")?,
            scheme: get_str(v, "scheme")?,
            mode: get_str(v, "mode")?,
            vertices: get_u64(v, "vertices")?,
            outcome: get_str(v, "outcome")?,
            cache: get_str(v, "cache")?,
        }),
        "round-mark" => Some(Event::RoundMark {
            scope: get_str(v, "scope")?,
            round: get_opt_u64(v, "round")?,
        }),
        "marker" => Some(Event::Marker {
            label: get_str(v, "label")?,
        }),
        _ => None,
    }
}

/// Streams a snapshot as JSONL into `out`: a header line
/// `{"schema":"locert-journal/v1","dropped":N,"entries":N}` followed by
/// one `{"seq":N,"type":...}` object per entry. Deterministic for a
/// fixed event sequence (no timestamps, sorted keys). One line is
/// buffered at a time, so a million-entry journal writes in O(line)
/// memory — wrap `out` in a [`io::BufWriter`] when it is a file.
///
/// # Errors
///
/// Propagates the first write error from `out`.
pub fn write_jsonl<W: io::Write>(snap: &JournalSnapshot, out: &mut W) -> io::Result<()> {
    let header = Value::obj([
        ("schema".to_string(), Value::from(JOURNAL_SCHEMA)),
        ("dropped".to_string(), Value::from(snap.dropped)),
        (
            "entries".to_string(),
            Value::from(snap.entries.len() as u64),
        ),
    ]);
    writeln!(out, "{header}")?;
    for entry in &snap.entries {
        writeln!(out, "{}", entry_to_jsonl_line(entry))?;
    }
    Ok(())
}

/// One entry as its JSONL line (no trailing newline) — the unit both
/// [`write_jsonl`] and live tailing emit.
pub fn entry_to_jsonl_line(entry: &Entry) -> String {
    let mut obj = match event_to_json(&entry.event) {
        Value::Obj(map) => map,
        _ => unreachable!("event_to_json returns objects"),
    };
    obj.insert("seq".to_string(), Value::from(entry.seq));
    Value::Obj(obj).to_string()
}

/// Serializes a snapshot as one JSONL `String` (see [`write_jsonl`]).
/// Convenient for tests and small journals; prefer [`write_jsonl`] when
/// the destination is a file.
pub fn to_jsonl(snap: &JournalSnapshot) -> String {
    let mut out = Vec::with_capacity(64 + snap.entries.len() * 64);
    write_jsonl(snap, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSONL is UTF-8")
}

/// A JSONL journal decode failure: 1-based line number plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JournalParseError {}

/// Parses a JSONL journal back into a snapshot (the inverse of
/// [`to_jsonl`]).
///
/// # Errors
///
/// [`JournalParseError`] naming the first malformed line: invalid JSON,
/// a bad header, an unknown event type, or a missing field.
pub fn from_jsonl(text: &str) -> Result<JournalSnapshot, JournalParseError> {
    let fail = |line: usize, message: &str| JournalParseError {
        line,
        message: message.to_string(),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (i, header_line) = lines.next().ok_or_else(|| fail(1, "empty journal"))?;
    let header = json::parse(header_line).map_err(|e| fail(i + 1, &format!("bad header: {e}")))?;
    if header.get("schema").and_then(Value::as_str) != Some(JOURNAL_SCHEMA) {
        return Err(fail(i + 1, "missing or unknown schema"));
    }
    let dropped = get_u64(&header, "dropped").ok_or_else(|| fail(i + 1, "bad dropped count"))?;
    let mut entries = Vec::new();
    for (i, line) in lines {
        let v = json::parse(line).map_err(|e| fail(i + 1, &format!("bad entry: {e}")))?;
        let seq = get_u64(&v, "seq").ok_or_else(|| fail(i + 1, "missing seq"))?;
        let event = event_from_json(&v).ok_or_else(|| fail(i + 1, "unknown or malformed event"))?;
        entries.push(Entry { seq, event });
    }
    Ok(JournalSnapshot { entries, dropped })
}

// ---------------------------------------------------------------------
// Live tailing
// ---------------------------------------------------------------------

/// Live journal tailing: bounded per-subscriber queues fed from
/// [`append_one`], so a long-running process (the `/journal/tail` HTTP
/// endpoint, a future `locert-serve` daemon) can watch events as they
/// happen without holding the ring-buffer lock or growing without
/// bound.
///
/// Design constraints, in order:
///
/// 1. **Zero cost with no subscribers.** The recording hot path checks
///    one relaxed atomic ([`active`]) before doing anything — no lock,
///    no clone. The `tests/journal_no_alloc.rs` gate holds with this
///    module compiled in.
/// 2. **Recording never blocks on a slow reader.** Each subscriber has
///    its own bounded [`VecDeque`]; overflow drops that subscriber's
///    *oldest* queued entries and counts them
///    ([`Subscription::dropped`]), mirroring the ring buffer's
///    drop-oldest policy. Publishing only ever takes short
///    uncontended-in-practice mutexes.
/// 3. **Subscribers see the post-flush order.** Events diverted by
///    [`capture`] reach subscribers when the coordinator flushes them
///    via [`append_events`], in canonical order with their final `seq`
///    — a tailer observes the same sequence a snapshot would.
pub mod stream {
    use super::Entry;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
    use std::time::Duration;

    /// Default per-subscriber queue capacity.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

    /// Number of live subscribers; the recording fast path reads this
    /// and nothing else.
    static SUB_COUNT: AtomicUsize = AtomicUsize::new(0);

    struct SubState {
        queue: VecDeque<Entry>,
        dropped: u64,
    }

    struct Shared {
        state: Mutex<SubState>,
        cond: Condvar,
        capacity: usize,
    }

    fn subscribers() -> &'static Mutex<Vec<Weak<Shared>>> {
        static SUBS: OnceLock<Mutex<Vec<Weak<Shared>>>> = OnceLock::new();
        SUBS.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Whether any subscriber is live (one relaxed load).
    #[inline]
    pub(super) fn active() -> bool {
        SUB_COUNT.load(Ordering::Relaxed) != 0
    }

    /// Fans one appended entry out to every live subscriber. Called by
    /// [`super::append_one`] *after* releasing the ring-buffer lock.
    pub(super) fn publish(entry: &Entry) {
        let subs = subscribers().lock().expect("journal subscribers");
        for weak in subs.iter() {
            let Some(shared) = weak.upgrade() else {
                continue;
            };
            let mut st = shared.state.lock().expect("subscriber queue");
            if st.queue.len() == shared.capacity {
                st.queue.pop_front();
                st.dropped += 1;
            }
            st.queue.push_back(entry.clone());
            drop(st);
            shared.cond.notify_all();
        }
    }

    /// A live tail of the journal. Entries recorded while the
    /// subscription exists are queued here (bounded, drop-oldest);
    /// dropping the subscription unregisters it.
    pub struct Subscription {
        shared: Arc<Shared>,
    }

    /// Registers a subscriber with the default queue capacity.
    pub fn subscribe() -> Subscription {
        subscribe_with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// Registers a subscriber whose queue holds at most `capacity`
    /// entries; older queued entries are dropped (and counted) when a
    /// slow reader falls behind.
    pub fn subscribe_with_capacity(capacity: usize) -> Subscription {
        let shared = Arc::new(Shared {
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                dropped: 0,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        });
        let mut subs = subscribers().lock().expect("journal subscribers");
        subs.retain(|w| w.strong_count() > 0);
        subs.push(Arc::downgrade(&shared));
        SUB_COUNT.store(subs.len(), Ordering::Release);
        Subscription { shared }
    }

    impl Subscription {
        /// Takes everything currently queued, oldest first, without
        /// blocking.
        pub fn drain(&self) -> Vec<Entry> {
            let mut st = self.shared.state.lock().expect("subscriber queue");
            st.queue.drain(..).collect()
        }

        /// Waits up to `timeout` for one entry; `None` on timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Option<Entry> {
            let mut st = self.shared.state.lock().expect("subscriber queue");
            if st.queue.is_empty() {
                let (guard, res) = self
                    .shared
                    .cond
                    .wait_timeout_while(st, timeout, |st| st.queue.is_empty())
                    .expect("subscriber queue");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return None;
                }
            }
            st.queue.pop_front()
        }

        /// Entries this subscriber lost to queue overflow.
        pub fn dropped(&self) -> u64 {
            self.shared.state.lock().expect("subscriber queue").dropped
        }

        /// Entries currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("subscriber queue")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl Drop for Subscription {
        fn drop(&mut self) {
            let mut subs = subscribers().lock().expect("journal subscribers");
            let me = Arc::as_ptr(&self.shared);
            subs.retain(|w| w.strong_count() > 0 && !std::ptr::eq(w.as_ptr(), me));
            SUB_COUNT.store(subs.len(), Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Marker { label: "e1".into() },
            Event::ProverStart {
                scheme: "spanning-tree".into(),
            },
            Event::ProverEnd {
                scheme: "spanning-tree".into(),
                ok: true,
                max_bits: 12,
            },
            Event::Verdict {
                vertex: 0,
                accepted: true,
                reason: None,
                bits_read: 24,
            },
            Event::Verdict {
                vertex: 3,
                accepted: false,
                reason: Some("root-mismatch".into()),
                bits_read: 36,
            },
            Event::CertMutated { vertex: 3 },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 3,
                effective: true,
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 3,
                detector: 2,
                reason: "parent-distance-clash".into(),
                distance: Some(1),
            },
            Event::CampaignRound {
                model: "bit-flip".into(),
                run: 0,
                detected: true,
                locality: Some(1),
            },
            Event::OracleDisagreement {
                case: "spanning-tree".into(),
                relation: "sibling:vertex-count".into(),
                vertices: 7,
            },
            Event::ShrinkStep {
                case: "spanning-tree".into(),
                action: "drop-vertex".into(),
                vertices: 6,
            },
            Event::NetSend {
                src: 0,
                dst: 1,
                time: 0,
                bits: 44,
                kind: "data".into(),
            },
            Event::NetDrop {
                src: 1,
                dst: 0,
                time: 2,
                cause: "loss".into(),
            },
            Event::NetRetry {
                node: 0,
                neighbor: 0,
                attempt: 1,
                time: 8,
            },
            Event::NetCrash {
                node: 2,
                time: 4,
                down: true,
            },
            Event::NetVerdict {
                vertex: 0,
                status: "inconclusive".into(),
                reason: None,
                missing: 1,
                time: 96,
            },
            Event::NetVerdict {
                vertex: 1,
                status: "rejected".into(),
                reason: Some("malformed-certificate".into()),
                missing: 0,
                time: 12,
            },
            Event::ServeRequest {
                conn: 2,
                req: 5,
                scheme: "spanning-tree".into(),
                mode: "roundtrip".into(),
                vertices: 9,
                outcome: "accepted".into(),
                cache: "hit".into(),
            },
            Event::ServeRequest {
                conn: 0,
                req: 0,
                scheme: "no-such".into(),
                mode: "prove".into(),
                vertices: 0,
                outcome: "unknown-scheme".into(),
                cache: "bypass".into(),
            },
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(3),
            },
            Event::RoundMark {
                scope: "core.verify".into(),
                round: None,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_event() {
        let snap = JournalSnapshot {
            entries: sample_events()
                .into_iter()
                .enumerate()
                .map(|(i, event)| Entry {
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 7,
        };
        let text = to_jsonl(&snap);
        let back = from_jsonl(&text).expect("parses");
        assert_eq!(back, snap);
        // Determinism: encoding the re-parsed snapshot is byte-identical.
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn recording_respects_enable_and_capacity() {
        let _g = crate::tests::serial();
        disable();
        reset();
        record_with(|| panic!("disabled journal must not build events"));
        set_capacity(4);
        enable();
        for i in 0..10u64 {
            record_with(|| Event::CertMutated { vertex: i });
        }
        disable();
        let snap = snapshot();
        set_capacity(DEFAULT_CAPACITY);
        reset();
        assert_eq!(snap.entries.len(), 4);
        assert_eq!(snap.dropped, 6);
        // Newest entries survive; seq numbers keep counting from 0.
        assert_eq!(snap.entries[0].seq, 6);
        assert_eq!(
            snap.entries.last().map(|e| &e.event),
            Some(&Event::CertMutated { vertex: 9 })
        );
    }

    #[test]
    fn capture_diverts_and_append_flushes_in_order() {
        let _g = crate::tests::serial();
        reset();
        enable();
        record_with(|| Event::Marker { label: "a".into() });
        let ((), captured) = capture(|| {
            record_with(|| Event::CertMutated { vertex: 1 });
            record_with(|| Event::CertMutated { vertex: 2 });
        });
        assert_eq!(captured.len(), 2);
        // Nothing reached the ring yet.
        assert_eq!(snapshot().entries.len(), 1);
        record_with(|| Event::Marker { label: "b".into() });
        append_events(captured);
        disable();
        let snap = snapshot();
        reset();
        let kinds: Vec<u64> = snap
            .entries
            .iter()
            .filter_map(|e| match &e.event {
                Event::CertMutated { vertex } => Some(*vertex),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![1, 2]);
        assert_eq!(snap.entries.len(), 4);
        // Seqs are assigned at flush time, monotone over the whole ring.
        assert!(snap.entries.windows(2).all(|w| w[0].seq < w[1].seq));
        // A panicking capture restores the outer (global) sink.
        enable();
        let _ = std::panic::catch_unwind(|| {
            capture(|| {
                record_with(|| Event::Marker {
                    label: "doomed".into(),
                });
                panic!("boom");
            })
        });
        record_with(|| Event::Marker {
            label: "after".into(),
        });
        disable();
        let snap = snapshot();
        reset();
        assert!(snap
            .entries
            .iter()
            .any(|e| matches!(&e.event, Event::Marker { label } if label == "after")));
        assert!(!snap
            .entries
            .iter()
            .any(|e| matches!(&e.event, Event::Marker { label } if label == "doomed")));
    }

    #[test]
    fn subscribers_tail_the_journal_live() {
        let _g = crate::tests::serial();
        reset();
        enable();
        record_with(|| Event::Marker {
            label: "before".into(),
        });
        let sub = stream::subscribe_with_capacity(3);
        assert!(sub.is_empty(), "nothing recorded since subscribing");
        for i in 0..5u64 {
            record_with(|| Event::CertMutated { vertex: i });
        }
        // Capacity 3, drop-oldest: vertices 2, 3, 4 remain; 0 and 1
        // were evicted from the *subscriber's* queue (the ring kept
        // everything).
        assert_eq!(sub.dropped(), 2);
        let tailed: Vec<u64> = sub
            .drain()
            .iter()
            .filter_map(|e| match &e.event {
                Event::CertMutated { vertex } => Some(*vertex),
                _ => None,
            })
            .collect();
        assert_eq!(tailed, vec![2, 3, 4]);
        // Seq numbers are the ring's, assigned at append time.
        assert_eq!(snapshot().entries.len(), 6);
        // Captured events reach subscribers at flush, in flush order.
        let ((), captured) = capture(|| {
            record_with(|| Event::CertMutated { vertex: 100 });
        });
        assert!(sub.is_empty(), "capture diverts away from subscribers");
        append_events(captured);
        let flushed = sub.drain();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].event, Event::CertMutated { vertex: 100 });
        // recv_timeout returns a queued entry immediately and times out
        // on an empty queue.
        record_with(|| Event::Marker { label: "w".into() });
        assert!(sub
            .recv_timeout(std::time::Duration::from_millis(10))
            .is_some());
        assert!(sub
            .recv_timeout(std::time::Duration::from_millis(10))
            .is_none());
        // Dropping the subscription unregisters it: recording continues
        // without publishing.
        drop(sub);
        record_with(|| Event::Marker {
            label: "after-drop".into(),
        });
        disable();
        reset();
    }

    #[test]
    fn eviction_bumps_dropped_events_counter_exactly() {
        let _g = crate::tests::serial();
        crate::reset();
        reset();
        crate::enable();
        enable();
        set_capacity(4);
        for i in 0..10u64 {
            record_with(|| Event::CertMutated { vertex: i });
        }
        let snap = snapshot();
        assert_eq!(snap.dropped, 6, "ring evicted exactly the overflow");
        assert_eq!(
            crate::snapshot().counters.get(DROPPED_EVENTS_COUNTER),
            Some(&6),
            "registry counter matches the ring's eviction count"
        );
        // Shrinking the capacity evicts (and counts) the excess too.
        set_capacity(1);
        assert_eq!(snapshot().dropped, 9);
        assert_eq!(
            crate::snapshot().counters.get(DROPPED_EVENTS_COUNTER),
            Some(&9)
        );
        disable();
        crate::disable();
        set_capacity(DEFAULT_CAPACITY);
        reset();
        crate::reset();
    }

    #[test]
    fn capacity_accessor_reflects_configuration() {
        let _g = crate::tests::serial();
        assert_eq!(capacity(), DEFAULT_CAPACITY);
        set_capacity(128);
        assert_eq!(capacity(), 128);
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn from_jsonl_rejects_malformed_input() {
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"schema\":\"other/v9\",\"dropped\":0,\"entries\":0}\n").is_err());
        let ok_header = "{\"dropped\":0,\"entries\":1,\"schema\":\"locert-journal/v1\"}\n";
        assert!(from_jsonl(&format!("{ok_header}not json\n")).is_err());
        assert!(from_jsonl(&format!("{ok_header}{{\"type\":\"martian\",\"seq\":0}}\n")).is_err());
        assert!(
            from_jsonl(&format!(
                "{ok_header}{{\"type\":\"marker\",\"label\":\"x\"}}\n"
            ))
            .is_err(),
            "entry without seq must fail"
        );
        let err = from_jsonl(&format!("{ok_header}null\n")).expect_err("fails");
        assert_eq!(err.line, 2);
    }

    /// A light property test (vendored proptest has no trace dep here):
    /// random event streams survive the JSONL round trip.
    #[test]
    fn randomized_streams_roundtrip() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let len = (next() % 20) as usize;
            let entries: Vec<Entry> = (0..len)
                .map(|i| {
                    let event = match next() % 5 {
                        0 => Event::Verdict {
                            vertex: next() % 1000,
                            accepted: next() % 2 == 0,
                            reason: if next() % 2 == 0 {
                                None
                            } else {
                                Some(format!("reason-{}", next() % 8))
                            },
                            bits_read: next() % 4096,
                        },
                        1 => Event::FaultInjected {
                            model: format!("model-{}", next() % 10),
                            site: next() % 1000,
                            effective: next() % 2 == 0,
                        },
                        2 => Event::Detection {
                            model: format!("model-{}", next() % 10),
                            site: next() % 1000,
                            detector: next() % 1000,
                            reason: format!("reason \"{}\" π", next() % 8),
                            distance: if next() % 2 == 0 {
                                None
                            } else {
                                Some(next() % 64)
                            },
                        },
                        3 => Event::ProverEnd {
                            scheme: format!("scheme[{}]", next() % 4),
                            ok: next() % 2 == 0,
                            max_bits: next() % 100_000,
                        },
                        _ => Event::Marker {
                            label: format!("mark\n{}", next() % 100),
                        },
                    };
                    Entry {
                        seq: i as u64,
                        event,
                    }
                })
                .collect();
            let snap = JournalSnapshot {
                entries,
                dropped: next() % 3,
            };
            let text = to_jsonl(&snap);
            assert_eq!(from_jsonl(&text).expect("parses"), snap);
        }
    }
}
