//! Structured export of a [`Snapshot`]: JSON for machines, markdown for
//! humans (the EXPERIMENTS.md telemetry appendix).

use crate::json::Value;
use crate::{HistogramSnapshot, Snapshot, SpanNode};
use std::fmt::Write as _;

fn span_to_json(s: &SpanNode) -> Value {
    Value::obj([
        ("name".to_string(), Value::from(s.name.as_str())),
        ("calls".to_string(), Value::from(s.calls)),
        ("total_ns".to_string(), Value::from(s.total_ns)),
        (
            "children".to_string(),
            Value::Arr(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn histogram_to_json(h: &HistogramSnapshot) -> Value {
    let mut pairs = vec![
        ("count".to_string(), Value::from(h.count)),
        ("sum".to_string(), Value::from(h.sum)),
        (
            "buckets".to_string(),
            Value::Arr(
                h.buckets
                    .iter()
                    .map(|&(le, c)| {
                        Value::obj([
                            // The overflow bucket's bound is u64::MAX,
                            // which f64 cannot hold exactly; export as
                            // null (conventional "+Inf" bucket).
                            (
                                "le".to_string(),
                                if le == u64::MAX {
                                    Value::Null
                                } else {
                                    Value::from(le)
                                },
                            ),
                            ("count".to_string(), Value::from(c)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(min) = h.min {
        pairs.push(("min".to_string(), Value::from(min)));
    }
    if let Some(max) = h.max {
        pairs.push(("max".to_string(), Value::from(max)));
    }
    if let Some(mean) = h.mean() {
        pairs.push(("mean".to_string(), Value::from(mean)));
    }
    Value::obj(pairs)
}

/// Converts a snapshot into a JSON value:
/// `{"counters": {...}, "histograms": {...}, "spans": [...]}`.
pub fn snapshot_to_json(snap: &Snapshot) -> Value {
    Value::obj([
        (
            "counters".to_string(),
            Value::Obj(
                snap.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::from(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Value::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), histogram_to_json(h)))
                    .collect(),
            ),
        ),
        (
            "spans".to_string(),
            Value::Arr(snap.spans.iter().map(span_to_json).collect()),
        ),
    ])
}

/// The snapshot as one JSON document (no trailing newline).
pub fn snapshot_json_string(snap: &Snapshot) -> String {
    snapshot_to_json(snap).to_string()
}

/// Whether `name` names a *timing* quantity — one that legitimately
/// varies between runs, machines, or worker counts, and therefore must
/// not appear in committed baselines or byte-compared artifacts:
///
/// - `par.*` counters describe scheduling (tasks stolen, workers parked),
///   which depends on the thread count and the OS scheduler;
/// - `*.ns` histograms record wall time.
///
/// Everything else in this workspace is a pure function of the seed.
/// (Span trees are always timing: their payload is `total_ns`, and their
/// shape depends on which thread ran which task.)
pub fn is_timing_key(name: &str) -> bool {
    name.starts_with("par.") || name.ends_with(".ns")
}

/// Splits a snapshot into `(deterministic, timing)` halves: counters and
/// histograms partitioned by [`is_timing_key`], and every span assigned
/// to the timing half. The deterministic half is byte-stable for a fixed
/// seed at any worker count — it is what CI compares and what `--baseline`
/// commits; the timing half is diagnostic.
pub fn split_deterministic(snap: &Snapshot) -> (Snapshot, Snapshot) {
    let mut deterministic = Snapshot {
        counters: Default::default(),
        histograms: Default::default(),
        spans: Vec::new(),
    };
    let mut timing = Snapshot {
        counters: Default::default(),
        histograms: Default::default(),
        spans: snap.spans.clone(),
    };
    for (name, &value) in &snap.counters {
        let side = if is_timing_key(name) {
            &mut timing
        } else {
            &mut deterministic
        };
        side.counters.insert(name.clone(), value);
    }
    for (name, hist) in &snap.histograms {
        let side = if is_timing_key(name) {
            &mut timing
        } else {
            &mut deterministic
        };
        side.histograms.insert(name.clone(), hist.clone());
    }
    (deterministic, timing)
}

fn chrome_event(name: &str, ts_us: f64, dur_us: f64, calls: u64) -> Value {
    Value::obj([
        ("name".to_string(), Value::from(name)),
        ("cat".to_string(), Value::from("span")),
        ("ph".to_string(), Value::from("X")),
        ("ts".to_string(), Value::from(ts_us)),
        ("dur".to_string(), Value::from(dur_us)),
        ("pid".to_string(), Value::from(0u64)),
        ("tid".to_string(), Value::from(0u64)),
        (
            "args".to_string(),
            Value::obj([("calls".to_string(), Value::from(calls))]),
        ),
    ])
}

/// Emits `span` as a complete ("X") event starting at `start_us`, lays
/// its children out sequentially from the same instant, and returns the
/// span's end time.
fn emit_chrome_span(events: &mut Vec<Value>, span: &SpanNode, start_us: f64) -> f64 {
    let dur_us = span.total_ns as f64 / 1e3;
    events.push(chrome_event(&span.name, start_us, dur_us, span.calls));
    let mut cursor = start_us;
    for child in &span.children {
        cursor = emit_chrome_span(events, child, cursor);
    }
    start_us + dur_us
}

/// Renders one or more labeled snapshots as a Chrome trace-event
/// document (`chrome://tracing` / Perfetto, "X" complete events).
///
/// The aggregated span forest carries durations but no timestamps, so a
/// timeline is *synthesized*: sections (and sibling spans within a
/// section) are laid out back to back, children start where their
/// parent starts. Each section gets a wrapper event named after its
/// label. The result depends only on the snapshot contents — a
/// seed-deterministic run exports a byte-identical trace.
pub fn chrome_trace_json(sections: &[(&str, &Snapshot)]) -> Value {
    let mut events = Vec::new();
    let mut cursor = 0.0f64;
    for (label, snap) in sections {
        let section_dur: f64 = snap.spans.iter().map(|s| s.total_ns as f64 / 1e3).sum();
        events.push(chrome_event(label, cursor, section_dur, 1));
        for span in &snap.spans {
            cursor = emit_chrome_span(&mut events, span, cursor);
        }
    }
    Value::obj([
        ("traceEvents".to_string(), Value::Arr(events)),
        ("displayTimeUnit".to_string(), Value::from("ms")),
    ])
}

/// [`chrome_trace_json`] as one JSON document (no trailing newline).
pub fn chrome_trace_string(sections: &[(&str, &Snapshot)]) -> String {
    chrome_trace_json(sections).to_string()
}

fn push_span_rows(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "··".repeat(depth);
    let mean_us = span.total_ns as f64 / 1e3 / span.calls.max(1) as f64;
    let _ = writeln!(
        out,
        "| {}{} | {} | {:.2} | {:.1} |",
        indent,
        span.name.replace('|', "\\|"),
        span.calls,
        span.total_ns as f64 / 1e6,
        mean_us
    );
    for child in &span.children {
        push_span_rows(out, child, depth + 1);
    }
}

/// Renders the snapshot as a markdown summary: a span-tree table, a
/// counter table, and a histogram table.
pub fn snapshot_markdown(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "| span | calls | total [ms] | mean [µs/call] |");
        let _ = writeln!(out, "|---|---|---|---|");
        for span in &snap.spans {
            push_span_rows(&mut out, span, 0);
        }
        let _ = writeln!(out);
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "| {} | {} |", name.replace('|', "\\|"), value);
        }
        let _ = writeln!(out);
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "| histogram | count | min | mean | max |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} | {} |",
                name.replace('|', "\\|"),
                h.count,
                h.min.unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.max.unwrap_or(0)
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_roundtrips_through_json() {
        let _g = crate::tests::serial();
        crate::disable();
        crate::reset();
        crate::enable();
        {
            let _s = crate::span!("export.test.outer");
            let _i = crate::span!("export.test.inner");
            crate::add("export.test.counter", 41);
            crate::record("export.test.histogram", 12);
            crate::record("export.test.histogram", 3);
        }
        crate::disable();
        let snap = crate::snapshot();
        crate::reset();

        let text = snapshot_json_string(&snap);
        let parsed = json::parse(&text).expect("export parses back");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("export.test.counter"))
                .and_then(json::Value::as_num),
            Some(41.0)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("export.test.histogram"))
            .expect("histogram exported");
        assert_eq!(hist.get("count").and_then(json::Value::as_num), Some(2.0));
        assert_eq!(hist.get("sum").and_then(json::Value::as_num), Some(15.0));
        let spans = parsed
            .get("spans")
            .and_then(json::Value::as_arr)
            .expect("spans");
        let outer = spans
            .iter()
            .find(|s| s.get("name").and_then(json::Value::as_str) == Some("export.test.outer"))
            .expect("outer span exported");
        let children = outer
            .get("children")
            .and_then(json::Value::as_arr)
            .expect("children");
        assert_eq!(
            children[0].get("name").and_then(json::Value::as_str),
            Some("export.test.inner")
        );
    }

    #[test]
    fn markdown_mentions_every_section() {
        let _g = crate::tests::serial();
        crate::disable();
        crate::reset();
        crate::enable();
        {
            let _s = crate::span!("md.test.span");
            crate::add("md.test.counter", 1);
            crate::record("md.test.histogram", 2);
        }
        crate::disable();
        let snap = crate::snapshot();
        crate::reset();
        let md = snapshot_markdown(&snap);
        assert!(md.contains("md.test.span"));
        assert!(md.contains("md.test.counter"));
        assert!(md.contains("md.test.histogram"));
        assert!(md.contains("| span | calls |"));
    }

    #[test]
    fn chrome_trace_synthesizes_a_nested_timeline() {
        let _g = crate::tests::serial();
        crate::disable();
        crate::reset();
        crate::enable();
        {
            let _s = crate::span!("chrome.test.outer");
            let _i = crate::span!("chrome.test.inner");
        }
        crate::disable();
        let snap = crate::snapshot();
        crate::reset();

        let text = chrome_trace_string(&[("e1", &snap)]);
        let parsed = json::parse(&text).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        // Section wrapper + outer + inner (at least).
        assert!(events.len() >= 3, "got {} events", events.len());
        let by_name = |n: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(json::Value::as_str) == Some(n))
                .unwrap_or_else(|| panic!("event {n} present"))
        };
        let outer = by_name("chrome.test.outer");
        let inner = by_name("chrome.test.inner");
        for e in [outer, inner, by_name("e1")] {
            assert_eq!(e.get("ph").and_then(json::Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(json::Value::as_num).is_some());
            assert!(e.get("dur").and_then(json::Value::as_num).is_some());
        }
        // The child starts where its parent starts and fits inside it.
        let ts = |e: &json::Value| e.get("ts").and_then(json::Value::as_num).expect("ts");
        let dur = |e: &json::Value| e.get("dur").and_then(json::Value::as_num).expect("dur");
        assert_eq!(ts(outer), ts(inner));
        assert!(dur(inner) <= dur(outer));
    }

    #[test]
    fn chrome_trace_lays_sections_back_to_back() {
        let mk = |ns: u64| Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: vec![SpanNode {
                name: "s".into(),
                calls: 1,
                total_ns: ns,
                children: Vec::new(),
            }],
        };
        let (a, b) = (mk(2_000), mk(3_000));
        let parsed = json::parse(&chrome_trace_string(&[("first", &a), ("second", &b)]))
            .expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents");
        let find = |n: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(json::Value::as_str) == Some(n))
                .expect("section event")
                .get("ts")
                .and_then(json::Value::as_num)
                .expect("ts")
        };
        assert_eq!(find("first"), 0.0);
        // Second section starts after the first's 2 µs of spans.
        assert_eq!(find("second"), 2.0);
    }

    #[test]
    fn chrome_trace_escapes_hostile_span_names() {
        // Span names come from `span!` literals today, but the export
        // format must survive anything a future dynamic source puts in
        // a SpanNode: quotes, backslashes, newlines, non-ASCII.
        let hostile = [
            "with \"quotes\"",
            "back\\slash\\path",
            "tab\there",
            "line\nbreak",
            "π-treewidth ≤ 3 → 日本語",
            "control\u{1}char",
        ];
        let snap = Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: hostile
                .iter()
                .map(|&name| SpanNode {
                    name: name.to_string(),
                    calls: 1,
                    total_ns: 1_000,
                    children: Vec::new(),
                })
                .collect(),
        };
        let text = chrome_trace_string(&[("sect \"x\" \\ ümlaut", &snap)]);
        let parsed = json::parse(&text).expect("escaped output parses back");
        let events = parsed
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(json::Value::as_str))
            .collect();
        assert_eq!(names[0], "sect \"x\" \\ ümlaut");
        for name in hostile {
            assert!(
                names.contains(&name),
                "name {name:?} lost in the round trip (got {names:?})"
            );
        }
    }

    #[test]
    fn chrome_trace_event_order_is_stable() {
        // Events must come out in deterministic depth-first order —
        // sections in argument order, siblings in snapshot order,
        // parent before children — and re-exporting must be
        // byte-identical (CI compares these artifacts).
        let child = |n: &str| SpanNode {
            name: n.to_string(),
            calls: 1,
            total_ns: 500,
            children: Vec::new(),
        };
        let snap_a = Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: vec![
                SpanNode {
                    name: "a.outer".into(),
                    calls: 1,
                    total_ns: 2_000,
                    children: vec![child("a.inner1"), child("a.inner2")],
                },
                child("a.second-root"),
            ],
        };
        let snap_b = Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: vec![child("b.only")],
        };
        let sections: &[(&str, &Snapshot)] = &[("first", &snap_a), ("second", &snap_b)];
        let text = chrome_trace_string(sections);
        assert_eq!(
            text,
            chrome_trace_string(sections),
            "re-export must be byte-identical"
        );
        let parsed = json::parse(&text).expect("parses");
        let names: Vec<String> = parsed
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents")
            .iter()
            .filter_map(|e| e.get("name").and_then(json::Value::as_str))
            .map(str::to_string)
            .collect();
        assert_eq!(
            names,
            vec![
                "first",
                "a.outer",
                "a.inner1",
                "a.inner2",
                "a.second-root",
                "second",
                "b.only",
            ],
            "wrapper first, then depth-first spans; sections in argument order"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: Vec::new(),
        };
        assert_eq!(snapshot_markdown(&snap), "");
        let parsed = json::parse(&snapshot_json_string(&snap)).expect("parses");
        assert_eq!(
            parsed
                .get("spans")
                .and_then(json::Value::as_arr)
                .map(<[json::Value]>::len),
            Some(0)
        );
    }
}
