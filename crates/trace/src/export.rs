//! Structured export of a [`Snapshot`]: JSON for machines, markdown for
//! humans (the EXPERIMENTS.md telemetry appendix).

use crate::json::Value;
use crate::{HistogramSnapshot, Snapshot, SpanNode};
use std::fmt::Write as _;

fn span_to_json(s: &SpanNode) -> Value {
    Value::obj([
        ("name".to_string(), Value::from(s.name.as_str())),
        ("calls".to_string(), Value::from(s.calls)),
        ("total_ns".to_string(), Value::from(s.total_ns)),
        (
            "children".to_string(),
            Value::Arr(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn histogram_to_json(h: &HistogramSnapshot) -> Value {
    let mut pairs = vec![
        ("count".to_string(), Value::from(h.count)),
        ("sum".to_string(), Value::from(h.sum)),
        (
            "buckets".to_string(),
            Value::Arr(
                h.buckets
                    .iter()
                    .map(|&(le, c)| {
                        Value::obj([
                            // The overflow bucket's bound is u64::MAX,
                            // which f64 cannot hold exactly; export as
                            // null (conventional "+Inf" bucket).
                            (
                                "le".to_string(),
                                if le == u64::MAX {
                                    Value::Null
                                } else {
                                    Value::from(le)
                                },
                            ),
                            ("count".to_string(), Value::from(c)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(min) = h.min {
        pairs.push(("min".to_string(), Value::from(min)));
    }
    if let Some(max) = h.max {
        pairs.push(("max".to_string(), Value::from(max)));
    }
    if let Some(mean) = h.mean() {
        pairs.push(("mean".to_string(), Value::from(mean)));
    }
    Value::obj(pairs)
}

/// Converts a snapshot into a JSON value:
/// `{"counters": {...}, "histograms": {...}, "spans": [...]}`.
pub fn snapshot_to_json(snap: &Snapshot) -> Value {
    Value::obj([
        (
            "counters".to_string(),
            Value::Obj(
                snap.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::from(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Value::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), histogram_to_json(h)))
                    .collect(),
            ),
        ),
        (
            "spans".to_string(),
            Value::Arr(snap.spans.iter().map(span_to_json).collect()),
        ),
    ])
}

/// The snapshot as one JSON document (no trailing newline).
pub fn snapshot_json_string(snap: &Snapshot) -> String {
    snapshot_to_json(snap).to_string()
}

fn push_span_rows(out: &mut String, span: &SpanNode, depth: usize) {
    let indent = "··".repeat(depth);
    let mean_us = span.total_ns as f64 / 1e3 / span.calls.max(1) as f64;
    let _ = writeln!(
        out,
        "| {}{} | {} | {:.2} | {:.1} |",
        indent,
        span.name.replace('|', "\\|"),
        span.calls,
        span.total_ns as f64 / 1e6,
        mean_us
    );
    for child in &span.children {
        push_span_rows(out, child, depth + 1);
    }
}

/// Renders the snapshot as a markdown summary: a span-tree table, a
/// counter table, and a histogram table.
pub fn snapshot_markdown(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "| span | calls | total [ms] | mean [µs/call] |");
        let _ = writeln!(out, "|---|---|---|---|");
        for span in &snap.spans {
            push_span_rows(&mut out, span, 0);
        }
        let _ = writeln!(out);
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "| {} | {} |", name.replace('|', "\\|"), value);
        }
        let _ = writeln!(out);
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "| histogram | count | min | mean | max |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} | {} |",
                name.replace('|', "\\|"),
                h.count,
                h.min.unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.max.unwrap_or(0)
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_roundtrips_through_json() {
        let _g = crate::tests::serial();
        crate::disable();
        crate::reset();
        crate::enable();
        {
            let _s = crate::span!("export.test.outer");
            let _i = crate::span!("export.test.inner");
            crate::add("export.test.counter", 41);
            crate::record("export.test.histogram", 12);
            crate::record("export.test.histogram", 3);
        }
        crate::disable();
        let snap = crate::snapshot();
        crate::reset();

        let text = snapshot_json_string(&snap);
        let parsed = json::parse(&text).expect("export parses back");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("export.test.counter"))
                .and_then(json::Value::as_num),
            Some(41.0)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("export.test.histogram"))
            .expect("histogram exported");
        assert_eq!(hist.get("count").and_then(json::Value::as_num), Some(2.0));
        assert_eq!(hist.get("sum").and_then(json::Value::as_num), Some(15.0));
        let spans = parsed
            .get("spans")
            .and_then(json::Value::as_arr)
            .expect("spans");
        let outer = spans
            .iter()
            .find(|s| s.get("name").and_then(json::Value::as_str) == Some("export.test.outer"))
            .expect("outer span exported");
        let children = outer
            .get("children")
            .and_then(json::Value::as_arr)
            .expect("children");
        assert_eq!(
            children[0].get("name").and_then(json::Value::as_str),
            Some("export.test.inner")
        );
    }

    #[test]
    fn markdown_mentions_every_section() {
        let _g = crate::tests::serial();
        crate::disable();
        crate::reset();
        crate::enable();
        {
            let _s = crate::span!("md.test.span");
            crate::add("md.test.counter", 1);
            crate::record("md.test.histogram", 2);
        }
        crate::disable();
        let snap = crate::snapshot();
        crate::reset();
        let md = snapshot_markdown(&snap);
        assert!(md.contains("md.test.span"));
        assert!(md.contains("md.test.counter"));
        assert!(md.contains("md.test.histogram"));
        assert!(md.contains("| span | calls |"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot {
            counters: Default::default(),
            histograms: Default::default(),
            spans: Vec::new(),
        };
        assert_eq!(snapshot_markdown(&snap), "");
        let parsed = json::parse(&snapshot_json_string(&snap)).expect("parses");
        assert_eq!(
            parsed
                .get("spans")
                .and_then(json::Value::as_arr)
                .map(<[json::Value]>::len),
            Some(0)
        );
    }
}
