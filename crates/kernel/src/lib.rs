//! The Section 6 kernelization: `k`-reduced graphs of bounded-treedepth
//! graphs.
//!
//! Given a graph `G` with a coherent `t`-model `T` and a parameter `k`,
//! the *k-reduced graph* `H` is obtained by repeatedly pruning, at a
//! vertex of the largest possible depth, one subtree rooted at a child
//! whose *type* is shared by more than `k` siblings (Section 6.1). The
//! paper proves:
//!
//! - the number of possible *end types* at depth `d` is bounded by
//!   `f_d(k, t) = 2^d · (k+1)^{f_{d+1}(k,t)}` (Proposition 6.2), so `|H|`
//!   depends only on `k` and `t`;
//! - `G ≃_k H` (Proposition 6.3) — they satisfy the same FO sentences of
//!   quantifier depth ≤ `k`.
//!
//! This crate computes types (hash-consed in a [`TypeTable`]), performs
//! the deepest-first pruning ([`k_reduce`]), extracts the kernel graph,
//! tracks the per-vertex pruned flags and end types that the
//! Proposition 6.4 certification broadcasts, and evaluates the
//! `log₂ f_d` size bounds ([`log2_type_bound`]).

use locert_graph::{Graph, NodeId};
use locert_treedepth::EliminationTree;
use std::collections::{BTreeMap, HashMap};

/// Interned identifier of a vertex type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

/// The data of a type: the vertex's ancestor vector plus the multiset of
/// its (kept) children's types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeData {
    /// `ancestors[j] = true` iff the vertex is adjacent in `G` to its
    /// ancestor at depth `j` (strict ancestors only, so the length equals
    /// the vertex's depth).
    pub ancestors: Vec<bool>,
    /// Multiset of children types (type → multiplicity).
    pub children: BTreeMap<TypeId, usize>,
}

/// Hash-consing table for types.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    data: Vec<TypeData>,
    index: HashMap<TypeData, TypeId>,
}

impl TypeTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `data`, returning its stable id.
    pub fn intern(&mut self, data: TypeData) -> TypeId {
        if let Some(&id) = self.index.get(&data) {
            return id;
        }
        let id = TypeId(self.data.len() as u32);
        self.data.push(data.clone());
        self.index.insert(data, id);
        id
    }

    /// The data of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned by this table.
    pub fn get(&self, id: TypeId) -> &TypeData {
        &self.data[id.0 as usize]
    }

    /// Number of distinct types interned.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// The result of the deepest-first `k`-reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Interned types.
    pub types: TypeTable,
    /// Whether each vertex survives in the kernel.
    pub kept: Vec<bool>,
    /// Whether each vertex is *pruned* (the root of a removed subtree);
    /// vertices inside a removed subtree are deleted but not pruned.
    pub pruned: Vec<bool>,
    /// The end type of every vertex of `G` (kept or deleted).
    pub end_type: Vec<TypeId>,
    /// The kernel graph `H` (induced on the kept vertices, renumbered).
    pub kernel: Graph,
    /// Maps kernel vertices back to vertices of `G`.
    pub kernel_to_g: Vec<NodeId>,
    /// The restriction of the model to the kernel, as a parent array over
    /// kernel indices.
    pub kernel_parents: Vec<Option<usize>>,
}

impl Reduction {
    /// The kernel's elimination tree (restriction of the input model).
    ///
    /// # Panics
    ///
    /// Panics if the reduction is inconsistent (cannot happen for values
    /// produced by [`k_reduce`]).
    pub fn kernel_model(&self) -> EliminationTree {
        EliminationTree::new(&self.kernel, &self.kernel_parents)
            .expect("restriction of a model is a model")
    }

    /// Number of kernel vertices.
    pub fn kernel_size(&self) -> usize {
        self.kernel.num_nodes()
    }
}

/// Computes the ancestor vector of `v`: adjacency of `v` to its strict
/// ancestors, indexed by ancestor depth `0..depth(v)`.
pub fn ancestor_vector(g: &Graph, model: &EliminationTree, v: NodeId) -> Vec<bool> {
    let mut vec = vec![false; model.depth(v)];
    let mut anc = model.tree().parent(v);
    while let Some(a) = anc {
        vec[model.depth(a)] = g.has_edge(v, a);
        anc = model.tree().parent(a);
    }
    vec
}

/// Performs the deepest-first `k`-reduction of `(g, model)`.
///
/// Children of each vertex are grouped by end type; in every group, the
/// `k` lowest-indexed children are kept and the rest are pruned (with
/// their whole subtrees). Processing is bottom-up (deepest parents
/// first), which realizes the paper's "valid pruning on a vertex of the
/// largest possible depth while possible" and makes every vertex's
/// bottom-up type its *end type*.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn k_reduce(g: &Graph, model: &EliminationTree, k: usize) -> Reduction {
    assert!(k >= 1, "k must be positive");
    let n = g.num_nodes();
    let tree = model.tree();
    let mut types = TypeTable::new();
    let mut end_type = vec![TypeId(u32::MAX); n];
    let mut kept = vec![true; n];
    let mut pruned = vec![false; n];

    // Postorder guarantees children are finalized before parents; pruning
    // at a parent of depth d happens only after all deeper pruning, which
    // is exactly the deepest-first discipline.
    let mut tagged: Vec<(TypeId, NodeId)> = Vec::new();
    for v in tree.postorder() {
        // Group the *kept* children by their end types: a reused,
        // stably-sorted slice instead of a per-vertex map of per-group
        // vectors. The stable sort keeps same-type children in child
        // order, so "the k lowest-indexed are kept" is unchanged, and
        // runs come out in ascending TypeId order exactly like the old
        // BTreeMap iteration.
        tagged.clear();
        tagged.extend(
            tree.children(v)
                .iter()
                .filter(|c| kept[c.0])
                .map(|&c| (end_type[c.0], c)),
        );
        tagged.sort_by_key(|&(ty, _)| ty);
        let mut child_multiset = BTreeMap::new();
        let mut i = 0;
        while i < tagged.len() {
            let ty = tagged[i].0;
            let mut j = i;
            while j < tagged.len() && tagged[j].0 == ty {
                j += 1;
            }
            let members = &tagged[i..j];
            if members.len() > k {
                for &(_, drop) in &members[k..] {
                    pruned[drop.0] = true;
                    for u in tree.subtree(drop) {
                        kept[u.0] = false;
                    }
                }
            }
            child_multiset.insert(ty, members.len().min(k));
            i = j;
        }
        let data = TypeData {
            ancestors: ancestor_vector(g, model, v),
            children: child_multiset,
        };
        end_type[v.0] = types.intern(data);
    }

    // Extract the kernel.
    let kept_nodes: Vec<NodeId> = g.nodes().filter(|v| kept[v.0]).collect();
    let (kernel, kernel_to_g) = g.induced_subgraph(&kept_nodes);
    let mut g_to_kernel = vec![usize::MAX; n];
    for (i, &v) in kernel_to_g.iter().enumerate() {
        g_to_kernel[v.0] = i;
    }
    let kernel_parents: Vec<Option<usize>> = kernel_to_g
        .iter()
        .map(|&v| tree.parent(v).map(|p| g_to_kernel[p.0]))
        .collect();

    Reduction {
        types,
        kept,
        pruned,
        end_type,
        kernel,
        kernel_to_g,
        kernel_parents,
    }
}

/// `log₂ f_d(k, t)` per Proposition 6.2, where `f_t = 2^t` and
/// `f_d = 2^d · (k+1)^{f_{d+1}}`. Saturates to `f64::INFINITY` — the
/// certification only needs the bit-widths `⌈log₂ f_d⌉`, and the bound is
/// astronomically loose anyway.
///
/// # Panics
///
/// Panics if `d > t`.
pub fn log2_type_bound(k: usize, t: usize, d: usize) -> f64 {
    assert!(d <= t, "depth beyond the model height");
    // log2 f_t = t. Going up: log2 f_d = d + f_{d+1} * log2(k+1), which
    // needs f_{d+1} itself; track both f (saturating) and log2 f.
    let mut f: f64 = (2f64).powi(t as i32); // f at current level (may be inf)
    let mut log2f: f64 = t as f64;
    let mut level = t;
    while level > d {
        level -= 1;
        log2f = level as f64 + f * ((k + 1) as f64).log2();
        f = if log2f >= f64::MAX.log2() {
            f64::INFINITY
        } else {
            (2f64).powf(log2f)
        };
    }
    log2f
}

/// An upper bound, in bits, for writing one end type of a depth-`d`
/// vertex (`⌈log₂ f_d⌉`, saturated to `u32::MAX` when the bound
/// overflows — callers at experiment scale always use the *actual* number
/// of interned types instead).
pub fn type_bits_bound(k: usize, t: usize, d: usize) -> u32 {
    let l = log2_type_bound(k, t, d);
    if l.is_finite() && l < u32::MAX as f64 {
        (l.ceil() as u32).max(1)
    } else {
        u32::MAX
    }
}

/// Checks Lemma 6.1 on a reduction: for every deleted child `u` of a kept
/// vertex `v`, exactly `k` kept children of `v` share `u`'s end type.
/// Returns the first violation, if any (for tests).
pub fn check_lemma_6_1(
    model: &EliminationTree,
    red: &Reduction,
    k: usize,
) -> Option<(NodeId, NodeId)> {
    let tree = model.tree();
    for v in tree.postorder() {
        if !red.kept[v.0] {
            continue;
        }
        for &u in tree.children(v) {
            if red.kept[u.0] {
                continue;
            }
            let same = tree
                .children(v)
                .iter()
                .filter(|c| red.kept[c.0] && red.end_type[c.0] == red.end_type[u.0])
                .count();
            if same != k {
                return Some((v, u));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::generators;
    use locert_treedepth::{optimal_elimination_tree, EliminationTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_model(n: usize) -> (Graph, EliminationTree) {
        let g = generators::star(n);
        let mut parent = vec![Some(0); n];
        parent[0] = None;
        let t = EliminationTree::new(&g, &parent).unwrap();
        (g, t)
    }

    #[test]
    fn ancestor_vectors_on_figure1_path() {
        let g = generators::path(7);
        let parent = vec![Some(1), Some(3), Some(1), None, Some(5), Some(3), Some(5)];
        let model = EliminationTree::new(&g, &parent).unwrap();
        // Root has empty vector.
        assert_eq!(ancestor_vector(&g, &model, NodeId(3)), Vec::<bool>::new());
        // Vertex 1 (depth 1): not adjacent to root 3 in P_7... 1-3 is not
        // an edge; but the model only demands comparability for edges.
        assert_eq!(ancestor_vector(&g, &model, NodeId(1)), vec![false]);
        // Vertex 2 (depth 2, parent 1, root 3): edges 2-1 and 2-3 both
        // exist.
        assert_eq!(ancestor_vector(&g, &model, NodeId(2)), vec![true, true]);
        // Vertex 0 (depth 2): edge 0-1 only.
        assert_eq!(ancestor_vector(&g, &model, NodeId(0)), vec![false, true]);
    }

    #[test]
    fn star_reduces_to_k_plus_one_vertices() {
        let (g, model) = star_model(10);
        for k in 1..=4 {
            let red = k_reduce(&g, &model, k);
            // All 9 leaves share one type; k survive.
            assert_eq!(red.kernel_size(), k + 1);
            assert_eq!(red.pruned.iter().filter(|&&p| p).count(), 9 - k);
            assert!(check_lemma_6_1(&model, &red, k).is_none());
        }
    }

    #[test]
    fn small_graph_nothing_pruned() {
        let g = generators::path(5);
        let model = optimal_elimination_tree(&g);
        let red = k_reduce(&g, &model, 3);
        assert_eq!(red.kernel_size(), 5);
        assert!(red.pruned.iter().all(|&p| !p));
        assert_eq!(red.kernel, g);
    }

    #[test]
    fn kernel_model_is_valid_and_no_taller() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let (g, parents) = generators::random_bounded_treedepth(30, 3, 0.5, &mut rng);
            let model = EliminationTree::new(&g, &parents)
                .unwrap()
                .make_coherent(&g);
            let red = k_reduce(&g, &model, 2);
            let km = red.kernel_model();
            assert!(km.height() <= model.height());
            assert!(red.kernel.is_connected());
        }
    }

    #[test]
    fn kernel_size_is_bounded_independent_of_n() {
        // Fixed t = 2 (stars), k = 2: kernels stay at 3 vertices for all n.
        for n in [5usize, 50, 500] {
            let (g, model) = star_model(n);
            let red = k_reduce(&g, &model, 2);
            assert_eq!(red.kernel_size(), 3, "n = {n}");
        }
        // Depth-2 random trees, k = 1: kernel size bounded by the type
        // count bound (loose), here just check plateau behavior.
        let mut rng = StdRng::seed_from_u64(52);
        let mut sizes = Vec::new();
        for n in [20usize, 80, 320] {
            let (g, parent, _) = generators::random_bounded_depth_tree(n, 2, &mut rng);
            let model = EliminationTree::new(&g, &parent).unwrap();
            let red = k_reduce(&g, &model, 1);
            sizes.push(red.kernel_size());
        }
        // With k = 1 and depth ≤ 2 (t = 3 levels), there are at most
        // 2 types at depth 2 and thus ≤ 2^2·(1+1)^2 ≈ bounded kernels.
        assert!(sizes.iter().all(|&s| s <= 40), "sizes {sizes:?}");
    }

    #[test]
    fn end_types_depend_on_ancestor_edges() {
        // Two leaves under the same root, one adjacent to the root's
        // parent... build: path 0-1 plus leaves 2,3 on 1; edge 0-2 only.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3), (0, 2)]).unwrap();
        let parent = vec![None, Some(0), Some(1), Some(1)];
        let model = EliminationTree::new(&g, &parent).unwrap();
        let red = k_reduce(&g, &model, 1);
        // Leaves 2 and 3 have different ancestor vectors, so both survive
        // even with k = 1.
        assert_ne!(red.end_type[2], red.end_type[3]);
        assert_eq!(red.kernel_size(), 4);
    }

    #[test]
    fn ef_equivalence_of_kernel() {
        use locert_logic::ef::duplicator_wins;
        // Proposition 6.3: G ≃_k H. Stars with many leaves, k = 2.
        let (g, model) = star_model(8);
        let red = k_reduce(&g, &model, 2);
        assert_eq!(red.kernel_size(), 3);
        assert!(duplicator_wins(&g, &red.kernel, 2));
        // And a depth-2 tree case with k = 2.
        let mut rng = StdRng::seed_from_u64(53);
        let (g, parent, _) = generators::random_bounded_depth_tree(12, 2, &mut rng);
        let model = EliminationTree::new(&g, &parent).unwrap();
        let red = k_reduce(&g, &model, 2);
        assert!(
            duplicator_wins(&g, &red.kernel, 2),
            "kernel not ≃_2: G = {g:?}, H = {:?}",
            red.kernel
        );
    }

    #[test]
    fn ef_equivalence_random_bounded_treedepth() {
        use locert_logic::ef::duplicator_wins;
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..5 {
            let (g, parents) = generators::random_bounded_treedepth(12, 3, 0.6, &mut rng);
            let model = EliminationTree::new(&g, &parents)
                .unwrap()
                .make_coherent(&g);
            let red = k_reduce(&g, &model, 2);
            assert!(
                duplicator_wins(&g, &red.kernel, 2),
                "G {g:?} vs kernel {:?}",
                red.kernel
            );
        }
    }

    #[test]
    fn lemma_6_1_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(55);
        for k in 1..=3 {
            let (g, parents) = generators::random_bounded_treedepth(60, 4, 0.4, &mut rng);
            let model = EliminationTree::new(&g, &parents)
                .unwrap()
                .make_coherent(&g);
            let red = k_reduce(&g, &model, k);
            assert_eq!(check_lemma_6_1(&model, &red, k), None, "k = {k}");
        }
    }

    #[test]
    fn type_bound_values() {
        // f_t = 2^t at the deepest level.
        assert_eq!(log2_type_bound(3, 4, 4), 4.0);
        assert_eq!(log2_type_bound(1, 2, 2), 2.0);
        // One level up: log2 f_{t-1} = (t-1) + 2^t·log2(k+1).
        let l = log2_type_bound(1, 2, 1);
        assert!((l - (1.0 + 4.0 * 2f64.log2())).abs() < 1e-9);
        // Deep recursion saturates but stays monotone.
        let top = log2_type_bound(2, 5, 0);
        assert!(top.is_infinite() || top > log2_type_bound(2, 5, 3));
    }

    #[test]
    fn type_bound_monotone_in_depth_and_k() {
        // Shallower levels have (weakly) more types; larger k too.
        for t in 2..=4usize {
            for d in 1..=t {
                assert!(
                    log2_type_bound(2, t, d - 1) >= log2_type_bound(2, t, d),
                    "t = {t}, d = {d}"
                );
            }
        }
        assert!(log2_type_bound(3, 3, 1) >= log2_type_bound(1, 3, 1));
    }

    #[test]
    fn type_bits_bound_saturates() {
        assert_eq!(type_bits_bound(1, 2, 2), 2);
        assert!(type_bits_bound(3, 6, 0) == u32::MAX || type_bits_bound(3, 6, 0) > 100);
    }

    #[test]
    fn interning_is_stable() {
        let mut t = TypeTable::new();
        let a = t.intern(TypeData {
            ancestors: vec![true],
            children: BTreeMap::new(),
        });
        let b = t.intern(TypeData {
            ancestors: vec![true],
            children: BTreeMap::new(),
        });
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        let c = t.intern(TypeData {
            ancestors: vec![false],
            children: BTreeMap::new(),
        });
        assert_ne!(a, c);
        assert_eq!(t.get(c).ancestors, vec![false]);
    }

    #[test]
    fn pruned_vs_deleted_distinction() {
        // Deep star-of-stars: root with many identical depth-2 subtrees.
        let mut edges = Vec::new();
        let mut parent = vec![None];
        let mut next = 1;
        for _ in 0..5 {
            let mid = next;
            next += 1;
            edges.push((0, mid));
            parent.push(Some(0));
            for _ in 0..2 {
                edges.push((mid, next));
                parent.push(Some(mid));
                next += 1;
            }
        }
        let g = Graph::from_edges(next, edges).unwrap();
        let model = EliminationTree::new(&g, &parent).unwrap();
        let red = k_reduce(&g, &model, 2);
        // 3 of the 5 identical mid-subtrees go: 3 pruned roots, and their
        // 6 leaf descendants are deleted but not pruned.
        let pruned_count = red.pruned.iter().filter(|&&p| p).count();
        assert_eq!(pruned_count, 3);
        let deleted = red.kept.iter().filter(|&&x| !x).count();
        assert_eq!(deleted, 9);
        assert_eq!(red.kernel_size(), next - 9);
    }
}
