//! A recursive-descent parser for the printed formula syntax.
//!
//! Grammar (precedence low → high: `->`, `|`, `&`, `!`, quantifiers bind
//! their whole tail):
//!
//! ```text
//! formula  := implies
//! implies  := or ( "->" implies )?
//! or       := and ( "|" and )*
//! and      := unary ( "&" unary )*
//! unary    := "!" unary | quant | atom
//! quant    := ("forall" | "exists") var "." formula
//! atom     := "true" | "false" | "(" formula ")"
//!           | var ("=" | "~") var | var "in" Setvar
//! var      := "x" digits      (first-order)
//! Setvar   := "X" digits      (monadic second-order)
//! ```
//!
//! ASCII aliases are accepted for the unicode output of `Formula`'s
//! `Display` (`∀`/`∃`/`¬`/`∧`/`∨`/`→`/`∈`),
//! so `parse(&f.to_string())` round-trips.

use crate::ast::{self, Formula, SetVar, Var};
use std::error::Error;
use std::fmt;

/// Error produced when parsing a formula fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset (into the token stream's source) of the failure.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseFormulaError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Var(u32),
    SetVar(u32),
    Forall,
    Exists,
    Not,
    And,
    Or,
    Implies,
    Eq,
    Adj,
    In,
    Dot,
    LParen,
    RParen,
    True,
    False,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseFormulaError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let err = |pos: usize, msg: &str| ParseFormulaError {
        position: pos,
        message: msg.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push((start, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((start, Tok::RParen));
                i += 1;
            }
            '.' => {
                out.push((start, Tok::Dot));
                i += 1;
            }
            '=' => {
                out.push((start, Tok::Eq));
                i += 1;
            }
            '~' => {
                out.push((start, Tok::Adj));
                i += 1;
            }
            '!' | '¬' => {
                out.push((start, Tok::Not));
                i += 1;
            }
            '&' | '∧' => {
                out.push((start, Tok::And));
                i += 1;
            }
            '|' | '∨' => {
                out.push((start, Tok::Or));
                i += 1;
            }
            '→' => {
                out.push((start, Tok::Implies));
                i += 1;
            }
            '∀' => {
                out.push((start, Tok::Forall));
                i += 1;
            }
            '∃' => {
                out.push((start, Tok::Exists));
                i += 1;
            }
            '∈' => {
                out.push((start, Tok::In));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    out.push((start, Tok::Implies));
                    i += 2;
                } else {
                    return Err(err(start, "expected '->'"));
                }
            }
            'x' | 'X' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(err(start, "variable needs an index, e.g. x0"));
                }
                let idx: u32 = bytes[i + 1..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .map_err(|_| err(start, "variable index out of range"))?;
                out.push((
                    start,
                    if c == 'x' {
                        Tok::Var(idx)
                    } else {
                        Tok::SetVar(idx)
                    },
                ));
                i = j;
            }
            c if c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_alphabetic() {
                    j += 1;
                }
                let word: String = bytes[i..j].iter().collect();
                let tok = match word.as_str() {
                    "forall" => Tok::Forall,
                    "exists" => Tok::Exists,
                    "in" => Tok::In,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    _ => return Err(err(start, &format!("unknown keyword '{word}'"))),
                };
                out.push((start, tok));
                i = j;
            }
            other => return Err(err(start, &format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .or(self.toks.last())
            .map_or(0, |(p, _)| *p)
    }

    fn error(&self, msg: &str) -> ParseFormulaError {
        ParseFormulaError {
            position: self.here(),
            message: msg.to_string(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseFormulaError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let lhs = self.or_expr()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let rhs = self.formula()?;
            Ok(ast::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_expr(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = ast::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = ast::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseFormulaError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(ast::not(self.unary()?))
            }
            Some(Tok::Forall) | Some(Tok::Exists) => {
                let universal = self.peek() == Some(&Tok::Forall);
                self.pos += 1;
                match self.next() {
                    Some(Tok::Var(i)) => {
                        self.expect(Tok::Dot, "expected '.' after quantified variable")?;
                        let body = self.formula()?;
                        Ok(if universal {
                            ast::forall(Var(i), body)
                        } else {
                            ast::exists(Var(i), body)
                        })
                    }
                    Some(Tok::SetVar(i)) => {
                        self.expect(Tok::Dot, "expected '.' after quantified set variable")?;
                        let body = self.formula()?;
                        Ok(if universal {
                            ast::forall_set(SetVar(i), body)
                        } else {
                            ast::exists_set(SetVar(i), body)
                        })
                    }
                    _ => Err(self.error("expected a variable after quantifier")),
                }
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseFormulaError> {
        match self.next() {
            Some(Tok::True) => Ok(Formula::True),
            Some(Tok::False) => Ok(Formula::False),
            Some(Tok::LParen) => {
                let f = self.formula()?;
                self.expect(Tok::RParen, "expected ')'")?;
                Ok(f)
            }
            Some(Tok::Var(i)) => {
                let x = Var(i);
                match self.next() {
                    Some(Tok::Eq) => match self.next() {
                        Some(Tok::Var(j)) => Ok(ast::eq(x, Var(j))),
                        _ => Err(self.error("expected a variable after '='")),
                    },
                    Some(Tok::Adj) => match self.next() {
                        Some(Tok::Var(j)) => Ok(ast::adj(x, Var(j))),
                        _ => Err(self.error("expected a variable after '~'")),
                    },
                    Some(Tok::In) => match self.next() {
                        Some(Tok::SetVar(j)) => Ok(ast::mem(x, SetVar(j))),
                        _ => Err(self.error("expected a set variable after 'in'")),
                    },
                    _ => Err(self.error("expected '=', '~' or 'in' after variable")),
                }
            }
            _ => Err(self.error("expected an atom")),
        }
    }
}

/// Parses a formula from its textual syntax.
///
/// # Errors
///
/// Returns a [`ParseFormulaError`] describing the first offending position.
///
/// # Example
///
/// ```
/// use locert_logic::parser::parse;
/// let f = parse("forall x0. exists x1. x0 ~ x1")?;
/// assert_eq!(f.to_string(), "∀x0. ∃x1. x0 ~ x1");
/// # Ok::<(), locert_logic::parser::ParseFormulaError>(())
/// ```
pub fn parse(src: &str) -> Result<Formula, ParseFormulaError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse("true").unwrap(), Formula::True);
        assert_eq!(parse("x0 = x1").unwrap(), eq(Var(0), Var(1)));
        assert_eq!(parse("x0 ~ x2").unwrap(), adj(Var(0), Var(2)));
        assert_eq!(parse("x0 in X1").unwrap(), mem(Var(0), SetVar(1)));
    }

    #[test]
    fn parses_connectives_with_precedence() {
        let f = parse("x0 = x0 | x1 = x1 & false").unwrap();
        // & binds tighter than |.
        assert_eq!(
            f,
            or(eq(Var(0), Var(0)), and(eq(Var(1), Var(1)), Formula::False))
        );
    }

    #[test]
    fn implies_is_right_associative() {
        let f = parse("true -> false -> true").unwrap();
        assert_eq!(
            f,
            implies(Formula::True, implies(Formula::False, Formula::True))
        );
    }

    #[test]
    fn parses_quantifiers() {
        let f = parse("forall x0. exists x1. x0 ~ x1").unwrap();
        assert_eq!(f, forall(Var(0), exists(Var(1), adj(Var(0), Var(1)))));
        let g = parse("exists X0. forall x0. x0 in X0").unwrap();
        assert_eq!(
            g,
            exists_set(SetVar(0), forall(Var(0), mem(Var(0), SetVar(0))))
        );
    }

    #[test]
    fn roundtrips_display_output() {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let formulas = vec![
            forall_all(
                [x, y],
                or_all([eq(x, y), adj(x, y), exists(z, and(adj(x, z), adj(z, y)))]),
            ),
            exists_set(SetVar(0), forall(x, implies(mem(x, SetVar(0)), eq(x, x)))),
            not(and(Formula::True, or(Formula::False, adj(x, y)))),
        ];
        for f in formulas {
            let printed = f.to_string();
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(reparsed, f, "round-trip failed for {printed}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("x0 =").is_err());
        assert!(parse("forall . true").is_err());
        assert!(parse("x").is_err());
        assert!(parse("(true").is_err());
        assert!(parse("true )").is_err());
        assert!(parse("hello x0").is_err());
        assert!(parse("x0 in x1").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = parse("true @ false").unwrap_err();
        assert_eq!(e.position, 5);
        assert!(e.to_string().contains("unexpected character"));
    }
}
