//! Syntactic measures: quantifier depth, FO detection, fragments.
//!
//! The paper's results are parameterized by quantifier depth (`≃_k`,
//! Lemma 2.1's depth-2 fragment) and by the shape of the quantifier prefix
//! (existential FO). These checks are purely syntactic.

use crate::ast::Formula;

/// Quantifier depth (maximum number of nested quantifiers of either kind).
///
/// # Example
///
/// ```
/// use locert_logic::ast::*;
/// use locert_logic::depth::quantifier_depth;
///
/// let (x, y) = (Var(0), Var(1));
/// let f = forall(x, exists(y, adj(x, y)));
/// assert_eq!(quantifier_depth(&f), 2);
/// ```
pub fn quantifier_depth(f: &Formula) -> usize {
    use Formula::*;
    match f {
        True | False | Eq(..) | Adj(..) | In(..) => 0,
        Not(g) => quantifier_depth(g),
        And(a, b) | Or(a, b) | Implies(a, b) => quantifier_depth(a).max(quantifier_depth(b)),
        Forall(_, g) | Exists(_, g) | ForallSet(_, g) | ExistsSet(_, g) => 1 + quantifier_depth(g),
    }
}

/// Whether the formula is first-order (no set quantifier, no membership).
pub fn is_fo(f: &Formula) -> bool {
    use Formula::*;
    match f {
        True | False | Eq(..) | Adj(..) => true,
        In(..) | ForallSet(..) | ExistsSet(..) => false,
        Not(g) => is_fo(g),
        And(a, b) | Or(a, b) | Implies(a, b) => is_fo(a) && is_fo(b),
        Forall(_, g) | Exists(_, g) => is_fo(g),
    }
}

/// Whether the formula is an *existential FO* formula in prenex form:
/// a (possibly empty) block of `∃` vertex quantifiers followed by a
/// quantifier-free FO matrix.
///
/// This is the fragment of Lemma 2.1 / Lemma A.2, certifiable with
/// `O(k log n)` bits.
pub fn is_existential_prenex(f: &Formula) -> bool {
    let mut cur = f;
    while let Formula::Exists(_, g) = cur {
        cur = g;
    }
    is_fo(cur) && quantifier_depth(cur) == 0
}

/// The existential prefix and matrix of an existential-prenex formula, or
/// `None` if [`is_existential_prenex`] fails.
pub fn existential_prefix(f: &Formula) -> Option<(Vec<crate::ast::Var>, &Formula)> {
    let mut prefix = Vec::new();
    let mut cur = f;
    while let Formula::Exists(v, g) = cur {
        prefix.push(*v);
        cur = g;
    }
    if is_fo(cur) && quantifier_depth(cur) == 0 {
        Some((prefix, cur))
    } else {
        None
    }
}

/// Number of quantifier nodes (of either kind) in the formula.
pub fn quantifier_count(f: &Formula) -> usize {
    use Formula::*;
    match f {
        True | False | Eq(..) | Adj(..) | In(..) => 0,
        Not(g) => quantifier_count(g),
        And(a, b) | Or(a, b) | Implies(a, b) => quantifier_count(a) + quantifier_count(b),
        Forall(_, g) | Exists(_, g) | ForallSet(_, g) | ExistsSet(_, g) => 1 + quantifier_count(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn depth_of_atoms_is_zero() {
        assert_eq!(quantifier_depth(&adj(Var(0), Var(1))), 0);
        assert_eq!(quantifier_depth(&Formula::True), 0);
    }

    #[test]
    fn depth_takes_max_over_branches() {
        let (x, y) = (Var(0), Var(1));
        let f = and(exists(x, eq(x, x)), forall(x, exists(y, adj(x, y))));
        assert_eq!(quantifier_depth(&f), 2);
    }

    #[test]
    fn depth_counts_set_quantifiers() {
        let x = Var(0);
        let s = SetVar(0);
        let f = exists_set(s, forall(x, mem(x, s)));
        assert_eq!(quantifier_depth(&f), 2);
    }

    #[test]
    fn is_fo_detects_membership() {
        let x = Var(0);
        let s = SetVar(0);
        assert!(is_fo(&forall(x, eq(x, x))));
        assert!(!is_fo(&mem(x, s)));
        assert!(!is_fo(&exists_set(s, Formula::True)));
    }

    #[test]
    fn existential_prenex_accepted() {
        let (x, y) = (Var(0), Var(1));
        let f = exists_all([x, y], and(adj(x, y), not(eq(x, y))));
        assert!(is_existential_prenex(&f));
        let (prefix, matrix) = existential_prefix(&f).unwrap();
        assert_eq!(prefix, vec![x, y]);
        assert_eq!(quantifier_depth(matrix), 0);
    }

    #[test]
    fn existential_prenex_rejects_universal() {
        let (x, y) = (Var(0), Var(1));
        assert!(!is_existential_prenex(&exists(x, forall(y, adj(x, y)))));
        assert!(!is_existential_prenex(&forall(x, eq(x, x))));
    }

    #[test]
    fn quantifier_free_is_existential_prenex() {
        assert!(is_existential_prenex(&Formula::True));
    }

    #[test]
    fn quantifier_count_sums() {
        let (x, y) = (Var(0), Var(1));
        let f = and(exists(x, eq(x, x)), forall(y, eq(y, y)));
        assert_eq!(quantifier_count(&f), 2);
        assert_eq!(quantifier_depth(&f), 1);
    }
}
