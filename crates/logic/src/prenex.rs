//! Prenex normal form for FO formulas.
//!
//! Lemma 2.1 speaks of sentences "whose prenex normal form has only
//! existential quantifiers"; this module computes that normal form:
//! [`rename_apart`] makes every quantifier bind a fresh variable, and
//! [`to_prenex`] pulls all quantifiers to the front with the standard
//! rewrite rules (negation flips quantifiers, implication's antecedent
//! flips too). The result is semantically equivalent and has the same
//! quantifier count (depth may grow up to the count, as usual).

use crate::ast::{self, Formula, Var};

/// A quantifier kind in a prenex prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Universal.
    Forall,
    /// Existential.
    Exists,
}

/// Renames bound variables so that every quantifier binds a distinct,
/// fresh variable (also distinct from all free variables).
///
/// Only first-order structure is transformed; set quantifiers are renamed
/// apart too (their variables live in a separate namespace and are left
/// otherwise untouched).
pub fn rename_apart(f: &Formula) -> Formula {
    // Find the largest variable index in use.
    fn max_var(f: &Formula) -> u32 {
        use Formula::*;
        match f {
            True | False => 0,
            Eq(x, y) | Adj(x, y) => x.0.max(y.0),
            In(x, _) => x.0,
            Not(g) => max_var(g),
            And(a, b) | Or(a, b) | Implies(a, b) => max_var(a).max(max_var(b)),
            Forall(v, g) | Exists(v, g) => v.0.max(max_var(g)),
            ForallSet(_, g) | ExistsSet(_, g) => max_var(g),
        }
    }
    fn walk(f: &Formula, env: &mut Vec<(Var, Var)>, next: &mut u32) -> Formula {
        use Formula::*;
        let lookup = |v: Var, env: &[(Var, Var)]| {
            env.iter()
                .rev()
                .find(|(from, _)| *from == v)
                .map_or(v, |(_, to)| *to)
        };
        match f {
            True => True,
            False => False,
            Eq(x, y) => Eq(lookup(*x, env), lookup(*y, env)),
            Adj(x, y) => Adj(lookup(*x, env), lookup(*y, env)),
            In(x, s) => In(lookup(*x, env), *s),
            Not(g) => ast::not(walk(g, env, next)),
            And(a, b) => ast::and(walk(a, env, next), walk(b, env, next)),
            Or(a, b) => ast::or(walk(a, env, next), walk(b, env, next)),
            Implies(a, b) => ast::implies(walk(a, env, next), walk(b, env, next)),
            Forall(v, g) => {
                let fresh = Var(*next);
                *next += 1;
                env.push((*v, fresh));
                let body = walk(g, env, next);
                env.pop();
                ast::forall(fresh, body)
            }
            Exists(v, g) => {
                let fresh = Var(*next);
                *next += 1;
                env.push((*v, fresh));
                let body = walk(g, env, next);
                env.pop();
                ast::exists(fresh, body)
            }
            ForallSet(s, g) => ast::forall_set(*s, walk(g, env, next)),
            ExistsSet(s, g) => ast::exists_set(*s, walk(g, env, next)),
        }
    }
    let mut next = max_var(f) + 1;
    walk(f, &mut Vec::new(), &mut next)
}

/// Converts an FO formula to prenex normal form: a quantifier prefix over
/// a quantifier-free matrix. Returns `None` if the formula is not FO
/// (set quantifiers or membership atoms present).
pub fn to_prenex(f: &Formula) -> Option<(Vec<(Quantifier, Var)>, Formula)> {
    if !crate::depth::is_fo(f) {
        return None;
    }
    let renamed = rename_apart(f);
    Some(pull(&renamed, false))
}

/// Pulls quantifiers outward; `negated` tracks parity (flipping
/// quantifier kinds under an odd number of negations).
fn pull(f: &Formula, negated: bool) -> (Vec<(Quantifier, Var)>, Formula) {
    use Formula::*;
    match f {
        True | False | Eq(..) | Adj(..) | In(..) => (
            Vec::new(),
            if negated {
                ast::not(f.clone())
            } else {
                f.clone()
            },
        ),
        Not(g) => pull(g, !negated),
        And(a, b) | Or(a, b) => {
            let is_and = matches!(f, And(..)) != negated; // De Morgan.
            let (mut pa, ma) = pull(a, negated);
            let (pb, mb) = pull(b, negated);
            pa.extend(pb);
            let matrix = if is_and {
                ast::and(ma, mb)
            } else {
                ast::or(ma, mb)
            };
            (pa, matrix)
        }
        Implies(a, b) => {
            // a → b ≡ ¬a ∨ b; under negation: a ∧ ¬b.
            let (mut pa, ma) = pull(a, !negated);
            let (pb, mb) = pull(b, negated);
            pa.extend(pb);
            let matrix = if negated {
                ast::and(ma, mb)
            } else {
                ast::or(ma, mb)
            };
            (pa, matrix)
        }
        Forall(v, g) | Exists(v, g) => {
            let is_forall = matches!(f, Forall(..)) != negated;
            let (mut prefix, matrix) = pull(g, negated);
            prefix.insert(
                0,
                (
                    if is_forall {
                        Quantifier::Forall
                    } else {
                        Quantifier::Exists
                    },
                    *v,
                ),
            );
            (prefix, matrix)
        }
        ForallSet(..) | ExistsSet(..) => {
            unreachable!("to_prenex rejects non-FO formulas before pulling")
        }
    }
}

/// Rebuilds the formula from a prefix and matrix.
pub fn from_prenex(prefix: &[(Quantifier, Var)], matrix: Formula) -> Formula {
    prefix.iter().rev().fold(matrix, |acc, &(q, v)| match q {
        Quantifier::Forall => ast::forall(v, acc),
        Quantifier::Exists => ast::exists(v, acc),
    })
}

/// Whether the prenex normal form of `f` is purely existential (the
/// Lemma 2.1 fragment). Returns the prenexed formula when it is.
pub fn existential_normal_form(f: &Formula) -> Option<Formula> {
    let (prefix, matrix) = to_prenex(f)?;
    if prefix.iter().all(|&(q, _)| q == Quantifier::Exists) {
        Some(from_prenex(&prefix, matrix))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::depth::{is_existential_prenex, quantifier_count};
    use crate::eval::models;
    use locert_graph::generators;

    fn equivalent_on_zoo(a: &Formula, b: &Formula) {
        for g in [
            generators::path(4),
            generators::cycle(4),
            generators::star(4),
            generators::clique(3),
        ] {
            assert_eq!(models(&g, a), models(&g, b), "{a}  vs  {b} on {g:?}");
        }
    }

    #[test]
    fn rename_apart_removes_shadowing() {
        let x = Var(0);
        let f = exists(x, and(eq(x, x), exists(x, eq(x, x))));
        let r = rename_apart(&f);
        // Two distinct bound variables now.
        let printed = r.to_string();
        assert!(
            printed.contains("x1") && printed.contains("x2"),
            "{printed}"
        );
        equivalent_on_zoo(&f, &r);
    }

    #[test]
    fn prenex_preserves_semantics() {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let formulas = vec![
            not(exists(x, forall(y, adj(x, y)))),
            implies(exists(x, adj(x, x)), forall(y, eq(y, y))),
            and(forall(x, exists(y, adj(x, y))), not(forall(z, eq(z, z)))),
            or(not(forall(x, eq(x, x))), exists(y, not(adj(y, y)))),
        ];
        for f in &formulas {
            let (prefix, matrix) = to_prenex(f).expect("FO");
            assert_eq!(crate::depth::quantifier_depth(&matrix), 0);
            let rebuilt = from_prenex(&prefix, matrix);
            equivalent_on_zoo(f, &rebuilt);
            assert_eq!(quantifier_count(&rebuilt), quantifier_count(f));
        }
    }

    #[test]
    fn negation_flips_quantifiers() {
        let x = Var(0);
        let f = not(forall(x, adj(x, x)));
        let (prefix, _) = to_prenex(&f).unwrap();
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].0, Quantifier::Exists);
    }

    #[test]
    fn existential_normal_form_detects_the_fragment() {
        let (x, y) = (Var(0), Var(1));
        // ¬∀x.¬∃y. x~y is existential in prenex form.
        let f = not(forall(x, not(exists(y, adj(x, y)))));
        let e = existential_normal_form(&f).expect("existential");
        assert!(is_existential_prenex(&e));
        equivalent_on_zoo(&f, &e);
        // A genuine ∀ stays.
        let g = forall(x, exists(y, adj(x, y)));
        assert!(existential_normal_form(&g).is_none());
    }

    #[test]
    fn rejects_mso() {
        let x = Var(0);
        let s = SetVar(0);
        assert!(to_prenex(&exists_set(s, forall(x, mem(x, s)))).is_none());
    }

    #[test]
    fn implication_antecedent_flips() {
        let (x, y) = (Var(0), Var(1));
        // (∀x φ) → ψ pulls out as ∃x (φ → ψ)-shaped.
        let f = implies(forall(x, adj(x, x)), exists(y, eq(y, y)));
        let (prefix, _) = to_prenex(&f).unwrap();
        assert_eq!(prefix[0].0, Quantifier::Exists);
        assert_eq!(prefix[1].0, Quantifier::Exists);
        let rebuilt = from_prenex(&prefix, to_prenex(&f).unwrap().1);
        equivalent_on_zoo(&f, &rebuilt);
    }
}
