//! A library of named FO/MSO graph properties.
//!
//! Every sentence that appears in the paper's narrative — diameter ≤ 2
//! (Section 2.2), triangle-freeness, the depth-2 fragment's dominating
//! vertex / clique / single-vertex properties (Lemma A.3), `P_t`-freeness
//! (Corollary 2.7) — plus standard MSO properties (bipartiteness,
//! 3-colorability, connectivity) used as workloads for the MSO
//! certification experiments.

use crate::ast::{self, Formula, SetVar, Var};

fn vars(k: usize) -> Vec<Var> {
    (0..k as u32).map(Var).collect()
}

/// "The graph has diameter at most 2" — the sentence of Section 2.2:
/// `∀x∀y (x = y ∨ x ~ y ∨ ∃z (x ~ z ∧ z ~ y))`.
pub fn diameter_at_most_2() -> Formula {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    ast::forall_all(
        [x, y],
        ast::or_all([
            ast::eq(x, y),
            ast::adj(x, y),
            ast::exists(z, ast::and(ast::adj(x, z), ast::adj(z, y))),
        ]),
    )
}

/// "The graph is triangle-free" — `∀x∀y∀z ¬(x~y ∧ y~z ∧ x~z)`.
pub fn triangle_free() -> Formula {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    ast::forall_all(
        [x, y, z],
        ast::not(ast::and_all([
            ast::adj(x, y),
            ast::adj(y, z),
            ast::adj(x, z),
        ])),
    )
}

/// "Some vertex is adjacent to every other vertex" (Lemma A.3, property 3).
pub fn has_dominating_vertex() -> Formula {
    let (x, y) = (Var(0), Var(1));
    ast::exists(x, ast::forall(y, ast::or(ast::eq(x, y), ast::adj(x, y))))
}

/// "The graph is a clique" (Lemma A.3, property 2).
pub fn is_clique() -> Formula {
    let (x, y) = (Var(0), Var(1));
    ast::forall_all([x, y], ast::or(ast::eq(x, y), ast::adj(x, y)))
}

/// "The graph has at most one vertex" (Lemma A.3, property 1).
pub fn at_most_one_vertex() -> Formula {
    let (x, y) = (Var(0), Var(1));
    ast::forall_all([x, y], ast::eq(x, y))
}

/// "The graph contains a clique on `k` vertices" (existential FO,
/// Lemma A.2 workload).
pub fn has_clique(k: usize) -> Formula {
    let vs = vars(k);
    let mut clauses = vec![ast::pairwise_distinct(&vs)];
    for i in 0..k {
        for j in (i + 1)..k {
            clauses.push(ast::adj(vs[i], vs[j]));
        }
    }
    ast::exists_all(vs, ast::and_all(clauses))
}

/// "The graph contains an independent set of size `k`" (existential FO).
pub fn has_independent_set(k: usize) -> Formula {
    let vs = vars(k);
    let mut clauses = vec![ast::pairwise_distinct(&vs)];
    for i in 0..k {
        for j in (i + 1)..k {
            clauses.push(ast::not(ast::adj(vs[i], vs[j])));
        }
    }
    ast::exists_all(vs, ast::and_all(clauses))
}

/// "The graph contains a path on `t` vertices (as a subgraph)".
///
/// For paths, subgraph containment coincides with minor containment, so
/// the negation is exactly `P_t`-minor-freeness (Corollary 2.7).
pub fn has_path(t: usize) -> Formula {
    let vs = vars(t);
    let mut clauses = vec![ast::pairwise_distinct(&vs)];
    for w in vs.windows(2) {
        clauses.push(ast::adj(w[0], w[1]));
    }
    ast::exists_all(vs, ast::and_all(clauses))
}

/// "The graph is `P_t`-minor-free": no path on `t` vertices.
pub fn path_minor_free(t: usize) -> Formula {
    ast::not(has_path(t))
}

/// "The graph contains a cycle of length exactly `l`" (`l ≥ 3`).
///
/// # Panics
///
/// Panics if `l < 3`.
pub fn has_cycle_of_length(l: usize) -> Formula {
    assert!(l >= 3, "cycles have length at least 3");
    let vs = vars(l);
    let mut clauses = vec![ast::pairwise_distinct(&vs)];
    for w in vs.windows(2) {
        clauses.push(ast::adj(w[0], w[1]));
    }
    clauses.push(ast::adj(vs[l - 1], vs[0]));
    ast::exists_all(vs, ast::and_all(clauses))
}

/// "The graph is `C_t`-minor-free, given that it is `P_{max_len}`-free":
/// no path on `max_len` vertices **and** no cycle of length in
/// `[t, max_len]`. On graphs without `P_{max_len}`, every cycle has
/// length ≤ `max_len`, so this conjunction is exactly `C_t`-minor-freeness
/// (used per block by Corollary 2.7 with `max_len = t²`).
///
/// # Panics
///
/// Panics if `t < 3` or `max_len < t`.
pub fn ct_minor_free_bounded(t: usize, max_len: usize) -> Formula {
    assert!(t >= 3 && max_len >= t, "need 3 <= t <= max_len");
    let cycles = ast::or_all((t..=max_len).map(has_cycle_of_length));
    ast::and(path_minor_free(max_len + 1), ast::not(cycles))
}

/// "Every vertex has degree at least 1" (no isolated vertex).
pub fn min_degree_1() -> Formula {
    let (x, y) = (Var(0), Var(1));
    ast::forall(x, ast::exists(y, ast::adj(x, y)))
}

/// "Maximum degree at most `d`": no vertex with `d + 1` distinct neighbors.
pub fn max_degree_at_most(d: usize) -> Formula {
    let x = Var(0);
    let nbrs: Vec<Var> = (1..=(d + 1) as u32).map(Var).collect();
    let mut clauses = vec![ast::pairwise_distinct(&nbrs)];
    for &y in &nbrs {
        clauses.push(ast::adj(x, y));
    }
    ast::not(ast::exists(
        x,
        ast::exists_all(nbrs.clone(), ast::and_all(clauses)),
    ))
}

/// MSO: "the graph is bipartite (2-colorable)".
pub fn bipartite() -> Formula {
    let (u, v) = (Var(0), Var(1));
    let s = SetVar(0);
    ast::exists_set(
        s,
        ast::forall_all(
            [u, v],
            ast::implies(
                ast::adj(u, v),
                ast::not(ast::iff(ast::mem(u, s), ast::mem(v, s))),
            ),
        ),
    )
}

/// MSO: "the graph is 3-colorable".
pub fn three_colorable() -> Formula {
    let (u, v) = (Var(0), Var(1));
    let (a, b) = (SetVar(0), SetVar(1));
    // Colors: A, B \ A, rest. An edge must not have both endpoints of the
    // same color.
    let same_color = |x: Var, y: Var| {
        ast::or_all([
            ast::and(ast::mem(x, a), ast::mem(y, a)),
            ast::and_all([
                ast::not(ast::mem(x, a)),
                ast::mem(x, b),
                ast::not(ast::mem(y, a)),
                ast::mem(y, b),
            ]),
            ast::and_all([
                ast::not(ast::mem(x, a)),
                ast::not(ast::mem(x, b)),
                ast::not(ast::mem(y, a)),
                ast::not(ast::mem(y, b)),
            ]),
        ])
    };
    ast::exists_set(
        a,
        ast::exists_set(
            b,
            ast::forall_all(
                [u, v],
                ast::implies(ast::adj(u, v), ast::not(same_color(u, v))),
            ),
        ),
    )
}

/// MSO: "the graph is connected" — every proper non-empty vertex set has an
/// outgoing edge.
pub fn connected() -> Formula {
    let (u, v, w) = (Var(0), Var(1), Var(2));
    let s = SetVar(0);
    ast::forall_set(
        s,
        ast::implies(
            ast::and(
                ast::exists(u, ast::mem(u, s)),
                ast::exists(v, ast::not(ast::mem(v, s))),
            ),
            ast::exists_all(
                [u, w],
                ast::and_all([ast::mem(u, s), ast::not(ast::mem(w, s)), ast::adj(u, w)]),
            ),
        ),
    )
}

/// MSO: "the graph has a dominating set of size… no — an *independent
/// dominating set*": a set that is independent and dominates every vertex.
/// (A maximal-independent-set witness; a classic LCL-flavored property.)
pub fn has_independent_dominating_set() -> Formula {
    let (u, v) = (Var(0), Var(1));
    let s = SetVar(0);
    let independent = ast::forall_all(
        [u, v],
        ast::implies(
            ast::and(ast::mem(u, s), ast::mem(v, s)),
            ast::not(ast::adj(u, v)),
        ),
    );
    let dominating = ast::forall(
        u,
        ast::or(
            ast::mem(u, s),
            ast::exists(v, ast::and(ast::mem(v, s), ast::adj(u, v))),
        ),
    );
    ast::exists_set(s, ast::and(independent, dominating))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::{is_existential_prenex, is_fo, quantifier_depth};
    use crate::eval::models;
    use locert_graph::{generators, Graph};

    #[test]
    fn diameter_2_matches_bfs() {
        use locert_graph::traversal::diameter;
        let graphs = [
            generators::path(3),
            generators::path(4),
            generators::cycle(4),
            generators::cycle(6),
            generators::star(7),
            generators::clique(5),
        ];
        let phi = diameter_at_most_2();
        assert_eq!(quantifier_depth(&phi), 3);
        for g in &graphs {
            assert_eq!(
                models(g, &phi),
                diameter(g).unwrap() <= 2,
                "disagreement on {g:?}"
            );
        }
    }

    #[test]
    fn triangle_free_matches() {
        assert!(models(&generators::cycle(5), &triangle_free()));
        assert!(!models(&generators::clique(3), &triangle_free()));
        assert!(!models(&generators::clique(5), &triangle_free()));
        assert!(models(&generators::path(10), &triangle_free()));
    }

    #[test]
    fn depth2_fragment_properties() {
        assert!(models(&generators::clique(4), &is_clique()));
        assert!(!models(&generators::path(3), &is_clique()));
        assert!(models(&generators::star(5), &has_dominating_vertex()));
        assert!(!models(&generators::path(5), &has_dominating_vertex()));
        assert!(models(&Graph::empty(1), &at_most_one_vertex()));
        assert!(!models(&generators::path(2), &at_most_one_vertex()));
        for f in [is_clique(), has_dominating_vertex(), at_most_one_vertex()] {
            assert!(quantifier_depth(&f) <= 2);
            assert!(is_fo(&f));
        }
    }

    #[test]
    fn clique_and_independent_set_existential() {
        assert!(is_existential_prenex(&has_clique(3)));
        assert!(is_existential_prenex(&has_independent_set(3)));
        assert!(models(&generators::clique(4), &has_clique(3)));
        assert!(!models(&generators::cycle(4), &has_clique(3)));
        assert!(models(&generators::cycle(6), &has_independent_set(3)));
        assert!(!models(&generators::clique(4), &has_independent_set(2)));
    }

    #[test]
    fn path_property_matches_minors_module() {
        use locert_graph::minors;
        let graphs = [
            generators::path(5),
            generators::star(5),
            generators::cycle(5),
            generators::spider(3, 2),
        ];
        for g in &graphs {
            for t in 2..=5 {
                assert_eq!(
                    models(g, &has_path(t)),
                    minors::has_path_minor(g, t),
                    "graph {g:?}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn degree_bounds() {
        assert!(models(&generators::path(5), &max_degree_at_most(2)));
        assert!(!models(&generators::star(5), &max_degree_at_most(2)));
        assert!(models(&generators::star(5), &max_degree_at_most(4)));
        assert!(models(&generators::path(2), &min_degree_1()));
        let isolated = Graph::empty(2);
        assert!(!models(&isolated, &min_degree_1()));
    }

    #[test]
    fn bipartite_matches_cycles() {
        for n in 3..9 {
            assert_eq!(models(&generators::cycle(n), &bipartite()), n % 2 == 0);
        }
    }

    #[test]
    fn three_colorable_examples() {
        assert!(models(&generators::cycle(5), &three_colorable()));
        assert!(models(&generators::clique(3), &three_colorable()));
        assert!(!models(&generators::clique(4), &three_colorable()));
        assert!(models(&generators::path(6), &three_colorable()));
    }

    #[test]
    fn connected_matches() {
        assert!(models(&generators::path(6), &connected()));
        let two = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!models(&two, &connected()));
    }

    #[test]
    fn cycle_length_formula_matches_search() {
        use locert_graph::minors;
        let graphs = [
            generators::cycle(4),
            generators::cycle(6),
            generators::clique(4),
            generators::path(5),
        ];
        for g in &graphs {
            for l in 3..=6 {
                let expected = minors::has_cycle_at_least(g, l, l);
                assert_eq!(
                    models(g, &has_cycle_of_length(l)),
                    expected,
                    "graph {g:?}, l = {l}"
                );
            }
        }
    }

    #[test]
    fn ct_minor_free_bounded_matches_exact() {
        use locert_graph::minors;
        let graphs = [
            generators::cycle(3),
            generators::cycle(5),
            generators::path(6),
            generators::star(5),
        ];
        for g in &graphs {
            // With max_len = 6 every graph here is P_7-free, so the
            // conjunction is exactly C_t-freeness.
            for t in 3..=5 {
                assert_eq!(
                    models(g, &ct_minor_free_bounded(t, 6)),
                    !minors::has_cycle_minor(g, t),
                    "graph {g:?}, t = {t}"
                );
            }
        }
        // A long path violates only the path conjunct.
        let long = generators::path(8);
        assert!(!models(&long, &ct_minor_free_bounded(3, 6)));
    }

    #[test]
    fn independent_dominating_set_exists_in_small_graphs() {
        // Every graph has a maximal independent set, so this holds
        // universally; the point is exercising nested MSO + FO structure.
        for g in [
            generators::path(5),
            generators::cycle(6),
            generators::clique(4),
        ] {
            assert!(models(&g, &has_independent_dominating_set()));
        }
    }
}
