//! Brute-force model checking.
//!
//! [`models`] decides `G ⊨ φ` by exhaustive quantifier expansion: vertex
//! quantifiers iterate over all vertices, set quantifiers over all `2^n`
//! subsets. This is exponential by design — it is the *ground truth* used
//! to validate the certification schemes and automata, and the checker that
//! Theorem 2.6's verifier runs on the constant-size kernel, where the
//! exponential cost is a function of `t` and `φ` only, not of `n`.

use crate::ast::{Formula, SetVar, Var};
use locert_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Maximum vertex count for evaluating formulas with set quantifiers.
pub const MSO_LIMIT: usize = 24;

/// A variable assignment carried through evaluation.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    vars: HashMap<Var, NodeId>,
    sets: HashMap<SetVar, u64>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a first-order variable.
    pub fn bind(&mut self, v: Var, x: NodeId) -> Option<NodeId> {
        self.vars.insert(v, x)
    }

    /// Looks up a first-order variable.
    pub fn get(&self, v: Var) -> Option<NodeId> {
        self.vars.get(&v).copied()
    }
}

/// Decides `g ⊨ φ` for a sentence `φ`.
///
/// # Panics
///
/// Panics if `φ` is not a sentence, if a set quantifier is evaluated on a
/// graph with more than [`MSO_LIMIT`] vertices, or (when debug assertions
/// are on) if an unbound variable is encountered — impossible for
/// sentences.
pub fn models(g: &Graph, phi: &Formula) -> bool {
    assert!(phi.is_sentence(), "model checking requires a sentence");
    eval(g, phi, &mut Assignment::new())
}

/// Evaluates `φ` under a (possibly partial) assignment. Free variables of
/// `φ` must be bound in `asg`.
///
/// # Panics
///
/// Panics on unbound variables and on set quantification beyond
/// [`MSO_LIMIT`] vertices.
pub fn eval(g: &Graph, phi: &Formula, asg: &mut Assignment) -> bool {
    use Formula::*;
    match phi {
        True => true,
        False => false,
        Eq(x, y) => lookup(asg, *x) == lookup(asg, *y),
        Adj(x, y) => g.has_edge(lookup(asg, *x), lookup(asg, *y)),
        In(x, s) => {
            let v = lookup(asg, *x);
            let mask = *asg
                .sets
                .get(s)
                .unwrap_or_else(|| panic!("unbound set variable {s}"));
            mask & (1u64 << v.0) != 0
        }
        Not(f) => !eval(g, f, asg),
        And(a, b) => eval(g, a, asg) && eval(g, b, asg),
        Or(a, b) => eval(g, a, asg) || eval(g, b, asg),
        Implies(a, b) => !eval(g, a, asg) || eval(g, b, asg),
        Forall(v, f) => quantify_vertex(g, *v, f, asg, true),
        Exists(v, f) => quantify_vertex(g, *v, f, asg, false),
        ForallSet(s, f) => quantify_set(g, *s, f, asg, true),
        ExistsSet(s, f) => quantify_set(g, *s, f, asg, false),
    }
}

fn lookup(asg: &Assignment, v: Var) -> NodeId {
    asg.get(v).unwrap_or_else(|| panic!("unbound variable {v}"))
}

fn quantify_vertex(
    g: &Graph,
    v: Var,
    body: &Formula,
    asg: &mut Assignment,
    universal: bool,
) -> bool {
    let saved = asg.vars.get(&v).copied();
    let mut result = universal;
    for x in g.nodes() {
        asg.vars.insert(v, x);
        let holds = eval(g, body, asg);
        if universal && !holds {
            result = false;
            break;
        }
        if !universal && holds {
            result = true;
            break;
        }
    }
    restore(&mut asg.vars, v, saved);
    result
}

fn quantify_set(
    g: &Graph,
    s: SetVar,
    body: &Formula,
    asg: &mut Assignment,
    universal: bool,
) -> bool {
    let n = g.num_nodes();
    assert!(
        n <= MSO_LIMIT,
        "set quantification limited to {MSO_LIMIT} vertices (got {n})"
    );
    let saved = asg.sets.get(&s).copied();
    let mut result = universal;
    for mask in 0..(1u64 << n) {
        asg.sets.insert(s, mask);
        let holds = eval(g, body, asg);
        if universal && !holds {
            result = false;
            break;
        }
        if !universal && holds {
            result = true;
            break;
        }
    }
    restore(&mut asg.sets, s, saved);
    result
}

fn restore<K: std::hash::Hash + Eq, V>(map: &mut HashMap<K, V>, k: K, saved: Option<V>) {
    match saved {
        Some(v) => {
            map.insert(k, v);
        }
        None => {
            map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use locert_graph::generators;

    #[test]
    fn constants() {
        let g = generators::path(2);
        assert!(models(&g, &Formula::True));
        assert!(!models(&g, &Formula::False));
    }

    #[test]
    fn dominating_vertex() {
        let (x, y) = (Var(0), Var(1));
        let dom = exists(x, forall(y, or(eq(x, y), adj(x, y))));
        assert!(models(&generators::star(5), &dom));
        assert!(models(&generators::clique(4), &dom));
        assert!(!models(&generators::path(4), &dom));
        assert!(models(&generators::path(3), &dom));
    }

    #[test]
    fn diameter_two_sentence_from_paper() {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let diam2 = forall_all(
            [x, y],
            or_all([eq(x, y), adj(x, y), exists(z, and(adj(x, z), adj(z, y)))]),
        );
        assert!(models(&generators::star(6), &diam2));
        assert!(models(&generators::cycle(5), &diam2));
        assert!(!models(&generators::cycle(6), &diam2));
        assert!(!models(&generators::path(4), &diam2));
    }

    #[test]
    fn bipartite_mso() {
        let (u, v) = (Var(0), Var(1));
        let s = SetVar(0);
        let bip = exists_set(
            s,
            forall_all([u, v], implies(adj(u, v), not(iff(mem(u, s), mem(v, s))))),
        );
        assert!(models(&generators::cycle(6), &bip));
        assert!(!models(&generators::cycle(5), &bip));
        assert!(models(&generators::path(7), &bip));
        assert!(!models(&generators::clique(3), &bip));
    }

    #[test]
    fn shadowed_variable_evaluates_innermost() {
        let x = Var(0);
        // ∃x. (deg-1 x) ∧ ∃x. true — inner binding must not clobber outer
        // permanently.
        let g = generators::path(3);
        let f = exists(x, and(exists(x, eq(x, x)), eq(x, x)));
        assert!(models(&g, &f));
    }

    #[test]
    fn eval_with_free_variable() {
        let g = generators::star(4);
        let (x, y) = (Var(0), Var(1));
        let dominates = forall(y, or(eq(x, y), adj(x, y)));
        let mut asg = Assignment::new();
        asg.bind(x, NodeId(0));
        assert!(eval(&g, &dominates, &mut asg));
        asg.bind(x, NodeId(1));
        assert!(!eval(&g, &dominates, &mut asg));
    }

    #[test]
    #[should_panic(expected = "sentence")]
    fn models_rejects_open_formulas() {
        let g = generators::path(2);
        models(&g, &adj(Var(0), Var(1)));
    }

    #[test]
    #[should_panic(expected = "set quantification limited")]
    fn mso_limit_enforced() {
        let g = generators::path(MSO_LIMIT + 1);
        let s = SetVar(0);
        let x = Var(0);
        models(&g, &exists_set(s, forall(x, mem(x, s))));
    }

    #[test]
    fn connectivity_mso() {
        // "for every proper non-empty set X there is an edge leaving X"
        let (u, v, w) = (Var(0), Var(1), Var(2));
        let s = SetVar(0);
        let connected = forall_set(
            s,
            implies(
                and(exists(u, mem(u, s)), exists(v, not(mem(v, s)))),
                exists_all([u, w], and_all([mem(u, s), not(mem(w, s)), adj(u, w)])),
            ),
        );
        assert!(models(&generators::path(5), &connected));
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!models(&disconnected, &connected));
    }
}
