//! Ehrenfeucht–Fraïssé games (Theorem 3.3).
//!
//! [`duplicator_wins`]`(g, h, k)` decides whether Duplicator has a winning
//! strategy in the `k`-round EF game on `(G, H)`, which by Theorem 3.3 is
//! equivalent to `G ≃_k H`: the two graphs satisfy the same FO sentences of
//! quantifier depth at most `k`.
//!
//! This is the validation oracle for the kernelization of Section 6
//! (Proposition 6.3 asserts `G ≃_k G'` for the k-reduced graph `G'`).
//!
//! The search is exact game-tree exploration with memoization on positions
//! (pairs of pebble tuples, order-normalized), exponential in `k` — meant
//! for the small instances of the test suite.

use locert_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Decides whether Duplicator wins the `k`-round EF game on `(g, h)`,
/// i.e. whether `g ≃_k h`.
pub fn duplicator_wins(g: &Graph, h: &Graph, k: usize) -> bool {
    let mut memo = HashMap::new();
    wins(g, h, &mut Vec::new(), &mut Vec::new(), k, &mut memo)
}

/// Whether the pebble map `gs[i] ↦ hs[i]` is a partial isomorphism between
/// the induced substructures (equality and adjacency patterns agree).
pub fn is_partial_isomorphism(g: &Graph, h: &Graph, gs: &[NodeId], hs: &[NodeId]) -> bool {
    debug_assert_eq!(gs.len(), hs.len());
    for i in 0..gs.len() {
        for j in (i + 1)..gs.len() {
            if (gs[i] == gs[j]) != (hs[i] == hs[j]) {
                return false;
            }
            if g.has_edge(gs[i], gs[j]) != h.has_edge(hs[i], hs[j]) {
                return false;
            }
        }
    }
    true
}

type Memo = HashMap<(Vec<NodeId>, Vec<NodeId>, usize), bool>;

fn wins(
    g: &Graph,
    h: &Graph,
    gs: &mut Vec<NodeId>,
    hs: &mut Vec<NodeId>,
    k: usize,
    memo: &mut Memo,
) -> bool {
    if k == 0 {
        return true;
    }
    let key = (gs.clone(), hs.clone(), k);
    if let Some(&hit) = memo.get(&key) {
        return hit;
    }
    // Spoiler plays in g: Duplicator must answer in h (and vice versa).
    let mut result = true;
    'outer: for side in 0..2 {
        let (spoiler_graph, dup_graph) = if side == 0 { (g, h) } else { (h, g) };
        for sp in spoiler_graph.nodes() {
            let mut answered = false;
            // Heuristic: try same-degree answers first — on trees the
            // mirror vertex almost always matches, short-circuiting the
            // search.
            let target_deg = spoiler_graph.degree(sp);
            let mut candidates: Vec<NodeId> = dup_graph.nodes().collect();
            candidates.sort_by_key(|&v| (dup_graph.degree(v) as i64 - target_deg as i64).abs());
            for dp in candidates {
                let (gv, hv) = if side == 0 { (sp, dp) } else { (dp, sp) };
                gs.push(gv);
                hs.push(hv);
                let ok = is_partial_isomorphism(g, h, gs, hs) && wins(g, h, gs, hs, k - 1, memo);
                gs.pop();
                hs.pop();
                if ok {
                    answered = true;
                    break;
                }
            }
            if !answered {
                result = false;
                break 'outer;
            }
        }
    }
    memo.insert(key, result);
    result
}

/// The pinned variant: decides whether Duplicator wins the `k`-round EF
/// game *starting from* the pebble configuration `pins` (pairs already on
/// the board). With `pins = [(r_g, r_h)]` this decides equivalence of
/// *rooted* structures — the congruence behind the tree-automaton
/// synthesis of Theorem 2.2.
///
/// Returns `false` immediately when the pinned configuration is not a
/// partial isomorphism.
pub fn duplicator_wins_pinned(g: &Graph, h: &Graph, pins: &[(NodeId, NodeId)], k: usize) -> bool {
    let mut gs: Vec<NodeId> = pins.iter().map(|&(a, _)| a).collect();
    let mut hs: Vec<NodeId> = pins.iter().map(|&(_, b)| b).collect();
    if !is_partial_isomorphism(g, h, &gs, &hs) {
        return false;
    }
    let mut memo = HashMap::new();
    wins(g, h, &mut gs, &mut hs, k, &mut memo)
}

/// The largest `k` (up to `max_k`) such that `g ≃_k h`; `None` if even
/// `k = max_k` holds (i.e. the graphs are not separated up to `max_k`).
///
/// Useful for reporting how faithful a kernel is.
pub fn separation_depth(g: &Graph, h: &Graph, max_k: usize) -> Option<usize> {
    (0..=max_k).find(|&k| !duplicator_wins(g, h, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::depth::quantifier_depth;
    use crate::eval::models;
    use locert_graph::generators;

    #[test]
    fn identical_graphs_always_equivalent() {
        let g = generators::cycle(5);
        for k in 0..4 {
            assert!(duplicator_wins(&g, &g, k));
        }
    }

    #[test]
    fn everything_is_zero_equivalent() {
        assert!(duplicator_wins(
            &generators::path(1),
            &generators::clique(4),
            0
        ));
    }

    #[test]
    fn k1_distinguishes_nothing_connected() {
        // With one round, any two non-empty graphs are equivalent.
        assert!(duplicator_wins(
            &generators::path(3),
            &generators::clique(3),
            1
        ));
    }

    #[test]
    fn k2_separates_clique_from_path() {
        // K_3 ⊨ ∀x∀y (x=y ∨ x~y), P_3 does not: depth 2 separates them.
        assert!(!duplicator_wins(
            &generators::path(3),
            &generators::clique(3),
            2
        ));
    }

    #[test]
    fn long_paths_equivalent_at_low_depth() {
        // P_8 and P_9 are ≃_2: depth-2 FO cannot measure length that far.
        assert!(duplicator_wins(
            &generators::path(8),
            &generators::path(9),
            2
        ));
        // But P_1 and P_2 differ at depth 1 (edge existence needs 2 pebbles).
        assert!(!duplicator_wins(
            &generators::path(1),
            &generators::path(2),
            2
        ));
    }

    #[test]
    fn separation_depth_reports_first_failure() {
        let p3 = generators::path(3);
        let k3 = generators::clique(3);
        assert_eq!(separation_depth(&p3, &k3, 4), Some(2));
        assert_eq!(separation_depth(&p3, &p3, 3), None);
    }

    #[test]
    fn path_equivalence_threshold() {
        use locert_graph::generators;
        // Classic: P_m ≃_k P_n whenever both are long enough relative to
        // 2^k; and short paths of different lengths are separated.
        for k in 1..=3usize {
            let long = 1 << (k + 1); // 2^{k+1} ≥ 2^k − 1 with margin.
            assert!(
                duplicator_wins(&generators::path(long), &generators::path(long + 3), k),
                "long paths separated at k = {k}"
            );
        }
        // P_2 vs P_3 separated at depth 3 (endpoint degree pattern).
        assert!(!duplicator_wins(
            &generators::path(2),
            &generators::path(3),
            3
        ));
    }

    /// The fundamental theorem (one direction, spot-checked): if
    /// `G ≃_k H` then they agree on depth-k sentences from a pool.
    #[test]
    fn equivalence_implies_sentence_agreement() {
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let sentences = vec![
            exists(x, forall(y, or(eq(x, y), adj(x, y)))),
            forall_all([x, y], or(eq(x, y), adj(x, y))),
            exists_all([x, y], and(not(eq(x, y)), not(adj(x, y)))),
            forall(x, exists(y, adj(x, y))),
            exists_all([x, y, z], and_all([adj(x, y), adj(y, z), adj(x, z)])),
            forall_all(
                [x, y],
                implies(adj(x, y), exists(z, and(adj(x, z), adj(y, z)))),
            ),
        ];
        let graphs = vec![
            generators::path(3),
            generators::path(4),
            generators::cycle(3),
            generators::cycle(4),
            generators::star(4),
            generators::clique(4),
        ];
        for a in &graphs {
            for b in &graphs {
                for phi in &sentences {
                    let k = quantifier_depth(phi);
                    if duplicator_wins(a, b, k) {
                        assert_eq!(
                            models(a, phi),
                            models(b, phi),
                            "≃_{k} graphs disagree on {phi}"
                        );
                    }
                }
            }
        }
    }
}
