//! First-order and monadic second-order logic on graphs.
//!
//! This crate implements the logical substrate of the paper (Section 3.2):
//!
//! - [`ast`]: the formula AST shared by FO and MSO ([`Formula`]), with
//!   ergonomic constructors and a pretty-printer;
//! - [`parser`]: a small recursive-descent parser for the printed syntax;
//! - [`eval`]: brute-force model checking `G ⊨ φ` — the ground truth the
//!   certification schemes are validated against, and the checker run on
//!   constant-size kernels by Theorem 2.6;
//! - [`depth`]: quantifier depth, FO detection, existential-prenex
//!   detection (the fragments of Lemma 2.1);
//! - [`ef`]: the Ehrenfeucht–Fraïssé game of Theorem 3.3, deciding
//!   `G ≃_k H`;
//! - [`props`]: a library of named formulas used across the experiments
//!   (diameter ≤ 2, triangle-freeness, domination, colorability, path
//!   freeness, …).
//!
//! # Example
//!
//! ```
//! use locert_logic::{eval, props};
//! use locert_graph::generators;
//!
//! let triangle = generators::cycle(3);
//! let square = generators::cycle(4);
//! let phi = props::triangle_free();
//! assert!(!eval::models(&triangle, &phi));
//! assert!(eval::models(&square, &phi));
//! ```

pub mod ast;
pub mod depth;
pub mod ef;
pub mod eval;
pub mod parser;
pub mod prenex;
pub mod props;

pub use ast::{Formula, SetVar, Var};
pub use ef::duplicator_wins;
pub use eval::models;
