//! The FO/MSO formula AST.
//!
//! A single [`Formula`] type covers both logics: a formula is first-order
//! when it contains no set quantifier and no membership atom (checked by
//! [`crate::depth::is_fo`]). Variables are plain integer handles ([`Var`],
//! [`SetVar`]); binding discipline is by-name, as in the paper (a quantifier
//! shadows outer bindings of the same variable).
//!
//! The constructors at the bottom of this module ([`eq`], [`adj`], [`and`],
//! [`forall`], …) make formulas readable at the call site:
//!
//! ```
//! use locert_logic::ast::*;
//!
//! let (x, y) = (Var(0), Var(1));
//! // "some vertex dominates the graph"
//! let phi = exists(x, forall(y, or(eq(x, y), adj(x, y))));
//! assert_eq!(phi.to_string(), "∃x0. ∀x1. x0 = x1 ∨ x0 ~ x1");
//! ```

use std::fmt;

/// A first-order variable (ranges over vertices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A monadic second-order variable (ranges over vertex sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetVar(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for SetVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An FO/MSO formula over the graph signature `{=, ~, ∈}`.
///
/// `Adj` is the adjacency predicate written `x - y` in the paper. All
/// boolean connectives and both kinds of quantifiers are primitive so that
/// quantifier-depth accounting matches the paper's conventions exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// Vertex equality `x = y`.
    Eq(Var, Var),
    /// Adjacency `x ~ y` (the paper's `x - y`).
    Adj(Var, Var),
    /// Set membership `x ∈ X`.
    In(Var, SetVar),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication (sugar kept primitive for readable printing).
    Implies(Box<Formula>, Box<Formula>),
    /// Universal vertex quantification.
    Forall(Var, Box<Formula>),
    /// Existential vertex quantification.
    Exists(Var, Box<Formula>),
    /// Universal set quantification (MSO).
    ForallSet(SetVar, Box<Formula>),
    /// Existential set quantification (MSO).
    ExistsSet(SetVar, Box<Formula>),
}

impl Formula {
    /// Number of AST nodes — a crude size measure used in tests and in the
    /// `f(t, φ)` bookkeeping of Theorem 2.6.
    pub fn size(&self) -> usize {
        use Formula::*;
        match self {
            True | False | Eq(..) | Adj(..) | In(..) => 1,
            Not(f) | Forall(_, f) | Exists(_, f) | ForallSet(_, f) | ExistsSet(_, f) => {
                1 + f.size()
            }
            And(a, b) | Or(a, b) | Implies(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// The free first-order variables, in increasing order.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
            &mut std::collections::BTreeSet::new(),
        );
        out.into_iter().collect()
    }

    /// The free set variables, in increasing order.
    pub fn free_set_vars(&self) -> Vec<SetVar> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(
            &mut Vec::new(),
            &mut Vec::new(),
            &mut std::collections::BTreeSet::new(),
            &mut out,
        );
        out.into_iter().collect()
    }

    fn collect_free(
        &self,
        bound: &mut Vec<Var>,
        bound_sets: &mut Vec<SetVar>,
        out: &mut std::collections::BTreeSet<Var>,
        out_sets: &mut std::collections::BTreeSet<SetVar>,
    ) {
        use Formula::*;
        match self {
            True | False => {}
            Eq(x, y) | Adj(x, y) => {
                for v in [x, y] {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            In(x, s) => {
                if !bound.contains(x) {
                    out.insert(*x);
                }
                if !bound_sets.contains(s) {
                    out_sets.insert(*s);
                }
            }
            Not(f) => f.collect_free(bound, bound_sets, out, out_sets),
            And(a, b) | Or(a, b) | Implies(a, b) => {
                a.collect_free(bound, bound_sets, out, out_sets);
                b.collect_free(bound, bound_sets, out, out_sets);
            }
            Forall(v, f) | Exists(v, f) => {
                bound.push(*v);
                f.collect_free(bound, bound_sets, out, out_sets);
                bound.pop();
            }
            ForallSet(s, f) | ExistsSet(s, f) => {
                bound_sets.push(*s);
                f.collect_free(bound, bound_sets, out, out_sets);
                bound_sets.pop();
            }
        }
    }

    /// Whether the formula is a *sentence* (no free variables of either
    /// kind).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty() && self.free_set_vars().is_empty()
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_parens(f: &Formula) -> bool {
            matches!(
                f,
                Formula::And(..)
                    | Formula::Or(..)
                    | Formula::Implies(..)
                    | Formula::Forall(..)
                    | Formula::Exists(..)
                    | Formula::ForallSet(..)
                    | Formula::ExistsSet(..)
            )
        }
        fn wrap(f: &Formula, out: &mut fmt::Formatter<'_>) -> fmt::Result {
            if needs_parens(f) {
                write!(out, "({f})")
            } else {
                write!(out, "{f}")
            }
        }
        use Formula::*;
        match self {
            True => write!(f, "true"),
            False => write!(f, "false"),
            Eq(x, y) => write!(f, "{x} = {y}"),
            Adj(x, y) => write!(f, "{x} ~ {y}"),
            In(x, s) => write!(f, "{x} ∈ {s}"),
            Not(g) => {
                write!(f, "¬")?;
                wrap(g, f)
            }
            And(a, b) => {
                wrap(a, f)?;
                write!(f, " ∧ ")?;
                wrap(b, f)
            }
            Or(a, b) => {
                wrap(a, f)?;
                write!(f, " ∨ ")?;
                wrap(b, f)
            }
            Implies(a, b) => {
                wrap(a, f)?;
                write!(f, " → ")?;
                wrap(b, f)
            }
            Forall(v, g) => write!(f, "∀{v}. {g}"),
            Exists(v, g) => write!(f, "∃{v}. {g}"),
            ForallSet(s, g) => write!(f, "∀{s}. {g}"),
            ExistsSet(s, g) => write!(f, "∃{s}. {g}"),
        }
    }
}

// --- ergonomic constructors -------------------------------------------------

/// `x = y`.
pub fn eq(x: Var, y: Var) -> Formula {
    Formula::Eq(x, y)
}

/// `x ~ y` (adjacency).
pub fn adj(x: Var, y: Var) -> Formula {
    Formula::Adj(x, y)
}

/// `x ∈ X`.
pub fn mem(x: Var, s: SetVar) -> Formula {
    Formula::In(x, s)
}

/// `¬f`.
pub fn not(f: Formula) -> Formula {
    Formula::Not(Box::new(f))
}

/// `a ∧ b`.
pub fn and(a: Formula, b: Formula) -> Formula {
    Formula::And(Box::new(a), Box::new(b))
}

/// `a ∨ b`.
pub fn or(a: Formula, b: Formula) -> Formula {
    Formula::Or(Box::new(a), Box::new(b))
}

/// `a → b`.
pub fn implies(a: Formula, b: Formula) -> Formula {
    Formula::Implies(Box::new(a), Box::new(b))
}

/// `a ↔ b` (expanded to a conjunction of implications).
pub fn iff(a: Formula, b: Formula) -> Formula {
    and(implies(a.clone(), b.clone()), implies(b, a))
}

/// `∀x. f`.
pub fn forall(x: Var, f: Formula) -> Formula {
    Formula::Forall(x, Box::new(f))
}

/// `∃x. f`.
pub fn exists(x: Var, f: Formula) -> Formula {
    Formula::Exists(x, Box::new(f))
}

/// `∀X. f` (set quantification).
pub fn forall_set(s: SetVar, f: Formula) -> Formula {
    Formula::ForallSet(s, Box::new(f))
}

/// `∃X. f` (set quantification).
pub fn exists_set(s: SetVar, f: Formula) -> Formula {
    Formula::ExistsSet(s, Box::new(f))
}

/// Conjunction of a list (empty list = `true`).
pub fn and_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
    fs.into_iter().reduce(and).unwrap_or(Formula::True)
}

/// Disjunction of a list (empty list = `false`).
pub fn or_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
    fs.into_iter().reduce(or).unwrap_or(Formula::False)
}

/// Nested existential quantification `∃x₁ … ∃xₖ. f`.
pub fn exists_all<I>(vars: I, f: Formula) -> Formula
where
    I: IntoIterator<Item = Var>,
    I::IntoIter: DoubleEndedIterator,
{
    vars.into_iter().rev().fold(f, |acc, v| exists(v, acc))
}

/// Nested universal quantification `∀x₁ … ∀xₖ. f`.
pub fn forall_all<I>(vars: I, f: Formula) -> Formula
where
    I: IntoIterator<Item = Var>,
    I::IntoIter: DoubleEndedIterator,
{
    vars.into_iter().rev().fold(f, |acc, v| forall(v, acc))
}

/// Pairwise-distinctness of a list of variables.
pub fn pairwise_distinct(vars: &[Var]) -> Formula {
    let mut clauses = Vec::new();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            clauses.push(not(eq(vars[i], vars[j])));
        }
    }
    and_all(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let (x, y) = (Var(0), Var(1));
        let f = forall(x, exists(y, and(adj(x, y), not(eq(x, y)))));
        assert_eq!(f.to_string(), "∀x0. ∃x1. x0 ~ x1 ∧ ¬x0 = x1");
    }

    #[test]
    fn size_counts_nodes() {
        let (x, y) = (Var(0), Var(1));
        assert_eq!(eq(x, y).size(), 1);
        assert_eq!(and(eq(x, y), adj(x, y)).size(), 3);
        assert_eq!(forall(x, eq(x, x)).size(), 2);
    }

    #[test]
    fn free_vars_respect_binding() {
        let (x, y) = (Var(0), Var(1));
        let f = forall(x, adj(x, y));
        assert_eq!(f.free_vars(), vec![y]);
        assert!(!f.is_sentence());
        let g = forall(y, f);
        assert!(g.is_sentence());
    }

    #[test]
    fn shadowing_is_by_name() {
        let x = Var(0);
        // ∃x. (x = x) has no free variables even with nested reuse.
        let f = exists(x, and(eq(x, x), exists(x, eq(x, x))));
        assert!(f.is_sentence());
    }

    #[test]
    fn free_set_vars() {
        let x = Var(0);
        let s = SetVar(0);
        let f = forall(x, mem(x, s));
        assert_eq!(f.free_set_vars(), vec![s]);
        assert!(exists_set(s, f).is_sentence());
    }

    #[test]
    fn and_all_empty_is_true() {
        assert_eq!(and_all([]), Formula::True);
        assert_eq!(or_all([]), Formula::False);
    }

    #[test]
    fn exists_all_order() {
        let (x, y) = (Var(0), Var(1));
        let f = exists_all([x, y], adj(x, y));
        assert_eq!(f.to_string(), "∃x0. ∃x1. x0 ~ x1");
    }

    #[test]
    fn pairwise_distinct_counts() {
        let vars = [Var(0), Var(1), Var(2)];
        let f = pairwise_distinct(&vars);
        // 3 pairs, each ¬(a = b) (2 nodes), joined by 2 ∧ nodes.
        assert_eq!(f.size(), 8);
    }
}
