//! Closed-form treedepth values and explicit optimal models.
//!
//! These give the experiment suite exact expectations at scales far beyond
//! the exact solver, and [`path_elimination_tree`] reproduces Figure 1's
//! binary elimination tree of a path at any size.

use crate::elimination::EliminationTree;
use locert_graph::{generators, Graph};

/// `⌈log₂(x + 1)⌉`, i.e. the number of bits of `x` (with `bits(0) = 0`).
fn bits(x: usize) -> usize {
    (usize::BITS - x.leading_zeros()) as usize
}

/// `td(P_n) = ⌈log₂(n + 1)⌉` (vertex-count convention).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn treedepth_of_path(n: usize) -> usize {
    assert!(n > 0, "path must be non-empty");
    bits(n)
}

/// `td(C_n) = ⌈log₂ n⌉ + 1 = ⌊log₂(n − 1)⌋ + 2`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn treedepth_of_cycle(n: usize) -> usize {
    assert!(n >= 3, "cycle needs at least three vertices");
    bits(n - 1) + 1
}

/// `td(K_n) = n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn treedepth_of_clique(n: usize) -> usize {
    assert!(n > 0, "clique must be non-empty");
    n
}

/// `td(K_{1,n-1}) = min(n, 2)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn treedepth_of_star(n: usize) -> usize {
    assert!(n > 0, "star must be non-empty");
    n.min(2)
}

/// The optimal (binary-splitting) elimination tree of `P_n` — the
/// construction illustrated by Figure 1 for `P_7`. Roots the model at the
/// middle vertex of each segment, recursively.
///
/// The resulting model is coherent and has height exactly
/// [`treedepth_of_path`]`(n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_elimination_tree(n: usize) -> (Graph, EliminationTree) {
    assert!(n > 0, "path must be non-empty");
    let g = generators::path(n);
    let mut parent: Vec<Option<usize>> = vec![None; n];
    // Recursive middle split on the interval [lo, hi].
    let mut stack = vec![(0usize, n - 1, None::<usize>)];
    while let Some((lo, hi, above)) = stack.pop() {
        let mid = lo + (hi - lo) / 2;
        parent[mid] = above;
        if mid > lo {
            stack.push((lo, mid - 1, Some(mid)));
        }
        if mid < hi {
            stack.push((mid + 1, hi, Some(mid)));
        }
    }
    let t = EliminationTree::new(&g, &parent).expect("binary split is a model of the path");
    (g, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::treedepth_exact;
    use locert_graph::generators;

    #[test]
    fn path_formula_matches_exact() {
        for n in 1..=20 {
            assert_eq!(
                treedepth_of_path(n),
                treedepth_exact(&generators::path(n)),
                "P_{n}"
            );
        }
    }

    #[test]
    fn cycle_formula_matches_exact() {
        for n in 3..=18 {
            assert_eq!(
                treedepth_of_cycle(n),
                treedepth_exact(&generators::cycle(n)),
                "C_{n}"
            );
        }
    }

    #[test]
    fn clique_and_star_formulas() {
        for n in 1..=6 {
            assert_eq!(
                treedepth_of_clique(n),
                treedepth_exact(&generators::clique(n))
            );
        }
        for n in 1..=7 {
            assert_eq!(treedepth_of_star(n), treedepth_exact(&generators::star(n)));
        }
    }

    #[test]
    fn figure1_path7() {
        // The Figure 1 reproduction: P_{2^k - 1} has treedepth k.
        for k in 1..=10usize {
            let n = (1 << k) - 1;
            assert_eq!(treedepth_of_path(n), k, "P_{n}");
        }
        let (g, t) = path_elimination_tree(7);
        assert_eq!(t.height(), 3);
        assert!(t.is_coherent(&g));
    }

    #[test]
    fn binary_split_is_optimal_at_all_sizes() {
        for n in 1..=64 {
            let (g, t) = path_elimination_tree(n);
            assert_eq!(t.height(), treedepth_of_path(n), "P_{n}");
            assert!(t.is_coherent(&g), "P_{n}");
        }
    }

    #[test]
    fn binary_split_large_path() {
        let (_, t) = path_elimination_tree(4095);
        assert_eq!(t.height(), 12);
        let (_, t) = path_elimination_tree(4096);
        assert_eq!(t.height(), 13);
    }
}
