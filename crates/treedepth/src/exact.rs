//! Exact treedepth via memoized branch-and-bound on vertex subsets.
//!
//! The recursion is the textbook one (in the vertex-count convention):
//!
//! - `td(G) = 1` for a single vertex,
//! - `td(G) = max over connected components` if disconnected,
//! - `td(G) = 1 + min_{v} td(G − v)` if connected.
//!
//! Subsets are `u64` bitmasks (`n ≤ 28`), results are memoized, and the
//! search is pruned with a shortest-path lower bound (`G ⊇ P_{d+1}` for
//! diameter `d`, so `td(G) ≥ ⌈log₂(d + 2)⌉`) and the running best upper
//! bound. [`optimal_elimination_tree`] reconstructs an optimal (and, by
//! construction, coherent) model.

use crate::elimination::EliminationTree;
use locert_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Maximum vertex count accepted by the exact solver.
pub const EXACT_LIMIT: usize = 28;

/// The branch-and-bound search ran out of its expansion budget.
///
/// Returned by [`treedepth_exact_within`] and
/// [`optimal_elimination_tree_within`] when the number of branch
/// expansions exceeds the caller's budget. The partial search state is
/// discarded: treedepth lower/upper bounds obtained before exhaustion
/// are not trustworthy as exact values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The branch budget the search was given.
    pub budget: u64,
    /// Branch expansions performed before giving up.
    pub branches: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact treedepth search exceeded its budget of {} branch expansions",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Exact treedepth of `g` (vertex-count convention; `td(K_1) = 1`).
///
/// # Panics
///
/// Panics if `g` is empty or has more than [`EXACT_LIMIT`] vertices.
pub fn treedepth_exact(g: &Graph) -> usize {
    treedepth_exact_within(g, u64::MAX).expect("unbounded search cannot exhaust its budget")
}

/// Exact treedepth of `g`, abandoning the search after `budget` branch
/// expansions. A budget of `u64::MAX` is effectively unbounded; at any
/// size within [`EXACT_LIMIT`] a budget of a few million suffices for
/// every instance the workspace generates.
///
/// # Panics
///
/// Panics if `g` is empty or has more than [`EXACT_LIMIT`] vertices.
pub fn treedepth_exact_within(g: &Graph, budget: u64) -> Result<usize, BudgetExceeded> {
    let n = g.num_nodes();
    assert!(n >= 1, "treedepth of the empty graph is undefined");
    assert!(
        n <= EXACT_LIMIT,
        "exact treedepth limited to {EXACT_LIMIT} vertices"
    );
    let _span = locert_trace::span!("treedepth.exact");
    let mut solver = Solver::new(g, budget);
    let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let td = solver.treedepth(full);
    solver.flush_stats();
    td
}

/// An optimal elimination tree of a **connected** graph `g`, reconstructed
/// from the exact solver. The result is coherent (children are attached
/// below the component they belong to).
///
/// # Panics
///
/// Panics if `g` is empty, disconnected, or exceeds [`EXACT_LIMIT`].
pub fn optimal_elimination_tree(g: &Graph) -> EliminationTree {
    optimal_elimination_tree_within(g, u64::MAX)
        .expect("unbounded search cannot exhaust its budget")
}

/// An optimal elimination tree of a **connected** graph `g`, abandoning
/// the search after `budget` branch expansions (see
/// [`treedepth_exact_within`]).
///
/// # Panics
///
/// Panics if `g` is empty, disconnected, or exceeds [`EXACT_LIMIT`].
pub fn optimal_elimination_tree_within(
    g: &Graph,
    budget: u64,
) -> Result<EliminationTree, BudgetExceeded> {
    let n = g.num_nodes();
    assert!((1..=EXACT_LIMIT).contains(&n), "size out of range");
    assert!(g.is_connected(), "optimal model requires a connected graph");
    let _span = locert_trace::span!("treedepth.exact.optimal_model");
    let mut solver = Solver::new(g, budget);
    let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut parent = vec![None; n];
    let built = solver.build(full, None, &mut parent);
    solver.flush_stats();
    built?;
    Ok(EliminationTree::new(g, &parent).expect("solver output is a model"))
}

struct Solver<'g> {
    g: &'g Graph,
    memo: HashMap<u64, usize>,
    budget: u64,
    branches: u64,
    prunes: u64,
    memo_hits: u64,
}

impl<'g> Solver<'g> {
    fn new(g: &'g Graph, budget: u64) -> Self {
        Solver {
            g,
            memo: HashMap::new(),
            budget,
            branches: 0,
            prunes: 0,
            memo_hits: 0,
        }
    }

    fn exceeded(&self) -> BudgetExceeded {
        BudgetExceeded {
            budget: self.budget,
            branches: self.branches,
        }
    }

    /// Publishes the solver-local search statistics to the global metrics
    /// registry (no-op when tracing is disabled).
    fn flush_stats(&self) {
        if locert_trace::enabled() {
            locert_trace::add("treedepth.exact.branches", self.branches);
            locert_trace::add("treedepth.exact.prunes", self.prunes);
            locert_trace::add("treedepth.exact.memo_hits", self.memo_hits);
            locert_trace::add("treedepth.exact.memo_entries", self.memo.len() as u64);
        }
    }

    /// Connected components of the sub-vertex-set `mask`, as masks.
    fn components(&self, mask: u64) -> Vec<u64> {
        let mut comps = Vec::new();
        let mut left = mask;
        while left != 0 {
            let start = left.trailing_zeros() as usize;
            let mut comp = 0u64;
            let mut stack = vec![start];
            comp |= 1 << start;
            while let Some(u) = stack.pop() {
                for &v in self.g.neighbors(NodeId(u)) {
                    let bit = 1u64 << v.0;
                    if mask & bit != 0 && comp & bit == 0 {
                        comp |= bit;
                        stack.push(v.0);
                    }
                }
            }
            comps.push(comp);
            left &= !comp;
        }
        comps
    }

    /// Eccentricity-based lower bound: a BFS inside `mask` from its lowest
    /// vertex finds some shortest path of length `d`, giving a `P_{d+1}`
    /// subgraph and thus `td ≥ ⌈log₂(d + 2)⌉`.
    fn lower_bound(&self, mask: u64) -> usize {
        let count = mask.count_ones() as usize;
        if count <= 1 {
            return count;
        }
        let start = mask.trailing_zeros() as usize;
        let mut dist = HashMap::new();
        dist.insert(start, 0usize);
        let mut queue = std::collections::VecDeque::from([start]);
        let mut ecc = 0;
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            ecc = ecc.max(du);
            for &v in self.g.neighbors(NodeId(u)) {
                if mask & (1u64 << v.0) != 0 && !dist.contains_key(&v.0) {
                    dist.insert(v.0, du + 1);
                    queue.push_back(v.0);
                }
            }
        }
        // Path on ecc+1 vertices: td >= ceil(log2(ecc + 2)).
        let path_len = ecc + 1;
        (usize::BITS - path_len.leading_zeros()) as usize
    }

    /// Exact treedepth of the sub-vertex-set `mask` (vertex-count
    /// convention). Handles disconnected masks by taking the max over
    /// components.
    fn treedepth(&mut self, mask: u64) -> Result<usize, BudgetExceeded> {
        let mut best = 0;
        for c in self.components(mask) {
            best = best.max(self.treedepth_connected(c)?);
        }
        Ok(best)
    }

    fn treedepth_connected(&mut self, mask: u64) -> Result<usize, BudgetExceeded> {
        let count = mask.count_ones() as usize;
        if count <= 1 {
            return Ok(count);
        }
        if count == 2 {
            return Ok(2);
        }
        if let Some(&hit) = self.memo.get(&mask) {
            self.memo_hits += 1;
            return Ok(hit);
        }
        let lb = self.lower_bound(mask);
        let mut best = count; // chain model upper bound.
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            self.branches += 1;
            if self.branches > self.budget {
                return Err(self.exceeded());
            }
            let rest = mask & !(1u64 << v);
            // td = 1 + max over components of rest; prune component-wise.
            let mut worst = 0usize;
            for comp in self.components(rest) {
                if worst + 1 >= best {
                    self.prunes += 1;
                    break;
                }
                let sub_lb = self.lower_bound(comp);
                if sub_lb + 1 >= best {
                    self.prunes += 1;
                    worst = best; // will fail the bound below.
                    break;
                }
                worst = worst.max(self.treedepth_connected(comp)?);
            }
            if 1 + worst < best {
                best = 1 + worst;
                if best == lb {
                    break;
                }
            }
        }
        self.memo.insert(mask, best);
        Ok(best)
    }

    /// Reconstructs an optimal elimination tree of the connected set
    /// `mask`, attaching its root below `above`.
    fn build(
        &mut self,
        mask: u64,
        above: Option<usize>,
        parent: &mut [Option<usize>],
    ) -> Result<(), BudgetExceeded> {
        let target = self.treedepth_connected(mask)?;
        let count = mask.count_ones() as usize;
        if count == 1 {
            let v = mask.trailing_zeros() as usize;
            parent[v] = above;
            return Ok(());
        }
        // Find a root achieving the optimum.
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let rest = mask & !(1u64 << v);
            let comps = self.components(rest);
            let mut worst = 0;
            for &c in &comps {
                worst = worst.max(self.treedepth_connected(c)?);
            }
            if 1 + worst == target {
                parent[v] = above;
                for comp in comps {
                    self.build(comp, Some(v), parent)?;
                }
                return Ok(());
            }
        }
        unreachable!("some root must achieve the memoized optimum");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::generators;

    #[test]
    fn single_vertex() {
        assert_eq!(treedepth_exact(&Graph::empty(1)), 1);
    }

    #[test]
    fn edge_and_small_paths() {
        assert_eq!(treedepth_exact(&generators::path(2)), 2);
        assert_eq!(treedepth_exact(&generators::path(3)), 2);
        assert_eq!(treedepth_exact(&generators::path(4)), 3);
        assert_eq!(treedepth_exact(&generators::path(7)), 3);
        assert_eq!(treedepth_exact(&generators::path(8)), 4);
        assert_eq!(treedepth_exact(&generators::path(15)), 4);
        assert_eq!(treedepth_exact(&generators::path(16)), 5);
    }

    #[test]
    fn cliques_are_worst_case() {
        for n in 1..=6 {
            assert_eq!(treedepth_exact(&generators::clique(n)), n);
        }
    }

    #[test]
    fn stars_have_treedepth_2() {
        for n in 2..8 {
            assert_eq!(treedepth_exact(&generators::star(n)), 2);
        }
    }

    #[test]
    fn cycles() {
        // td(C_n) = ⌈log₂ n⌉ + 1.
        for (n, expected) in [
            (3, 3),
            (4, 3),
            (5, 4),
            (6, 4),
            (8, 4),
            (9, 5),
            (16, 5),
            (17, 6),
        ] {
            assert_eq!(treedepth_exact(&generators::cycle(n)), expected, "C_{n}");
        }
    }

    #[test]
    fn disconnected_takes_max() {
        let g = generators::path(4).disjoint_union(&generators::clique(5));
        assert_eq!(treedepth_exact(&g), 5);
    }

    #[test]
    fn complete_binary_tree() {
        // td of the complete binary tree of height h (vertex convention) is
        // h + 1 (eliminate the root, recurse).
        assert_eq!(treedepth_exact(&generators::complete_kary_tree(2, 2)), 3);
        assert_eq!(treedepth_exact(&generators::complete_kary_tree(2, 3)), 4);
    }

    #[test]
    fn optimal_model_matches_exact_value() {
        let graphs = [
            generators::path(7),
            generators::cycle(6),
            generators::clique(4),
            generators::star(7),
            generators::spider(3, 3),
            generators::complete_kary_tree(2, 3),
        ];
        for g in &graphs {
            let td = treedepth_exact(g);
            let model = optimal_elimination_tree(g);
            assert_eq!(model.height(), td, "graph {g:?}");
            // Each subtree is built from one connected component adjacent
            // to its parent, so the reconstruction is coherent.
            assert!(model.is_coherent(g));
        }
    }

    #[test]
    fn random_bounded_treedepth_instances_respect_bound() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let (g, _) = generators::random_bounded_treedepth(12, 4, 0.4, &mut rng);
            assert!(treedepth_exact(&g) <= 4);
        }
    }

    #[test]
    fn complete_bipartite_treedepth() {
        // td(K_{m,m}) = m + 1: eliminate one side, a star remains… more
        // precisely the recursion gives m + 1.
        for m in 1..=4usize {
            let mut b = locert_graph::GraphBuilder::new(2 * m);
            for i in 0..m {
                for j in 0..m {
                    b.add_edge(i, m + j).unwrap();
                }
            }
            let g = b.build();
            assert_eq!(treedepth_exact(&g), m + 1, "K_{{{m},{m}}}");
        }
    }

    #[test]
    fn tiny_budget_is_reported_as_exceeded() {
        // C_16 needs well over ten branch expansions; the search must
        // give up with the typed error, not a wrong value.
        let g = generators::cycle(16);
        let err = treedepth_exact_within(&g, 10).unwrap_err();
        assert_eq!(err.budget, 10);
        assert!(err.branches > err.budget);
        assert!(optimal_elimination_tree_within(&g, 10).is_err());
        // The same search succeeds under a generous budget.
        assert_eq!(treedepth_exact_within(&g, 1 << 20).unwrap(), 5);
        let model = optimal_elimination_tree_within(&g, 1 << 20).unwrap();
        assert_eq!(model.height(), 5);
    }

    #[test]
    fn budget_counts_branches_not_vertices() {
        // A star resolves in one branch per leaf; a budget of the vertex
        // count is ample.
        let g = generators::star(8);
        assert_eq!(treedepth_exact_within(&g, 8).unwrap(), 2);
    }

    #[test]
    fn exact_agrees_with_formula_on_paths() {
        for n in 1usize..=20 {
            let expected = (usize::BITS - n.leading_zeros()) as usize; // ⌈log2(n+1)⌉
            assert_eq!(treedepth_exact(&generators::path(n)), expected, "P_{n}");
        }
    }
}
