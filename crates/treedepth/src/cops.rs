//! The cops-and-robber characterization of treedepth.
//!
//! Lemma 7.3's proof uses the game of Gruber–Holzer \[33]: immobile cops
//! are placed one at a time; before each placement the robber learns the
//! announced position and may move along any cop-free path; the game ends
//! when a cop lands on the robber's vertex and the robber cannot move.
//! The minimum number of cops that guarantees capture equals the treedepth
//! (vertex-count convention).
//!
//! This module provides:
//!
//! - [`cop_number`]: the optimal game value, computed over robber
//!   territories (connected cop-free regions);
//! - [`Game`]: a playable step-by-step engine used to *replay* the explicit
//!   strategies of Figure 4 (cop on the apex, two opposite cops on the
//!   robber's cycle, binary search on the remaining path);
//! - an optimal cop strategy extractor and a best-escape robber.

use locert_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Maximum vertex count for the exact game solver.
pub const GAME_LIMIT: usize = 28;

/// The minimum number of cops that capture the robber on `g`.
///
/// Equals the treedepth of `g` (Gruber–Holzer). The game value on a
/// territory `T` (a connected cop-free region the robber occupies) is
/// `1 + min_v max over components C of T − v (value(C))`, because after a
/// cop is announced on `v` the robber commits to one component of `T − v`.
///
/// # Panics
///
/// Panics if `g` is empty or exceeds [`GAME_LIMIT`] vertices.
pub fn cop_number(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(
        (1..=GAME_LIMIT).contains(&n),
        "game solver size out of range"
    );
    let _span = locert_trace::span!("treedepth.cops.cop_number");
    let mut memo = HashMap::new();
    let full = (1u64 << n) - 1;
    let k = components_of(g, full)
        .into_iter()
        .map(|c| value(g, c, &mut memo))
        .max()
        .unwrap_or(0);
    if locert_trace::enabled() {
        locert_trace::add("treedepth.cops.games_solved", 1);
        locert_trace::add("treedepth.cops.territories_evaluated", memo.len() as u64);
    }
    k
}

fn components_of(g: &Graph, mask: u64) -> Vec<u64> {
    let mut comps = Vec::new();
    let mut left = mask;
    while left != 0 {
        let start = left.trailing_zeros() as usize;
        let mut comp = 1u64 << start;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(NodeId(u)) {
                let bit = 1u64 << v.0;
                if mask & bit != 0 && comp & bit == 0 {
                    comp |= bit;
                    stack.push(v.0);
                }
            }
        }
        comps.push(comp);
        left &= !comp;
    }
    comps
}

fn value(g: &Graph, territory: u64, memo: &mut HashMap<u64, usize>) -> usize {
    let count = territory.count_ones() as usize;
    if count <= 1 {
        return count;
    }
    if let Some(&hit) = memo.get(&territory) {
        return hit;
    }
    let mut best = count;
    let mut m = territory;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        m &= m - 1;
        let rest = territory & !(1u64 << v);
        let mut worst = 0usize;
        for comp in components_of(g, rest) {
            if worst + 1 >= best {
                break;
            }
            worst = worst.max(value(g, comp, memo));
        }
        best = best.min(1 + worst);
    }
    memo.insert(territory, best);
    best
}

/// One step of the game from the cops' side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The robber was caught (cop placed on its vertex, no escape).
    Caught {
        /// Total cops used, including the final one.
        cops_used: usize,
    },
    /// The game continues.
    Ongoing,
}

/// A playable cops-and-robber game on a graph.
///
/// The engine enforces the protocol of \[33]: the next cop position is
/// *announced*, the robber moves along a cop-free path (possibly staying),
/// then the cop lands.
#[derive(Debug, Clone)]
pub struct Game<'g> {
    g: &'g Graph,
    cops: Vec<NodeId>,
    robber: NodeId,
}

impl<'g> Game<'g> {
    /// Starts a game with the robber at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn new(g: &'g Graph, start: NodeId) -> Self {
        assert!(start.0 < g.num_nodes(), "robber start out of range");
        Game {
            g,
            cops: Vec::new(),
            robber: start,
        }
    }

    /// Current robber position.
    pub fn robber(&self) -> NodeId {
        self.robber
    }

    /// Cops placed so far.
    pub fn cops(&self) -> &[NodeId] {
        &self.cops
    }

    /// The robber's current territory: the connected cop-free region
    /// containing the robber (as a bitmask).
    pub fn territory(&self) -> u64 {
        let mut mask = (1u64 << self.g.num_nodes()) - 1;
        for &c in &self.cops {
            mask &= !(1u64 << c.0);
        }
        components_of(self.g, mask)
            .into_iter()
            .find(|c| c & (1u64 << self.robber.0) != 0)
            .expect("robber stands in a cop-free vertex")
    }

    /// Announces a cop at `pos`, lets `robber_strategy` choose a new
    /// position within the current territory, then places the cop.
    ///
    /// # Panics
    ///
    /// Panics if `pos` already hosts a cop or the robber strategy moves
    /// outside its territory.
    pub fn place_cop<F>(&mut self, pos: NodeId, mut robber_strategy: F) -> Outcome
    where
        F: FnMut(&Game<'_>, NodeId) -> NodeId,
    {
        assert!(!self.cops.contains(&pos), "cop already placed at {pos}");
        let territory = self.territory();
        let answer = robber_strategy(self, pos);
        assert!(
            territory & (1u64 << answer.0) != 0,
            "robber must stay within its territory"
        );
        self.robber = answer;
        self.cops.push(pos);
        if self.robber == pos {
            // Caught only if the robber also cannot move now.
            let mut mask = (1u64 << self.g.num_nodes()) - 1;
            for &c in &self.cops {
                mask &= !(1u64 << c.0);
            }
            let escape = self
                .g
                .neighbors(self.robber)
                .iter()
                .any(|&v| mask & (1u64 << v.0) != 0);
            if !escape {
                return Outcome::Caught {
                    cops_used: self.cops.len(),
                };
            }
            // Robber slips to any free neighbor.
            let v = self
                .g
                .neighbors(self.robber)
                .iter()
                .copied()
                .find(|&v| mask & (1u64 << v.0) != 0)
                .expect("escape exists");
            self.robber = v;
        }
        Outcome::Ongoing
    }
}

/// The *best-escape* robber: on each announcement, moves to a vertex of
/// the component (after the announced cop lands) with the highest game
/// value. Use with [`Game::place_cop`].
pub fn best_escape_robber(g: &Graph) -> impl FnMut(&Game<'_>, NodeId) -> NodeId + '_ {
    let mut memo: HashMap<u64, usize> = HashMap::new();
    move |game, announced| {
        let territory = game.territory();
        let after = territory & !(1u64 << announced.0);
        let comps = components_of(g, after);
        comps
            .into_iter()
            .max_by_key(|&c| value(g, c, &mut memo))
            .map(|c| NodeId(c.trailing_zeros() as usize))
            // Nowhere to go: stand still and be caught.
            .unwrap_or(game.robber())
    }
}

/// Plays the optimal cop strategy against `robber_strategy` and returns
/// the number of cops used to capture.
///
/// # Panics
///
/// Panics if `g` exceeds [`GAME_LIMIT`].
pub fn play_optimal_cops<F>(g: &Graph, start: NodeId, mut robber_strategy: F) -> usize
where
    F: FnMut(&Game<'_>, NodeId) -> NodeId,
{
    assert!(g.num_nodes() <= GAME_LIMIT);
    let _span = locert_trace::span!("treedepth.cops.play_optimal");
    let mut memo = HashMap::new();
    let mut game = Game::new(g, start);
    loop {
        if locert_trace::enabled() {
            locert_trace::add("treedepth.cops.moves_played", 1);
        }
        let territory = game.territory();
        // Optimal announcement: vertex minimizing 1 + max component value.
        let mut best_v = None;
        let mut best_val = usize::MAX;
        let mut m = territory;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let rest = territory & !(1u64 << v);
            let worst = components_of(g, rest)
                .into_iter()
                .map(|c| value(g, c, &mut memo))
                .max()
                .unwrap_or(0);
            if 1 + worst < best_val {
                best_val = 1 + worst;
                best_v = Some(NodeId(v));
            }
        }
        let v = best_v.expect("territory is non-empty");
        if let Outcome::Caught { cops_used } = game.place_cop(v, &mut robber_strategy) {
            return cops_used;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::treedepth_exact;
    use locert_graph::generators;

    #[test]
    fn cop_number_equals_treedepth() {
        let graphs = [
            generators::path(7),
            generators::path(8),
            generators::cycle(5),
            generators::cycle(8),
            generators::clique(4),
            generators::star(6),
            generators::spider(3, 2),
            generators::complete_kary_tree(2, 2),
        ];
        for g in &graphs {
            assert_eq!(cop_number(g), treedepth_exact(g), "graph {g:?}");
        }
    }

    #[test]
    fn cop_number_random_cross_check() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let g = generators::random_connected(9, 4, &mut rng);
            assert_eq!(cop_number(&g), treedepth_exact(&g));
        }
    }

    #[test]
    fn optimal_cops_capture_best_escaper_within_treedepth() {
        for g in [
            generators::path(7),
            generators::cycle(8),
            generators::star(5),
        ] {
            let td = treedepth_exact(&g);
            let used = play_optimal_cops(&g, NodeId(0), best_escape_robber(&g));
            assert!(used <= td, "used {used} > td {td}");
        }
    }

    #[test]
    fn single_vertex_game() {
        let g = Graph::empty(1);
        assert_eq!(cop_number(&g), 1);
        let used = play_optimal_cops(&g, NodeId(0), best_escape_robber(&g));
        assert_eq!(used, 1);
    }

    #[test]
    fn figure4_strategy_on_cycle8() {
        // Figure 4 replays the 4-cop capture on a single C_8 (the gadget
        // adds the apex for the 5th): opposite vertices, then binary
        // search. td(C_8) = 4.
        let g = generators::cycle(8);
        let mut game = Game::new(&g, NodeId(1));
        let robber = |game: &Game<'_>, announced: NodeId| {
            // A simple evasive robber: stay if safe, else move to the
            // farthest free vertex of the post-placement component.
            let territory = game.territory();
            let after = territory & !(1u64 << announced.0);
            if after & (1u64 << game.robber().0) != 0 {
                game.robber()
            } else {
                components_of(&g, after)
                    .into_iter()
                    .max_by_key(|c| c.count_ones())
                    .map(|c| NodeId(63 - c.leading_zeros() as usize))
                    .unwrap_or(game.robber())
            }
        };
        // Cops at 0 and 4 (opposite), robber confined to a 3-path.
        assert_eq!(game.place_cop(NodeId(0), robber), Outcome::Ongoing);
        assert_eq!(game.place_cop(NodeId(4), robber), Outcome::Ongoing);
        // Robber is in {1,2,3} or {5,6,7}; binary search that path.
        let r = game.robber().0;
        let (mid, ends) = if (1..=3).contains(&r) {
            (2, [1usize, 3])
        } else {
            (6, [5usize, 7])
        };
        assert_eq!(game.place_cop(NodeId(mid), robber), Outcome::Ongoing);
        let r = game.robber().0;
        assert!(ends.contains(&r));
        let out = game.place_cop(NodeId(r), robber);
        assert_eq!(out, Outcome::Caught { cops_used: 4 });
    }
}
