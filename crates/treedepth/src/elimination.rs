//! Validated elimination trees (treedepth models).
//!
//! An [`EliminationTree`] is a rooted tree on the vertex set of a connected
//! graph `G` such that every edge of `G` joins an ancestor–descendant pair
//! — a *model* of `G` in the paper's terminology (Section 3.1). A model is
//! *coherent* when every subtree induces a connected subgraph of `G`;
//! Lemma B.1 shows a coherent model of the same height always exists, and
//! [`EliminationTree::make_coherent`] implements that repair.

use locert_graph::{Graph, NodeId, RootedTree};
use std::error::Error;
use std::fmt;

/// Error produced when a parent array fails to be a model of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The parent array is not a valid rooted tree over `0..n`.
    NotATree,
    /// The array length disagrees with the vertex count.
    WrongSize {
        /// Vertices in the graph.
        graph: usize,
        /// Entries in the parent array.
        array: usize,
    },
    /// A graph edge joins two tree-incomparable vertices.
    IncomparableEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotATree => write!(f, "parent array is not a rooted tree"),
            ModelError::WrongSize { graph, array } => write!(
                f,
                "parent array has {array} entries for a graph on {graph} vertices"
            ),
            ModelError::IncomparableEdge { u, v } => write!(
                f,
                "edge {u}-{v} joins vertices that are not in ancestor-descendant relation"
            ),
        }
    }
}

impl Error for ModelError {}

/// An elimination tree (treedepth model) of a connected graph.
///
/// # Example
///
/// ```
/// use locert_graph::generators;
/// use locert_treedepth::EliminationTree;
///
/// // P_3 = 0 - 1 - 2, eliminated by its middle vertex.
/// let g = generators::path(3);
/// let t = EliminationTree::new(&g, &[Some(1), None, Some(1)])?;
/// assert_eq!(t.height(), 2);
/// # Ok::<(), locert_treedepth::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationTree {
    tree: RootedTree,
}

impl EliminationTree {
    /// Validates `parent` as a model of `g`.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the array is not a rooted tree over the
    /// vertex set or some graph edge joins incomparable vertices.
    pub fn new(g: &Graph, parent: &[Option<usize>]) -> Result<Self, ModelError> {
        if parent.len() != g.num_nodes() {
            return Err(ModelError::WrongSize {
                graph: g.num_nodes(),
                array: parent.len(),
            });
        }
        let tree = RootedTree::from_parent_array(parent).ok_or(ModelError::NotATree)?;
        for (u, v) in g.edges() {
            if !tree.is_ancestor(u, v) && !tree.is_ancestor(v, u) {
                return Err(ModelError::IncomparableEdge { u, v });
            }
        }
        Ok(EliminationTree { tree })
    }

    /// The underlying rooted tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// Height in the vertex-count convention: `1 + max depth`, i.e. the
    /// number of vertices on the longest root-to-leaf path. This is the
    /// quantity treedepth minimizes.
    pub fn height(&self) -> usize {
        self.tree.height() + 1
    }

    /// 0-based depth of `v` in the model (the root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        self.tree.depth(v)
    }

    /// The root of the model.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Ancestors of `v` from `v` up to the root, inclusive.
    pub fn ancestors(&self, v: NodeId) -> Vec<NodeId> {
        self.tree.ancestors(v)
    }

    /// Whether the model is *coherent*: for every vertex `v`, the vertices
    /// of the subtree rooted at `v` induce a connected subgraph of `g`
    /// (equivalently, every child subtree of `v` contains a neighbor of
    /// `v` — an *exit vertex*).
    pub fn is_coherent(&self, g: &Graph) -> bool {
        for v in g.nodes() {
            for &c in self.tree.children(v) {
                if self.exit_vertex(g, v, c).is_none() {
                    return false;
                }
            }
        }
        true
    }

    /// An *exit vertex* of the subtree rooted at `child` with respect to
    /// its parent `parent`: a vertex of the subtree adjacent to `parent`
    /// in `g`. Exists for every child in a coherent model.
    pub fn exit_vertex(&self, g: &Graph, parent: NodeId, child: NodeId) -> Option<NodeId> {
        self.tree
            .subtree(child)
            .into_iter()
            .find(|&x| g.has_edge(x, parent))
    }

    /// Lemma B.1: rebuilds the model into a *coherent* one of the same (or
    /// smaller) height, by repeatedly re-attaching a subtree whose root has
    /// no connection to its parent's subtree onto its lowest connected
    /// ancestor.
    pub fn make_coherent(&self, g: &Graph) -> EliminationTree {
        let n = g.num_nodes();
        let mut parent: Vec<Option<usize>> = (0..n)
            .map(|v| self.tree.parent(NodeId(v)).map(|p| p.0))
            .collect();
        loop {
            let tree = RootedTree::from_parent_array(&parent).expect("rebuild stays a tree");
            // Find a violating (parent v, child w): no vertex of subtree(w)
            // adjacent to v.
            let mut fixed = true;
            'scan: for v in g.nodes() {
                for &w in tree.children(v) {
                    let sub = tree.subtree(w);
                    if sub.iter().any(|&x| g.has_edge(x, v)) {
                        continue;
                    }
                    // Re-attach w to the lowest strict ancestor of v that is
                    // adjacent to some vertex of subtree(w). One exists
                    // because g is connected and all edges from subtree(w)
                    // go to ancestors of w.
                    let mut anc = tree.parent(v);
                    while let Some(a) = anc {
                        if sub.iter().any(|&x| g.has_edge(x, a)) {
                            parent[w.0] = Some(a.0);
                            fixed = false;
                            break 'scan;
                        }
                        anc = tree.parent(a);
                    }
                    unreachable!("connected graph: some ancestor is adjacent to the subtree");
                }
            }
            if fixed {
                let result = EliminationTree::new(g, &parent)
                    .expect("re-attachment preserves the model property");
                debug_assert!(result.height() <= self.height());
                return result;
            }
        }
    }

    /// The parent array of the model.
    pub fn parent_array(&self) -> Vec<Option<usize>> {
        (0..self.tree.num_nodes())
            .map(|v| self.tree.parent(NodeId(v)).map(|p| p.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::generators;

    fn p7_model() -> Vec<Option<usize>> {
        // Figure 1: path 0-1-2-3-4-5-6, eliminated as root 3,
        // children 1 and 5, grandchildren 0, 2, 4, 6.
        vec![Some(1), Some(3), Some(1), None, Some(5), Some(3), Some(5)]
    }

    #[test]
    fn figure1_model_is_valid_height_3() {
        let g = generators::path(7);
        let t = EliminationTree::new(&g, &p7_model()).unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.root(), NodeId(3));
        assert_eq!(t.depth(NodeId(0)), 2);
        assert!(t.is_coherent(&g));
    }

    #[test]
    fn wrong_size_rejected() {
        let g = generators::path(3);
        assert_eq!(
            EliminationTree::new(&g, &[None, Some(0)]),
            Err(ModelError::WrongSize { graph: 3, array: 2 })
        );
    }

    #[test]
    fn non_tree_rejected() {
        let g = generators::path(2);
        assert_eq!(
            EliminationTree::new(&g, &[Some(1), Some(0)]),
            Err(ModelError::NotATree)
        );
    }

    #[test]
    fn incomparable_edge_rejected() {
        // Path 0-1-2 with model root 0, children 1 and 2: edge 1-2 joins
        // siblings.
        let g = generators::path(3);
        let err = EliminationTree::new(&g, &[None, Some(0), Some(0)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::IncomparableEdge {
                u: NodeId(1),
                v: NodeId(2)
            }
        );
    }

    #[test]
    fn clique_chain_model() {
        let g = generators::clique(4);
        // Any chain is a model of a clique.
        let t = EliminationTree::new(&g, &[None, Some(0), Some(1), Some(2)]).unwrap();
        assert_eq!(t.height(), 4);
        assert!(t.is_coherent(&g));
    }

    #[test]
    fn exit_vertices_found() {
        let g = generators::path(7);
        let t = EliminationTree::new(&g, &p7_model()).unwrap();
        // Child 1 of root 3: subtree {1, 0, 2}; vertex 2 is adjacent to 3.
        assert_eq!(t.exit_vertex(&g, NodeId(3), NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.exit_vertex(&g, NodeId(1), NodeId(0)), Some(NodeId(0)));
    }

    #[test]
    fn incoherent_model_detected_and_repaired() {
        // Path 0-1-2-3 with chain model 1 -> 0 -> 2 -> 3 (root 1):
        // vertex 2's parent is 0, but subtree {2, 3} has no neighbor of 0
        // — wait, 2 is not adjacent to 0. Build a genuinely incoherent
        // model: root 1, child 0, grandchild 2, great-grandchild 3.
        // Subtree of 2 = {2, 3}: adjacent to 1 (edge 1-2) but NOT to its
        // parent 0. Incoherent at (0, 2).
        let g = generators::path(4);
        let t = EliminationTree::new(&g, &[Some(1), None, Some(0), Some(2)]).unwrap();
        assert!(!t.is_coherent(&g));
        let c = t.make_coherent(&g);
        assert!(c.is_coherent(&g));
        assert!(c.height() <= t.height());
    }

    #[test]
    fn coherent_subtrees_are_connected() {
        use locert_graph::traversal;
        let g = generators::path(7);
        let t = EliminationTree::new(&g, &p7_model()).unwrap();
        // Remark 1: every subtree of a coherent model induces a connected
        // subgraph.
        for v in g.nodes() {
            let sub = t.tree().subtree(v);
            let (h, _) = g.induced_subgraph(&sub);
            assert!(traversal::is_connected(&h), "subtree of {v}");
        }
    }

    #[test]
    fn parent_array_roundtrip() {
        let g = generators::path(7);
        let pa = p7_model();
        let t = EliminationTree::new(&g, &pa).unwrap();
        assert_eq!(t.parent_array(), pa);
    }
}
