//! Treedepth: elimination trees, exact computation, and the cops-and-robber
//! characterization.
//!
//! Treedepth (Definition 3.1 of the paper, after Nešetřil–Ossona de Mendez)
//! is the minimum *height* of a rooted forest `F` on the vertex set of `G`
//! such that every edge of `G` joins an ancestor–descendant pair in `F`.
//! Throughout this crate we use the **vertex-count convention**: the height
//! of a forest is the maximum number of vertices on a root-to-leaf path, so
//! `td(K_n) = n`, `td(P_n) = ⌈log₂(n+1)⌉`, and a single vertex has
//! treedepth 1. (The paper's figures use 0-based depth; its Section 7
//! numbers — "treedepth 5 versus at least 6" — are in the vertex-count
//! convention, which is what we match.)
//!
//! Contents:
//!
//! - [`elimination`]: validated elimination trees ([`EliminationTree`]),
//!   coherence (Section 3.1) and the Lemma B.1 coherence repair;
//! - [`exact`]: exact treedepth by memoized branch-and-bound over vertex
//!   subsets, plus reconstruction of an optimal elimination tree;
//! - [`bounds`]: closed forms for paths/cycles/cliques/stars and the
//!   explicit binary elimination tree of a path (Figure 1);
//! - [`cops`]: the cops-and-robber game whose cop number equals treedepth
//!   (used by Lemma 7.3), as a playable game plus an optimal solver;
//! - [`heuristic`]: fast elimination-tree upper bounds (DFS, separator
//!   greedy) used by provers at scales where the exact solver is out of
//!   reach.

pub mod bounds;
pub mod cops;
pub mod elimination;
pub mod exact;
pub mod heuristic;

pub use elimination::{EliminationTree, ModelError};
pub use exact::{
    optimal_elimination_tree, optimal_elimination_tree_within, treedepth_exact,
    treedepth_exact_within, BudgetExceeded,
};
