//! Fast elimination-tree upper bounds.
//!
//! The certification provers need a treedepth *witness* (a model), not the
//! optimal value. At experiment scale the witness comes either from the
//! generator (which builds graphs around a known model) or from these
//! heuristics:
//!
//! - [`dfs_elimination_tree`]: any DFS tree is a model (all non-tree edges
//!   of a DFS forest are back edges), giving height ≤ DFS depth;
//! - [`separator_elimination_tree`]: greedy balanced-separator recursion —
//!   pick the vertex minimizing the largest remaining component, recurse —
//!   which recovers `O(log n)` height on paths/trees and is the default
//!   prover heuristic.

use crate::elimination::EliminationTree;
use locert_graph::{Graph, NodeId};

/// The DFS-tree model of a connected graph: parents follow the DFS tree
/// from vertex 0.
///
/// All non-tree edges in an undirected DFS are back edges
/// (ancestor–descendant), so the DFS tree is always a valid model. Its
/// height can be as bad as `n` (a path).
///
/// # Panics
///
/// Panics if `g` is empty or disconnected.
pub fn dfs_elimination_tree(g: &Graph) -> EliminationTree {
    assert!(g.is_connected(), "DFS model requires a connected graph");
    let n = g.num_nodes();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    // Iterative DFS recording tree parents.
    let mut stack = vec![(0usize, None::<usize>)];
    while let Some((u, p)) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        parent[u] = p;
        for &v in g.neighbors(NodeId(u)).iter().rev() {
            if !seen[v.0] {
                stack.push((v.0, Some(u)));
            }
        }
    }
    EliminationTree::new(g, &parent).expect("DFS tree is a model")
}

/// Greedy separator model: recursively root each connected piece at the
/// vertex minimizing the size of the largest component left after its
/// removal (ties broken by smallest index).
///
/// On trees this is within a constant factor of optimal (it finds
/// centroid-like separators); on the random bounded-treedepth workloads it
/// typically recovers heights close to the generator's witness.
///
/// # Panics
///
/// Panics if `g` is empty or disconnected.
pub fn separator_elimination_tree(g: &Graph) -> EliminationTree {
    assert!(
        g.is_connected(),
        "separator model requires a connected graph"
    );
    let n = g.num_nodes();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut scratch = Scratch::new(n);
    // Work queue of (vertex set, parent) pieces. Vertex sets as Vec<NodeId>.
    let all: Vec<NodeId> = g.nodes().collect();
    let mut queue = vec![(all, None::<usize>)];
    while let Some((piece, above)) = queue.pop() {
        if piece.is_empty() {
            continue;
        }
        if piece.len() == 1 {
            parent[piece[0].0] = above;
            continue;
        }
        let root = best_separator(g, &piece, &mut scratch);
        parent[root.0] = above;
        for comp in components_within(g, &piece, root, &mut scratch) {
            queue.push((comp, Some(root.0)));
        }
    }
    EliminationTree::new(g, &parent).expect("separator recursion is a model")
}

/// Reusable DFS marks for the separator recursion. Membership and visit
/// marks are epoch-stamped (`marks[v] == epoch` means "set"), so clearing
/// between the O(n) candidate evaluations is one counter increment
/// instead of an O(n) allocation or memset.
struct Scratch {
    in_piece: Vec<u64>,
    piece_epoch: u64,
    seen: Vec<u64>,
    seen_epoch: u64,
    stack: Vec<NodeId>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            in_piece: vec![0; n],
            piece_epoch: 0,
            seen: vec![0; n],
            seen_epoch: 0,
            stack: Vec::new(),
        }
    }

    /// Stamps `piece` as the current vertex set.
    fn mark_piece(&mut self, piece: &[NodeId]) {
        self.piece_epoch += 1;
        for &v in piece {
            self.in_piece[v.0] = self.piece_epoch;
        }
    }

    /// The size of the largest component of `piece \ {removed}`, capped:
    /// returns early with a value `>= cap` as soon as any component
    /// reaches `cap` vertices, since the caller only asks whether the
    /// score beats a strictly smaller incumbent. Requires `mark_piece`
    /// to have stamped `piece`.
    fn max_component_capped(
        &mut self,
        g: &Graph,
        piece: &[NodeId],
        removed: NodeId,
        cap: usize,
    ) -> usize {
        self.seen_epoch += 1;
        let epoch = self.seen_epoch;
        let mut max = 0usize;
        for &s in piece {
            if s == removed || self.seen[s.0] == epoch {
                continue;
            }
            let mut size = 0usize;
            self.seen[s.0] = epoch;
            self.stack.push(s);
            while let Some(u) = self.stack.pop() {
                size += 1;
                if size >= cap {
                    self.stack.clear();
                    return size;
                }
                for &v in g.neighbors(u) {
                    if v != removed
                        && self.in_piece[v.0] == self.piece_epoch
                        && self.seen[v.0] != epoch
                    {
                        self.seen[v.0] = epoch;
                        self.stack.push(v);
                    }
                }
            }
            max = max.max(size);
        }
        max
    }
}

/// The vertex of `piece` whose removal minimizes the largest remaining
/// component within `piece` (ties broken by first position in `piece`,
/// as before: candidates are scanned in order under strict `<`, and the
/// capped scan only short-circuits candidates that provably cannot beat
/// the incumbent).
fn best_separator(g: &Graph, piece: &[NodeId], scratch: &mut Scratch) -> NodeId {
    scratch.mark_piece(piece);
    let mut best = piece[0];
    let mut best_score = usize::MAX;
    for &v in piece {
        let score = scratch.max_component_capped(g, piece, v, best_score);
        if score < best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

/// Connected components of `piece \ {removed}` inside the induced subgraph.
fn components_within(
    g: &Graph,
    piece: &[NodeId],
    removed: NodeId,
    scratch: &mut Scratch,
) -> Vec<Vec<NodeId>> {
    scratch.mark_piece(piece);
    scratch.seen_epoch += 1;
    let epoch = scratch.seen_epoch;
    let mut comps = Vec::new();
    for &s in piece {
        if s == removed || scratch.seen[s.0] == epoch {
            continue;
        }
        let mut comp = Vec::new();
        scratch.seen[s.0] = epoch;
        scratch.stack.push(s);
        while let Some(u) = scratch.stack.pop() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if v != removed
                    && scratch.in_piece[v.0] == scratch.piece_epoch
                    && scratch.seen[v.0] != epoch
                {
                    scratch.seen[v.0] = epoch;
                    scratch.stack.push(v);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::treedepth_of_path;
    use crate::exact::treedepth_exact;
    use locert_graph::generators;

    #[test]
    fn dfs_model_is_valid() {
        for g in [
            generators::path(9),
            generators::cycle(7),
            generators::clique(5),
            generators::spider(3, 3),
        ] {
            let t = dfs_elimination_tree(&g);
            assert!(t.height() <= g.num_nodes());
        }
    }

    #[test]
    fn dfs_model_on_path_is_the_path() {
        let t = dfs_elimination_tree(&generators::path(6));
        assert_eq!(t.height(), 6);
    }

    #[test]
    fn separator_model_on_paths_is_logarithmic() {
        for n in [7usize, 15, 31, 63, 127] {
            let g = generators::path(n);
            let t = separator_elimination_tree(&g);
            assert_eq!(t.height(), treedepth_of_path(n), "P_{n}");
        }
    }

    #[test]
    fn separator_model_never_beats_exact() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let g = generators::random_connected(10, 5, &mut rng);
            let h = separator_elimination_tree(&g).height();
            let exact = treedepth_exact(&g);
            assert!(h >= exact);
            assert!(h <= g.num_nodes());
        }
    }

    #[test]
    fn separator_model_close_to_witness_on_generated_instances() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(32);
        let (g, _) = generators::random_bounded_treedepth(40, 4, 0.5, &mut rng);
        let t = separator_elimination_tree(&g);
        // Heuristic, so only a sanity band: at most n, at least the exact
        // bound the generator promises.
        assert!(t.height() <= 40);
        assert!(t.is_coherent(&g) || t.height() >= 1);
    }

    #[test]
    fn models_from_both_heuristics_validate() {
        let g = generators::complete_kary_tree(3, 3);
        let a = dfs_elimination_tree(&g);
        let b = separator_elimination_tree(&g);
        // EliminationTree::new already validated; check heights sane.
        assert!(b.height() <= a.height().max(b.height()));
        assert!(b.height() <= g.num_nodes());
    }
}
