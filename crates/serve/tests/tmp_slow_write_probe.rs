use locert_serve::proto::{self, Message, Mode, Request, Response};
use locert_serve::{ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn slow_mid_frame_write_keeps_framing() {
    let mut server = Server::start(&ServeConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut w = stream.try_clone().unwrap();
    let request = Request {
        mode: Mode::Prove,
        scheme: "acyclicity".to_string(),
        n: 4,
        edges: vec![(0, 1), (1, 2), (2, 3)],
        inputs: None,
        certs: None,
    };
    let payload = proto::encode_requests(std::slice::from_ref(&request));
    let mut wire = Vec::new();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    // Send the first half, stall past the server's 200ms read timeout,
    // then send the rest.
    let half = wire.len() / 2;
    w.write_all(&wire[..half]).unwrap();
    w.flush().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    w.write_all(&wire[half..]).unwrap();
    w.flush().unwrap();
    let mut r = std::io::BufReader::new(stream);
    let reply = proto::read_frame(&mut r).unwrap();
    match reply {
        None => panic!("server closed the connection on a slow mid-frame write"),
        Some(bytes) => match proto::decode(&bytes) {
            Ok(Message::Responses(rs)) => {
                assert!(matches!(rs[0], Response::Ok { .. }), "got {rs:?}");
            }
            other => panic!("expected a response batch, got {other:?}"),
        },
    }
    server.shutdown();
}
