//! End-to-end acceptance: a live daemon under the seeded loadgen
//! workload — correct verdicts everywhere, the repeated phase served
//! from the cache, and byte-identical deterministic counters across
//! same-seed runs.

use locert_serve::loadgen::{build_workload, run_loadgen, LoadgenConfig};
use locert_serve::proto::{CacheDisposition, Mode, Response};
use locert_serve::{Client, ServeConfig, Server};

fn fresh_server() -> Server {
    Server::start(&ServeConfig::default()).expect("bind an ephemeral port")
}

fn config_for(server: &Server) -> LoadgenConfig {
    LoadgenConfig {
        addr: server.addr(),
        ..LoadgenConfig::default()
    }
}

#[test]
fn seeded_mixed_workload_all_verdicts_correct_and_cache_hot() {
    let server = fresh_server();
    let config = LoadgenConfig {
        inject_errors: 3,
        ..config_for(&server)
    };
    let report = run_loadgen(&config).expect("workload completes");
    assert_eq!(
        report.requests,
        (config.unique + config.repeats + config.inject_errors) as u64
    );
    assert_eq!(report.mismatches, 0, "every verdict cross-checks locally");
    assert_eq!(
        report.unexpected, 0,
        "no error codes other than the injected ones"
    );
    assert_eq!(
        report.errors.get("unknown-scheme").copied(),
        Some(config.inject_errors as u64),
        "each probe provokes exactly its code"
    );
    assert!(
        report.phase2_hit_rate() >= 0.9,
        "repeated phase must be cache-hot, saw {:.3}",
        report.phase2_hit_rate()
    );
    // Phase 1 certifies only fresh instances: its lookups all miss.
    assert_eq!(report.hits, report.phase2_hits);
    // Daemon-side cache accounting reconciles with the wire: every
    // roundtrip did exactly one lookup, errors did none.
    let (hits, misses, _) = server.cache_stats();
    assert_eq!(hits, report.hits);
    assert_eq!(misses, report.misses);
    assert_eq!(hits + misses, report.ok);
}

#[test]
fn deterministic_counters_replay_byte_identically() {
    // Two same-seed runs against fresh daemons: the deterministic
    // counter lines must match byte for byte (the CI gate in script
    // form), and a different seed must not produce the same workload.
    let run = || {
        let server = fresh_server();
        run_loadgen(&config_for(&server))
            .expect("workload completes")
            .deterministic_lines()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);

    let a = build_workload(&LoadgenConfig::default());
    let b = build_workload(&LoadgenConfig {
        seed: 99,
        ..LoadgenConfig::default()
    });
    assert!(a.iter().zip(&b).any(|(x, y)| x.request != y.request));
}

#[test]
fn prove_then_verify_round_trips_over_the_wire() {
    // Manual two-step: prove returns certificates, a separate verify
    // request carrying them accepts — the daemon's two halves compose.
    let server = fresh_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let items = build_workload(&LoadgenConfig {
        unique: 3,
        repeats: 0,
        distinct: 1,
        ..LoadgenConfig::default()
    });
    for item in items.iter().filter(|i| i.phase == 1) {
        let mut prove = item.request.clone();
        prove.mode = Mode::Prove;
        let responses = client.send_batch(std::slice::from_ref(&prove)).unwrap();
        let certs = match &responses[0] {
            Response::Ok {
                accepted: true,
                certs: Some(certs),
                ..
            } => certs.clone(),
            other => panic!("prove failed: {other:?}"),
        };
        let mut verify = item.request.clone();
        verify.mode = Mode::Verify;
        verify.certs = Some(certs);
        let responses = client.send_batch(std::slice::from_ref(&verify)).unwrap();
        assert!(
            matches!(
                &responses[0],
                Response::Ok {
                    accepted: true,
                    cache: CacheDisposition::Bypass,
                    ..
                }
            ),
            "verify must accept the daemon's own certificates: {:?}",
            responses[0]
        );
    }
}

#[test]
fn repeated_prove_hits_the_cache_and_returns_identical_certificates() {
    let server = fresh_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let items = build_workload(&LoadgenConfig {
        unique: 1,
        repeats: 0,
        distinct: 1,
        ..LoadgenConfig::default()
    });
    let mut prove = items[0].request.clone();
    prove.mode = Mode::Prove;
    let first = client.send_batch(std::slice::from_ref(&prove)).unwrap();
    let second = client.send_batch(std::slice::from_ref(&prove)).unwrap();
    match (&first[0], &second[0]) {
        (
            Response::Ok {
                cache: CacheDisposition::Miss,
                certs: Some(cold),
                ..
            },
            Response::Ok {
                cache: CacheDisposition::Hit,
                certs: Some(warm),
                ..
            },
        ) => assert_eq!(cold, warm, "the cache serves the exact certificates"),
        other => panic!("expected miss then hit, got {other:?}"),
    }
}
