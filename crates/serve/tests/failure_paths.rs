//! Failure-path contract: every malformed or inadmissible input gets a
//! typed wire error — the daemon never panics, never hangs, and keeps
//! serving well-formed traffic afterwards.

use locert_serve::proto::{
    self, encode_requests, ErrorCode, Message, Mode, Request, Response, MAX_FRAME,
};
use locert_serve::{Client, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start(admission_limit: usize) -> Server {
    Server::start(&ServeConfig {
        admission_limit,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn spanning_tree_request(n: usize) -> Request {
    let graph = locert_graph::generators::cycle(n);
    Request {
        mode: Mode::Roundtrip,
        scheme: "spanning-tree".to_string(),
        n: n as u32,
        edges: graph
            .edges()
            .map(|(u, v)| (u.0 as u32, v.0 as u32))
            .collect(),
        inputs: None,
        certs: None,
    }
}

#[test]
fn malformed_payload_gets_a_conn_error_then_close() {
    let server = start(4);
    let mut client = Client::connect(server.addr()).unwrap();
    // A payload too short to carry a header: malformed-frame.
    let reply = client.send_raw(b"xy").unwrap();
    match reply {
        Some(Message::ConnError(code, _)) => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected a conn error, got {other:?}"),
    }
    // The server closed; the next exchange fails rather than hanging.
    assert!(client.send_batch(&[spanning_tree_request(4)]).is_err());

    // Garbage with enough bytes for a header reads as a foreign magic:
    // unsupported-version, and again a closed connection.
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.send_raw(b"definitely not a frame").unwrap();
    match reply {
        Some(Message::ConnError(code, _)) => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected a conn error, got {other:?}"),
    }
    assert!(client.send_batch(&[spanning_tree_request(4)]).is_err());
}

#[test]
fn oversized_frame_length_is_rejected_without_allocation() {
    let server = start(4);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A hostile length prefix alone: the daemon must answer frame-too-large
    // without waiting for (or allocating) the declared 256 MiB + 1.
    stream
        .write_all(&((MAX_FRAME + 1) as u32).to_le_bytes())
        .unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let reply = proto::read_frame(&mut reader)
        .unwrap()
        .expect("a reply frame");
    match proto::decode(&reply) {
        Ok(Message::ConnError(code, _)) => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected frame-too-large, got {other:?}"),
    }
}

#[test]
fn unknown_scheme_is_a_typed_error_and_the_connection_survives() {
    let server = start(4);
    let mut client = Client::connect(server.addr()).unwrap();
    let mut bogus = spanning_tree_request(4);
    bogus.scheme = "no-such-scheme".to_string();
    let responses = client.send_batch(&[bogus]).unwrap();
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrorCode::UnknownScheme,
            ..
        }
    ));
    // Application-level errors keep the connection usable.
    let responses = client.send_batch(&[spanning_tree_request(5)]).unwrap();
    assert!(matches!(&responses[0], Response::Ok { accepted: true, .. }));
}

#[test]
fn oversized_graph_is_rejected_before_any_work() {
    let server = start(4);
    let mut client = Client::connect(server.addr()).unwrap();
    let mut huge = spanning_tree_request(4);
    huge.n = (locert_graph::io::MAX_VERTICES + 1) as u32;
    huge.edges.clear();
    let responses = client.send_batch(&[huge]).unwrap();
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrorCode::GraphTooLarge,
            ..
        }
    ));
}

#[test]
fn bad_graph_and_missing_certificates_are_typed() {
    let server = start(4);
    let mut client = Client::connect(server.addr()).unwrap();
    // An endpoint out of range.
    let mut out_of_range = spanning_tree_request(4);
    out_of_range.edges.push((0, 9));
    // Verify mode without certificates.
    let mut certless = spanning_tree_request(4);
    certless.mode = Mode::Verify;
    let responses = client.send_batch(&[out_of_range, certless]).unwrap();
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrorCode::BadGraph,
            ..
        }
    ));
    assert!(matches!(
        &responses[1],
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
}

#[test]
fn admission_limit_rejects_the_excess_deterministically() {
    let server = start(1);
    let mut client = Client::connect(server.addr()).unwrap();
    // Permits are acquired upfront in request order, so a batch of three
    // same-scheme requests against a limit of one always sees exactly
    // the last two rejected as overloaded.
    let batch = vec![
        spanning_tree_request(4),
        spanning_tree_request(5),
        spanning_tree_request(6),
    ];
    let responses = client.send_batch(&batch).unwrap();
    assert!(matches!(&responses[0], Response::Ok { .. }));
    for response in &responses[1..] {
        assert!(matches!(
            response,
            Response::Err {
                code: ErrorCode::Overloaded,
                ..
            }
        ));
    }
    // Permits released after the batch: the same load now admits again.
    let responses = client.send_batch(&[spanning_tree_request(7)]).unwrap();
    assert!(matches!(&responses[0], Response::Ok { .. }));
}

#[test]
fn drain_acks_and_joins_within_timeout() {
    let mut server = start(4);
    let addr = server.addr();
    let client = Client::connect(addr).unwrap();
    assert!(client.shutdown().unwrap(), "drain must be acknowledged");
    let t0 = std::time::Instant::now();
    server.join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain must finish promptly"
    );
    // After the drain the protocol port no longer answers requests.
    let late = Client::connect(addr).and_then(|mut c| c.send_batch(&[spanning_tree_request(4)]));
    assert!(late.is_err());
}

#[test]
fn encode_requests_and_server_agree_on_the_frame_layout() {
    // A wire-level sanity check independent of the Client helper: bytes
    // out of encode_requests drive the daemon directly.
    let server = start(4);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let payload = encode_requests(&[spanning_tree_request(6)]);
    proto::write_frame(&mut stream, &payload).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let reply = proto::read_frame(&mut reader).unwrap().expect("a response");
    match proto::decode(&reply) {
        Ok(Message::Responses(responses)) => {
            assert!(matches!(&responses[0], Response::Ok { accepted: true, .. }));
        }
        other => panic!("expected responses, got {other:?}"),
    }
}

/// Wire bytes for a one-request batch: 4-byte length prefix + payload.
fn request_wire(request: &Request) -> Vec<u8> {
    let payload = encode_requests(std::slice::from_ref(request));
    let mut wire = Vec::new();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    wire
}

/// Sends `wire` in two writes split at `split`, stalling past the
/// server's 200ms drain-poll read timeout in between, and expects a
/// well-framed `Ok` response (not a reset or desynchronized stream).
fn slow_write_roundtrip(split: usize) {
    let mut server = Server::start(&ServeConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut w = stream.try_clone().unwrap();
    let request = Request {
        mode: Mode::Prove,
        scheme: "acyclicity".to_string(),
        n: 4,
        edges: vec![(0, 1), (1, 2), (2, 3)],
        inputs: None,
        certs: None,
    };
    let wire = request_wire(&request);
    assert!(split < wire.len());
    w.write_all(&wire[..split]).unwrap();
    w.flush().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    w.write_all(&wire[split..]).unwrap();
    w.flush().unwrap();
    let mut r = std::io::BufReader::new(stream);
    let reply = proto::read_frame(&mut r).unwrap();
    match reply {
        None => panic!("server closed the connection on a slow mid-frame write"),
        Some(bytes) => match proto::decode(&bytes) {
            Ok(Message::Responses(rs)) => {
                assert!(matches!(rs[0], Response::Ok { .. }), "got {rs:?}");
            }
            other => panic!("expected a response batch, got {other:?}"),
        },
    }
    server.shutdown();
}

#[test]
fn slow_mid_frame_write_keeps_framing() {
    // Stall halfway through the payload: the prefix and a payload
    // prefix are buffered when the drain-poll timeout fires.
    let request = Request {
        mode: Mode::Prove,
        scheme: "acyclicity".to_string(),
        n: 4,
        edges: vec![(0, 1), (1, 2), (2, 3)],
        inputs: None,
        certs: None,
    };
    let wire = request_wire(&request);
    slow_write_roundtrip(wire.len() / 2);
}

#[test]
fn slow_write_inside_length_prefix_keeps_framing() {
    // Stall after two bytes of the 4-byte length prefix itself.
    slow_write_roundtrip(2);
}
