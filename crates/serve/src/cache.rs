//! Content-addressed certificate cache.
//!
//! The key is *labeled-instance identity*: the [`digest_instance`] of
//! the canonical edge list plus input word, paired with the scheme id.
//! Certificates name vertices, so isomorphic-but-relabeled graphs are
//! distinct entries on purpose; identifier relabeling is invisible
//! (digests never see the id assignment, and the server always proves
//! under contiguous ids).
//!
//! Eviction is least-recently-used over a monotonically stamped access
//! order — deterministic, so counter streams replay byte-identically
//! for a fixed request sequence. Hit/miss/evict counts feed both local
//! fields (for per-run reports) and the global `locert-trace` registry
//! (`serve.cache.{hit,miss,evict}`) for `/metrics`.

use locert_core::bits::Certificate;
use locert_graph::digest::digest_instance;
use locert_graph::Graph;
use std::collections::{BTreeMap, HashMap};

/// Identity of a cached entry: instance digest × scheme id.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`digest_instance`] of the graph and optional input word.
    pub digest: u64,
    /// Stable scheme id from `locert_core::catalogue`.
    pub scheme: String,
}

impl CacheKey {
    /// Keys an instance as the server sees it.
    pub fn of(graph: &Graph, inputs: Option<&[usize]>, scheme: &str) -> CacheKey {
        CacheKey {
            digest: digest_instance(graph, inputs),
            scheme: scheme.to_string(),
        }
    }
}

struct Slot {
    certs: Vec<Certificate>,
    stamp: u64,
}

/// An LRU-bounded certificate store.
pub struct CertCache {
    capacity: usize,
    slots: HashMap<CacheKey, Slot>,
    /// access stamp → key, the eviction order. Stamps are unique, so
    /// the BTreeMap's first entry is always the least recently used.
    order: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CertCache {
    /// An empty cache holding at most `capacity` entries. Capacity 0
    /// disables storage (every lookup is a miss, nothing is kept).
    pub fn new(capacity: usize) -> CertCache {
        CertCache {
            capacity,
            slots: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts exactly
    /// one hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<Certificate>> {
        let stamp = self.tick();
        match self.slots.get_mut(key) {
            Some(slot) => {
                self.order.remove(&slot.stamp);
                slot.stamp = stamp;
                self.order.insert(stamp, key.clone());
                self.hits += 1;
                locert_trace::add("serve.cache.hit", 1);
                Some(slot.certs.clone())
            }
            None => {
                self.misses += 1;
                locert_trace::add("serve.cache.miss", 1);
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently
    /// used one when full. Does not count a hit or miss.
    pub fn put(&mut self, key: CacheKey, certs: Vec<Certificate>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.tick();
        if let Some(old) = self.slots.get(&key) {
            self.order.remove(&old.stamp);
        } else if self.slots.len() >= self.capacity {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.slots.remove(&victim);
                    self.evictions += 1;
                    locert_trace::add("serve.cache.evict", 1);
                }
            }
        }
        self.order.insert(stamp, key.clone());
        self.slots.insert(key, Slot { certs, stamp });
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_core::bits::BitWriter;

    fn cert(pattern: u64) -> Certificate {
        let mut w = BitWriter::new();
        for i in 0..8 {
            w.write_bit(pattern >> i & 1 == 1);
        }
        w.finish()
    }

    fn key(d: u64) -> CacheKey {
        CacheKey {
            digest: d,
            scheme: "spanning-tree".into(),
        }
    }

    #[test]
    fn hit_miss_and_eviction_counting() {
        let mut c = CertCache::new(2);
        assert_eq!(c.get(&key(1)), None);
        c.put(key(1), vec![cert(0xaa)]);
        assert_eq!(c.get(&key(1)), Some(vec![cert(0xaa)]));
        c.put(key(2), vec![cert(0xbb)]);
        // Touch 1 so 2 is the LRU victim when 3 arrives.
        assert!(c.get(&key(1)).is_some());
        c.put(key(3), vec![cert(0xcc)]);
        assert_eq!(c.get(&key(2)), None, "LRU victim evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!((c.hits(), c.misses(), c.evictions()), (4, 2, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_graph_different_scheme_are_distinct_entries() {
        let g = locert_graph::generators::path(4);
        let a = CacheKey::of(&g, None, "spanning-tree");
        let b = CacheKey::of(&g, None, "acyclicity");
        assert_ne!(a, b);
        let mut c = CertCache::new(4);
        c.put(a.clone(), vec![cert(1)]);
        assert_eq!(c.get(&b), None);
        assert!(c.get(&a).is_some());
    }

    #[test]
    fn inputs_distinguish_word_instances() {
        let g = locert_graph::generators::path(3);
        let w0 = [0usize, 0, 0];
        let w1 = [0usize, 1, 0];
        assert_ne!(
            CacheKey::of(&g, Some(&w0), "word-no-11"),
            CacheKey::of(&g, Some(&w1), "word-no-11")
        );
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = CertCache::new(0);
        c.put(key(1), vec![cert(1)]);
        assert_eq!(c.get(&key(1)), None);
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn refresh_does_not_grow_or_evict() {
        let mut c = CertCache::new(2);
        c.put(key(1), vec![cert(1)]);
        c.put(key(1), vec![cert(2)]);
        c.put(key(2), vec![cert(3)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(
            c.get(&key(1)),
            Some(vec![cert(2)]),
            "refresh replaced value"
        );
    }
}
