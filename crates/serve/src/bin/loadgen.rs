//! loadgen — seeded load generator for a live locert-serve daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--seed N] [--unique N] [--distinct N]
//!         [--repeats N] [--concurrency N] [--qps N] [--schemes a,b,c]
//!         [--inject-errors N] [--mode prove|verify|roundtrip]
//!         [--min-hit-rate F] [--out DIR] [--shutdown]
//! ```
//!
//! Replays the two-phase seeded workload (fresh instances, then a
//! repeated pool exercising the certificate cache), cross-checks every
//! verdict locally, and prints one summary line per phase. With
//! `--out DIR` writes `loadgen-deterministic.txt` (the byte-comparable
//! counter lines) and `loadgen-metrics.json` (a `locert-trace/v2`
//! document splitting counts from wall-clock timings). Exits 0 when
//! every gate holds — zero unexpected errors, zero verdict mismatches,
//! and the phase-2 hit rate at or above `--min-hit-rate` — 1 on a gate
//! violation, 2 on usage errors.

use locert_serve::loadgen::{run_loadgen, LoadgenConfig, DEFAULT_MIX};
use locert_serve::Mode;
use locert_trace::json::Value;
use std::process::ExitCode;

const USAGE: &str = "\
usage: loadgen --addr HOST:PORT [--seed N] [--unique N] [--distinct N]
               [--repeats N] [--concurrency N] [--qps N] [--schemes a,b,c]
               [--inject-errors N] [--mode prove|verify|roundtrip]
               [--min-hit-rate F] [--out DIR] [--shutdown]

Seeded two-phase workload against a live locert-serve daemon, with
local verdict cross-checks and cache-hit accounting.

  --addr HOST:PORT   daemon protocol address (required)
  --seed N           workload seed (default 1)
  --unique N         phase-1 fresh-instance requests (default 30)
  --distinct N       phase-2 distinct instances (default 5)
  --repeats N        phase-2 total requests (default 60)
  --concurrency N    worker connections; 1 = deterministic (default 1)
  --qps N            pace across workers; 0 = unpaced (default 0)
  --schemes a,b,c    scheme mix (default spanning-tree,acyclicity,
                     mso-perfect-matching)
  --inject-errors N  unknown-scheme probes expecting that exact code
  --mode M           prove | verify-less roundtrip (default roundtrip)
  --min-hit-rate F   phase-2 hit-rate gate (default 0.9; 0 disables)
  --out DIR          write loadgen-deterministic.txt and
                     loadgen-metrics.json
  --shutdown         send the drain opcode after the workload";

fn fail(msg: &str) -> ExitCode {
    eprintln!("loadgen: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    config: LoadgenConfig,
    addr: Option<String>,
    min_hit_rate: f64,
    out: Option<std::path::PathBuf>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: LoadgenConfig::default(),
        addr: None,
        min_hit_rate: 0.9,
        out: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad {name} value {v:?}"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(it.next().ok_or("--addr needs a value")?),
            "--seed" => args.config.seed = num("--seed", &mut it)? as u64,
            "--unique" => args.config.unique = num("--unique", &mut it)?,
            "--distinct" => {
                args.config.distinct = num("--distinct", &mut it)?;
                if args.config.distinct == 0 {
                    return Err("--distinct must be at least 1".into());
                }
            }
            "--repeats" => args.config.repeats = num("--repeats", &mut it)?,
            "--concurrency" => {
                args.config.concurrency = num("--concurrency", &mut it)?;
                if args.config.concurrency == 0 {
                    return Err("--concurrency must be at least 1".into());
                }
            }
            "--qps" => args.config.qps = num("--qps", &mut it)? as u64,
            "--inject-errors" => args.config.inject_errors = num("--inject-errors", &mut it)?,
            "--schemes" => {
                let v = it.next().ok_or("--schemes needs a value")?;
                args.config.schemes = v.split(',').map(|s| s.trim().to_string()).collect();
                if args.config.schemes.iter().any(|s| s.is_empty()) {
                    return Err(format!("empty scheme id in {v:?}"));
                }
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                args.config.mode = match v.as_str() {
                    "prove" => Mode::Prove,
                    "verify" => Mode::Verify,
                    "roundtrip" => Mode::Roundtrip,
                    _ => return Err(format!("bad mode {v:?}")),
                };
                if args.config.mode == Mode::Verify {
                    return Err("verify mode needs certificates; use roundtrip".into());
                }
            }
            "--min-hit-rate" => {
                let v = it.next().ok_or("--min-hit-rate needs a value")?;
                args.min_hit_rate = v.parse().map_err(|_| format!("bad rate {v:?}"))?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a directory")?.into()),
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Serializes observed latency quantiles as a `locert-serve/v1`
/// document — the schema `bench-diff` compares for the S5 regression
/// gate (per-name `p50_ns`/`p99_ns`, lower is better).
fn latency_json(report: &locert_serve::loadgen::Report) -> String {
    let entry = |name: &str, phase: Option<u8>| {
        Value::obj([
            ("name".to_string(), Value::from(name)),
            (
                "p50_ns".to_string(),
                Value::from(report.latency_quantile_ns(phase, 0.5).unwrap_or(0)),
            ),
            (
                "p99_ns".to_string(),
                Value::from(report.latency_quantile_ns(phase, 0.99).unwrap_or(0)),
            ),
        ])
    };
    let doc = Value::obj([
        ("schema".to_string(), Value::from("locert-serve/v1")),
        (
            "latency".to_string(),
            Value::Arr(vec![
                entry("request", None),
                entry("request.cold", Some(1)),
                entry("request.repeated", Some(2)),
            ]),
        ),
    ]);
    format!("{doc}\n")
}

/// Serializes client telemetry as a `locert-trace/v2` document whose
/// deterministic section excludes every wall-clock quantity.
fn metrics_json(report: &locert_serve::loadgen::Report) -> String {
    let snap = locert_trace::snapshot();
    let (deterministic, timing) = locert_trace::export::split_deterministic(&snap);
    let doc = Value::obj([
        ("schema".to_string(), Value::from("locert-trace/v2")),
        (
            "experiments".to_string(),
            Value::Arr(vec![Value::obj([
                ("id".to_string(), Value::from("loadgen")),
                (
                    "telemetry".to_string(),
                    locert_trace::export::snapshot_to_json(&deterministic),
                ),
            ])]),
        ),
        (
            "timings".to_string(),
            Value::Arr(vec![Value::obj([
                ("id".to_string(), Value::from("loadgen")),
                ("wall_s".to_string(), Value::Num(report.wall_s)),
                (
                    "telemetry".to_string(),
                    locert_trace::export::snapshot_to_json(&timing),
                ),
            ])]),
        ),
    ]);
    format!("{doc}\n")
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(args) => args,
        Err(msg) => return fail(&msg),
    };
    let Some(addr) = args.addr.take() else {
        return fail("--addr is required");
    };
    let addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr)
        .ok()
        .and_then(|mut addrs| addrs.next())
    {
        Some(addr) => addr,
        None => return fail(&format!("cannot resolve {addr:?}")),
    };
    args.config.addr = addr;
    if args.config.schemes.is_empty() {
        args.config.schemes = DEFAULT_MIX.iter().map(|s| s.to_string()).collect();
    }
    locert_trace::enable();
    let report = match run_loadgen(&args.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: transport failure: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "loadgen: {} requests in {:.3}s ({:.0} req/s), ok={} hit={} miss={} bypass={}",
        report.requests,
        report.wall_s,
        report.requests as f64 / report.wall_s.max(1e-9),
        report.ok,
        report.hits,
        report.misses,
        report.bypass,
    );
    println!(
        "loadgen: phase2 hit rate {:.3} ({}/{}), mismatches={}, unexpected={}",
        report.phase2_hit_rate(),
        report.phase2_hits,
        report.phase2_requests,
        report.mismatches,
        report.unexpected,
    );
    println!(
        "loadgen: latency p50={}ns p99={}ns",
        report.latency_quantile_ns(None, 0.5).unwrap_or(0),
        report.latency_quantile_ns(None, 0.99).unwrap_or(0),
    );
    for (code, count) in &report.errors {
        println!("loadgen: error {code}: {count}");
    }
    if args.shutdown {
        match locert_serve::Client::connect(addr).and_then(locert_serve::Client::shutdown) {
            Ok(true) => println!("loadgen: daemon acknowledged drain"),
            Ok(false) => eprintln!("loadgen: daemon closed without a drain ack"),
            Err(e) => eprintln!("loadgen: drain request failed: {e}"),
        }
    }
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                std::fs::write(
                    dir.join("loadgen-deterministic.txt"),
                    report.deterministic_lines(),
                )
                .map_err(|e| e.to_string())?;
                std::fs::write(dir.join("loadgen-metrics.json"), metrics_json(&report))
                    .map_err(|e| e.to_string())?;
                std::fs::write(dir.join("loadgen-latency.json"), latency_json(&report))
                    .map_err(|e| e.to_string())
            })
        {
            eprintln!("loadgen: cannot write artifacts to {}: {e}", dir.display());
            return ExitCode::from(1);
        }
    }
    let hit_rate_ok = args.min_hit_rate <= 0.0 || report.phase2_hit_rate() >= args.min_hit_rate;
    if report.mismatches == 0 && report.unexpected == 0 && hit_rate_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("loadgen: gate violated");
        ExitCode::from(1)
    }
}
