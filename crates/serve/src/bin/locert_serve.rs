//! locert-serve — the certification daemon CLI.
//!
//! ```text
//! locert-serve [--addr HOST:PORT] [--metrics-addr HOST:PORT]
//!              [--cache-capacity N] [--admission-limit N]
//!              [--threads N] [--journal PATH]
//! ```
//!
//! Binds the binary protocol plane (and, when asked, the HTTP metrics
//! plane), prints one `ready` line per plane so scripts can scrape the
//! ephemeral ports, then blocks until a client sends the shutdown
//! opcode — the drain path: in-flight batches finish, late requests get
//! `shutting-down`, every thread joins, and with `--journal` the event
//! journal is flushed to JSONL before exit. Exits 0 on a clean drain,
//! 2 on usage errors.

use locert_serve::{ServeConfig, Server};
use locert_trace::journal;
use std::process::ExitCode;

const USAGE: &str = "\
usage: locert-serve [--addr HOST:PORT] [--metrics-addr HOST:PORT]
                    [--cache-capacity N] [--admission-limit N]
                    [--threads N] [--journal PATH]

Serves prove/verify/roundtrip requests for the shared scheme catalogue
over the locert-serve binary protocol, with a content-addressed
certificate cache and per-scheme admission limits.

  --addr HOST:PORT     protocol bind address (default 127.0.0.1:0)
  --metrics-addr HOST:PORT
                       also serve HTTP /metrics and /healthz here
  --cache-capacity N   certificate-cache entries (default 256)
  --admission-limit N  in-flight requests per scheme (default 64)
  --threads N          locert-par worker threads (also LOCERT_THREADS)
  --journal PATH       write the event journal as JSONL on shutdown";

fn fail(msg: &str) -> ExitCode {
    eprintln!("locert-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    config: ServeConfig,
    journal: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServeConfig::default(),
        journal: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.config.addr = it.next().ok_or("--addr needs a value")?,
            "--metrics-addr" => {
                args.config.metrics_addr = Some(it.next().ok_or("--metrics-addr needs a value")?)
            }
            "--cache-capacity" => {
                let v = it.next().ok_or("--cache-capacity needs a value")?;
                args.config.cache_capacity =
                    v.parse().map_err(|_| format!("bad capacity {v:?}"))?;
            }
            "--admission-limit" => {
                let v = it.next().ok_or("--admission-limit needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad limit {v:?}"))?;
                if n == 0 {
                    return Err("--admission-limit must be at least 1".into());
                }
                args.config.admission_limit = n;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                if !locert_par::configure_threads(n) {
                    return Err("--threads must come before any parallel work".into());
                }
            }
            "--journal" => args.journal = Some(it.next().ok_or("--journal needs a path")?.into()),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => return fail(&msg),
    };
    locert_trace::enable();
    journal::enable();
    let mut server = match Server::start(&args.config) {
        Ok(server) => server,
        Err(e) => return fail(&format!("cannot start: {e}")),
    };
    println!("ready addr={}", server.addr());
    if let Some(addr) = server.metrics_addr() {
        println!("ready metrics={addr}");
    }
    server.join();
    let (hits, misses, evictions) = server.cache_stats();
    eprintln!("locert-serve: drained (cache hits={hits} misses={misses} evictions={evictions})");
    if let Some(path) = &args.journal {
        let snap = journal::snapshot();
        let write = std::fs::File::create(path)
            .map_err(|e| e.to_string())
            .and_then(|mut f| journal::write_jsonl(&snap, &mut f).map_err(|e| e.to_string()));
        if let Err(e) = write {
            eprintln!("locert-serve: cannot write journal {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
