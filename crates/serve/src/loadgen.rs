//! Seeded load generation against a live daemon.
//!
//! A workload is a pure function of the seed and knobs — two same-seed
//! runs send byte-identical request sequences, so at concurrency 1 the
//! client-observed request/hit/miss counters replay byte-identically
//! (the determinism gate CI byte-compares). Two phases:
//!
//! 1. **unique** — every request certifies a fresh instance (strictly
//!    growing sizes per scheme), so every prove consults the cache and
//!    misses: the cold-path baseline.
//! 2. **repeated** — `distinct` instances cycled `repeats` times, so
//!    after `distinct` compulsory misses everything hits: the expected
//!    hit rate is `(repeats - distinct) / repeats`, and the observed
//!    rate is the acceptance gate.
//!
//! Every roundtrip verdict is cross-checked against a direct local
//! `run_verification` over the certificates the daemon returned — the
//! wire, the cache, and the pool must not change a single verdict.
//! `--inject-errors` interleaves unknown-scheme probes that must come
//! back with exactly the `unknown-scheme` code; anything else counts
//! as unexpected. Client-side telemetry lands in the global trace
//! registry (`loadgen.*`; latency under `loadgen.request.ns` so it
//! stays out of the deterministic section).

use crate::client::Client;
use crate::proto::{CacheDisposition, ErrorCode, Mode, Request, Response};
use locert_core::catalogue;
use locert_core::framework::{run_verification, Assignment, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_graph::{Graph, IdAssignment};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The default scheme mix: three cheap, structurally distinct families.
pub const DEFAULT_MIX: [&str; 3] = ["spanning-tree", "acyclicity", "mso-perfect-matching"];

/// Workload knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Workload seed.
    pub seed: u64,
    /// Phase-1 request count (fresh instance each).
    pub unique: usize,
    /// Phase-2 distinct instances.
    pub distinct: usize,
    /// Phase-2 total requests (cycling the distinct instances).
    pub repeats: usize,
    /// Worker connections. 1 (the default) is the deterministic mode.
    pub concurrency: usize,
    /// Target request rate across all workers; 0 = unpaced.
    pub qps: u64,
    /// Scheme mix, cycled per request.
    pub schemes: Vec<String>,
    /// Unknown-scheme probes appended after the phases.
    pub inject_errors: usize,
    /// Request mode for both phases.
    pub mode: Mode,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            seed: 1,
            unique: 30,
            distinct: 5,
            repeats: 60,
            concurrency: 1,
            qps: 0,
            schemes: DEFAULT_MIX.iter().map(|s| s.to_string()).collect(),
            inject_errors: 0,
            mode: Mode::Roundtrip,
        }
    }
}

/// One planned request with its local ground truth.
pub struct WorkItem {
    /// Which phase planned it (1 = unique, 2 = repeated, 0 = injected).
    pub phase: u8,
    /// The wire request.
    pub request: Request,
    /// The instance as the server will reconstruct it.
    pub graph: Graph,
    /// Input word, when the scheme reads one.
    pub inputs: Option<Vec<usize>>,
    /// The typed error this probe must provoke (`None` = must succeed).
    pub expect_error: Option<ErrorCode>,
}

fn to_request(mode: Mode, scheme: &str, graph: &Graph, inputs: &Option<Vec<usize>>) -> Request {
    Request {
        mode,
        scheme: scheme.to_string(),
        n: graph.num_nodes() as u32,
        edges: graph
            .edges()
            .map(|(u, v)| (u.0 as u32, v.0 as u32))
            .collect(),
        inputs: inputs
            .as_ref()
            .map(|word| word.iter().map(|&x| x as u32).collect()),
        certs: None,
    }
}

/// Plans the full request sequence for `config` — pure in the seed.
pub fn build_workload(config: &LoadgenConfig) -> Vec<WorkItem> {
    assert!(!config.schemes.is_empty(), "scheme mix must be non-empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut items = Vec::new();
    // Phase 1: per-scheme sizes grow in steps of 2 (the step survives
    // parity clamps like perfect matching's), so instances never repeat
    // and every cache consult is a compulsory miss.
    let mut next_size: BTreeMap<&str, usize> = BTreeMap::new();
    for i in 0..config.unique {
        let scheme = &config.schemes[i % config.schemes.len()];
        let entry = catalogue::by_id(scheme)
            .unwrap_or_else(|| panic!("unknown scheme {scheme:?} in the mix"));
        let size = next_size.entry(entry.id).or_insert(8);
        let n = *size + 2 * rng.random_range(0..2usize);
        *size = n + 2;
        let (graph, inputs) = (entry.family)(n);
        items.push(WorkItem {
            phase: 1,
            request: to_request(config.mode, scheme, &graph, &inputs),
            graph,
            inputs,
            expect_error: None,
        });
    }
    // Phase 2: `distinct` instances at sizes disjoint from phase 1
    // (offset past its high-water mark), cycled `repeats` times.
    let floor = 2 + next_size.values().copied().max().unwrap_or(8);
    let pool: Vec<_> = (0..config.distinct)
        .map(|k| {
            let scheme = &config.schemes[k % config.schemes.len()];
            let entry = catalogue::by_id(scheme).expect("mix validated above");
            let (graph, inputs) = (entry.family)(floor + 2 * k);
            (scheme.clone(), graph, inputs)
        })
        .collect();
    for j in 0..config.repeats {
        let (scheme, graph, inputs) = &pool[j % pool.len()];
        items.push(WorkItem {
            phase: 2,
            request: to_request(config.mode, scheme, graph, inputs),
            graph: graph.clone(),
            inputs: inputs.clone(),
            expect_error: None,
        });
    }
    for _ in 0..config.inject_errors {
        let graph = locert_graph::generators::path(4);
        items.push(WorkItem {
            phase: 0,
            request: to_request(config.mode, "no-such-scheme", &graph, &None),
            graph,
            inputs: None,
            expect_error: Some(ErrorCode::UnknownScheme),
        });
    }
    items
}

/// What the run observed; counts are deterministic at concurrency 1,
/// wall-clock fields never are.
#[derive(Debug, Default)]
pub struct Report {
    /// Requests sent (all phases, including injected probes).
    pub requests: u64,
    /// Ok responses.
    pub ok: u64,
    /// Cache dispositions across ok responses.
    pub hits: u64,
    /// Cache misses across ok responses.
    pub misses: u64,
    /// Cache bypasses across ok responses (verify mode).
    pub bypass: u64,
    /// Typed errors by code.
    pub errors: BTreeMap<String, u64>,
    /// Errors that no probe asked for, plus probes answered wrongly.
    pub unexpected: u64,
    /// Roundtrip verdicts disagreeing with local `run_verification`.
    pub mismatches: u64,
    /// Phase-2 requests and hits, for the hit-rate gate.
    pub phase2_requests: u64,
    /// Phase-2 cache hits.
    pub phase2_hits: u64,
    /// Wall-clock seconds for the whole run (never deterministic).
    pub wall_s: f64,
    /// Per-request round-trip latencies tagged with the item's phase
    /// (never deterministic; excluded from [`deterministic_lines`]).
    ///
    /// [`deterministic_lines`]: Report::deterministic_lines
    pub latency_ns: Vec<(u8, u64)>,
}

impl Report {
    /// The `q`-quantile (0.0–1.0, nearest-rank) of observed latencies,
    /// optionally restricted to one phase. `None` when no samples match.
    pub fn latency_quantile_ns(&self, phase: Option<u8>, q: f64) -> Option<u64> {
        let mut samples: Vec<u64> = self
            .latency_ns
            .iter()
            .filter(|(p, _)| phase.is_none_or(|want| want == *p))
            .map(|&(_, ns)| ns)
            .collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        Some(samples[rank - 1])
    }

    /// Observed phase-2 hit rate.
    pub fn phase2_hit_rate(&self) -> f64 {
        if self.phase2_requests == 0 {
            return 0.0;
        }
        self.phase2_hits as f64 / self.phase2_requests as f64
    }

    /// The deterministic half as stable key=value lines — two same-seed
    /// concurrency-1 runs must produce byte-identical strings (CI
    /// byte-compares the artifact).
    pub fn deterministic_lines(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("requests={}\n", self.requests));
        out.push_str(&format!("ok={}\n", self.ok));
        out.push_str(&format!("cache.hit={}\n", self.hits));
        out.push_str(&format!("cache.miss={}\n", self.misses));
        out.push_str(&format!("cache.bypass={}\n", self.bypass));
        for (code, count) in &self.errors {
            out.push_str(&format!("error.{code}={count}\n"));
        }
        out.push_str(&format!("unexpected={}\n", self.unexpected));
        out.push_str(&format!("mismatches={}\n", self.mismatches));
        out.push_str(&format!("phase2.requests={}\n", self.phase2_requests));
        out.push_str(&format!("phase2.hits={}\n", self.phase2_hits));
        out
    }
}

/// Checks one roundtrip/verify response against local ground truth.
/// Returns false on any disagreement.
fn cross_check(
    item: &WorkItem,
    accepted: bool,
    certs: Option<&[locert_core::Certificate]>,
) -> bool {
    let Some(certs) = certs else {
        // Verify mode returns no certificates; the verdict itself is
        // checked against the expectation that honest instances accept.
        return accepted;
    };
    if certs.len() != item.graph.num_nodes() {
        return false;
    }
    let ids = IdAssignment::contiguous(item.graph.num_nodes());
    let instance = match &item.inputs {
        Some(word) => Instance::with_inputs(&item.graph, &ids, word),
        None => Instance::new(&item.graph, &ids),
    };
    let scheme = catalogue::build(
        &item.request.scheme,
        id_bits_for(&instance),
        item.graph.num_nodes(),
    )
    .expect("workload schemes are catalogued");
    let assignment = Assignment::new(certs.to_vec());
    let outcome = run_verification(scheme.as_ref(), &instance, &assignment);
    outcome.accepted() == accepted && accepted
}

fn tally(report: &mut Report, item: &WorkItem, response: &Response) {
    report.requests += 1;
    locert_trace::add("loadgen.requests", 1);
    match response {
        Response::Ok {
            accepted,
            cache,
            certs,
            ..
        } => {
            report.ok += 1;
            match cache {
                CacheDisposition::Hit => report.hits += 1,
                CacheDisposition::Miss => report.misses += 1,
                CacheDisposition::Bypass => report.bypass += 1,
            }
            locert_trace::add(&format!("loadgen.cache.{}", cache.code()), 1);
            if item.phase == 2 {
                report.phase2_requests += 1;
                if *cache == CacheDisposition::Hit {
                    report.phase2_hits += 1;
                }
            }
            if item.expect_error.is_some() {
                report.unexpected += 1; // the probe should have failed
            } else if !cross_check(item, *accepted, certs.as_deref()) {
                report.mismatches += 1;
                locert_trace::add("loadgen.mismatch", 1);
            }
        }
        Response::Err { code, .. } => {
            *report.errors.entry(code.code().to_string()).or_insert(0) += 1;
            locert_trace::add(&format!("loadgen.error.{}", code.code()), 1);
            if item.expect_error != Some(*code) {
                report.unexpected += 1;
            }
        }
    }
}

/// Runs the workload. Workers share the item list round-robin by index;
/// at concurrency 1 the run is fully sequential and deterministic.
///
/// # Errors
///
/// Transport errors from any worker connection.
pub fn run_loadgen(config: &LoadgenConfig) -> std::io::Result<Report> {
    let items = build_workload(config);
    let workers = config.concurrency.max(1);
    let pace = match (1_000_000_000 * workers as u64).checked_div(config.qps) {
        Some(gap) => Duration::from_nanos(gap),
        None => Duration::ZERO,
    };
    let t0 = Instant::now();
    let report = Mutex::new(Report::default());
    let failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let items = &items;
            let report = &report;
            let failure = &failure;
            scope.spawn(move || {
                let run = || -> std::io::Result<()> {
                    let mut client = Client::connect(config.addr)?;
                    for item in items.iter().skip(w).step_by(workers) {
                        let sent = Instant::now();
                        let responses = client.send_batch(std::slice::from_ref(&item.request))?;
                        let elapsed_ns = sent.elapsed().as_nanos() as u64;
                        locert_trace::record("loadgen.request.ns", elapsed_ns);
                        let mut report = report.lock().expect("report lock poisoned");
                        tally(&mut report, item, &responses[0]);
                        report.latency_ns.push((item.phase, elapsed_ns));
                        drop(report);
                        if !pace.is_zero() {
                            std::thread::sleep(pace.saturating_sub(sent.elapsed()));
                        }
                    }
                    Ok(())
                };
                if let Err(e) = run() {
                    failure
                        .lock()
                        .expect("failure lock poisoned")
                        .get_or_insert(e);
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().expect("failure lock poisoned") {
        return Err(e);
    }
    let mut report = report.into_inner().expect("report lock poisoned");
    report.wall_s = t0.elapsed().as_secs_f64();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_pure_in_the_seed() {
        let config = LoadgenConfig {
            inject_errors: 2,
            ..LoadgenConfig::default()
        };
        let a = build_workload(&config);
        let b = build_workload(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.phase, y.phase);
        }
        let other = build_workload(&LoadgenConfig {
            seed: 2,
            ..config.clone()
        });
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.request != y.request),
            "different seeds must vary the workload"
        );
    }

    #[test]
    fn unique_phase_never_repeats_an_instance() {
        let config = LoadgenConfig::default();
        let items = build_workload(&config);
        let mut seen = std::collections::HashSet::new();
        for item in items.iter().filter(|i| i.phase == 1) {
            let key = (
                item.request.scheme.clone(),
                locert_graph::digest::digest_instance(&item.graph, item.inputs.as_deref()),
            );
            assert!(seen.insert(key), "phase-1 instance repeated");
        }
    }

    #[test]
    fn repeated_phase_cycles_exactly_distinct_instances() {
        let config = LoadgenConfig::default();
        let items = build_workload(&config);
        let phase1_max = items
            .iter()
            .filter(|i| i.phase == 1)
            .map(|i| i.graph.num_nodes())
            .max()
            .unwrap();
        let mut keys = std::collections::HashSet::new();
        let mut count = 0;
        for item in items.iter().filter(|i| i.phase == 2) {
            count += 1;
            assert!(
                item.graph.num_nodes() > phase1_max,
                "phase-2 sizes must be disjoint from phase 1"
            );
            keys.insert((
                item.request.scheme.clone(),
                locert_graph::digest::digest_instance(&item.graph, item.inputs.as_deref()),
            ));
        }
        assert_eq!(count, config.repeats);
        assert_eq!(keys.len(), config.distinct);
    }

    #[test]
    fn injected_probes_expect_unknown_scheme() {
        let config = LoadgenConfig {
            inject_errors: 3,
            ..LoadgenConfig::default()
        };
        let items = build_workload(&config);
        let probes: Vec<_> = items.iter().filter(|i| i.phase == 0).collect();
        assert_eq!(probes.len(), 3);
        assert!(probes
            .iter()
            .all(|p| p.expect_error == Some(ErrorCode::UnknownScheme)));
    }

    #[test]
    fn latency_quantiles_use_nearest_rank() {
        let mut r = Report::default();
        assert_eq!(r.latency_quantile_ns(None, 0.5), None);
        r.latency_ns = (1..=100u64).map(|ns| (1, ns)).collect();
        assert_eq!(r.latency_quantile_ns(None, 0.5), Some(50));
        assert_eq!(r.latency_quantile_ns(None, 0.99), Some(99));
        assert_eq!(r.latency_quantile_ns(None, 1.0), Some(100));
        r.latency_ns.push((2, 1_000_000));
        assert_eq!(r.latency_quantile_ns(Some(2), 0.5), Some(1_000_000));
        assert_eq!(r.latency_quantile_ns(Some(1), 1.0), Some(100));
    }

    #[test]
    fn deterministic_lines_are_stable_and_exclude_wall_clock() {
        let mut r = Report {
            requests: 5,
            ok: 4,
            hits: 2,
            misses: 2,
            wall_s: 1.23,
            ..Report::default()
        };
        r.errors.insert("unknown-scheme".into(), 1);
        let lines = r.deterministic_lines();
        assert!(lines.contains("requests=5\n"));
        assert!(lines.contains("error.unknown-scheme=1\n"));
        assert!(!lines.contains("1.23"), "wall clock must stay out");
        r.wall_s = 9.87;
        assert_eq!(lines, r.deterministic_lines());
    }
}
