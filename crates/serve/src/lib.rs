//! locert-serve: certification as a service.
//!
//! A std-only daemon that accepts `(graph, scheme id, mode)` requests
//! over a length-prefixed binary protocol ([`proto`]), runs the
//! catalogued provers and verifiers on the shared `locert-par` pool,
//! and answers with verdicts and certificates. Proving is backed by a
//! content-addressed certificate cache ([`cache`]) keyed on the
//! instance digest from `locert_graph::digest` — the same labeled
//! instance certifies once and is served from memory afterwards.
//! Per-scheme admission limits ([`admit`]) bound in-flight work with
//! typed `overloaded` rejections instead of queues, and shutdown drains:
//! in-flight batches finish, late arrivals get `shutting-down`, then
//! every thread joins ([`server`]).
//!
//! The companion pieces are a blocking protocol [`client`] and a seeded
//! [`loadgen`] that replays deterministic mixed workloads against a live
//! daemon, cross-checking every verdict against a direct local
//! `run_verification`. An optional HTTP admin plane (the `locert-scope`
//! exporter) serves `/metrics` and `/healthz` from the global trace
//! registry, where the daemon counts `serve.requests`,
//! `serve.cache.{hit,miss,evict}`, and `serve.rejected.<code>`.
//!
//! Wire-format and policy details live in `DESIGN.md` §12.

pub mod admit;
pub mod cache;
pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::Client;
pub use proto::{CacheDisposition, ErrorCode, Mode, Request, Response};
pub use server::{ServeConfig, Server};
