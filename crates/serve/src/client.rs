//! A blocking client for the `locert-serve` wire protocol.
//!
//! One [`Client`] wraps one TCP connection: batches go out as single
//! frames, responses come back as single frames, strictly in order.
//! [`Client::send_raw`] ships an arbitrary payload — the failure-path
//! tests use it to probe the daemon with malformed frames.

use crate::proto::{self, Message, Request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn protocol_error(what: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, what)
    }

    fn read_message(&mut self) -> io::Result<Message> {
        let payload = proto::read_frame(&mut self.reader)?
            .ok_or_else(|| Self::protocol_error("server closed mid-exchange".to_string()))?;
        proto::decode(&payload).map_err(|(code, msg)| {
            Self::protocol_error(format!("bad reply ({}): {msg}", code.code()))
        })
    }

    /// Sends one request batch and reads the paired response batch.
    ///
    /// # Errors
    ///
    /// Transport errors, a connection-level error frame from the
    /// server, or a response count that does not match the batch.
    pub fn send_batch(&mut self, requests: &[Request]) -> io::Result<Vec<Response>> {
        proto::write_frame(&mut self.writer, &proto::encode_requests(requests))?;
        match self.read_message()? {
            Message::Responses(responses) if responses.len() == requests.len() => Ok(responses),
            Message::Responses(responses) => Err(Self::protocol_error(format!(
                "{} responses for {} requests",
                responses.len(),
                requests.len()
            ))),
            Message::ConnError(code, msg) => Err(Self::protocol_error(format!(
                "connection error {}: {msg}",
                code.code()
            ))),
            other => Err(Self::protocol_error(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends a raw payload and reads whatever comes back (`None` when
    /// the server just closes). For protocol probing.
    ///
    /// # Errors
    ///
    /// Transport errors, or a reply this client cannot decode.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<Option<Message>> {
        proto::write_frame(&mut self.writer, payload)?;
        match proto::read_frame(&mut self.reader)? {
            None => Ok(None),
            Some(reply) => proto::decode(&reply).map(Some).map_err(|(code, msg)| {
                Self::protocol_error(format!("bad reply ({}): {msg}", code.code()))
            }),
        }
    }

    /// Asks the daemon to drain; true when the ack arrived.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn shutdown(mut self) -> io::Result<bool> {
        proto::write_frame(&mut self.writer, &proto::encode_shutdown())?;
        Ok(matches!(
            proto::read_frame(&mut self.reader)?
                .as_deref()
                .map(proto::decode),
            Some(Ok(Message::ShutdownAck))
        ))
    }
}
