//! The `locert-serve` wire protocol: length-prefixed binary frames.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload. Payloads open with a magic tag, a protocol version, and an
//! opcode; all integers are little-endian. One TCP connection carries
//! any number of frames; the server answers each request frame with
//! exactly one response frame, in order.
//!
//! ```text
//! frame    := len:u32  payload                  (len = payload bytes)
//! payload  := "LSRV" ver:u8 opcode:u8 body
//!
//! opcode 0x01 (request batch)   body := count:u16 request*count
//! opcode 0x02 (shutdown/drain)  body := ε
//! opcode 0x81 (response batch)  body := count:u16 response*count
//! opcode 0x82 (shutdown ack)    body := ε
//! opcode 0x7f (conn error)      body := code:u8 msglen:u16 msg
//!
//! request  := mode:u8 idlen:u16 scheme-id
//!             n:u32 m:u32 (u:u32 v:u32)*m
//!             inputs?:u8 [wlen:u32 letter:u32*wlen]
//!             certs?:u8  [count:u32 cert*count]
//! cert     := len_bits:u32 byte*ceil(len_bits/8)
//! response := status:u8
//!             status 0: accepted:u8 cache:u8 rejecting:u32
//!                       certs?:u8 [count:u32 cert*count]
//!             else:     msglen:u16 msg
//! ```
//!
//! Malformed *framing* (bad magic, truncated body, oversize length) is
//! a connection-level error: the server answers one `0x7f` frame and
//! closes. Malformed *requests* (unknown scheme, oversize graph,
//! admission rejection, …) are per-response typed status codes — the
//! connection stays usable. [`ErrorCode`] is the closed catalogue of
//! both; codes are stable wire values with kebab-case names mirroring
//! `locert-core`'s `RejectReason::code` convention.

use locert_core::bits::Certificate;
use std::io::{self, Read, Write};

/// Protocol magic: `"LSRV"` as little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"LSRV");
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Hard cap on a frame payload, bytes. Large enough for a graph at the
/// `locert_graph::io` caps; anything larger is a framing error before
/// any allocation keyed on the length.
pub const MAX_FRAME: usize = 1 << 28;
/// Hard cap on requests per batch frame.
pub const MAX_BATCH: usize = 1024;

/// Request opcodes.
pub const OP_REQUEST: u8 = 0x01;
/// Graceful-drain opcode: stop accepting, finish in-flight, ack, exit.
pub const OP_SHUTDOWN: u8 = 0x02;
/// Response opcodes.
pub const OP_RESPONSE: u8 = 0x81;
/// Shutdown acknowledgement (drain completed for this connection).
pub const OP_SHUTDOWN_ACK: u8 = 0x82;
/// Connection-level error; the server closes after sending it.
pub const OP_CONN_ERROR: u8 = 0x7f;

/// The closed catalogue of typed wire errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The payload did not parse (framing or body structure).
    MalformedFrame = 1,
    /// Declared frame length exceeds [`MAX_FRAME`].
    FrameTooLarge = 2,
    /// Magic or version mismatch.
    UnsupportedVersion = 3,
    /// Structurally valid but semantically unusable request (empty
    /// batch, batch over [`MAX_BATCH`], verify without certificates,
    /// certificate count != vertex count, unknown mode).
    BadRequest = 4,
    /// The scheme id is not in the shared catalogue.
    UnknownScheme = 5,
    /// Graph exceeds the `locert_graph::io` vertex/edge caps.
    GraphTooLarge = 6,
    /// Edges out of range or self-loops.
    BadGraph = 7,
    /// Per-scheme admission limit reached; retry later.
    Overloaded = 8,
    /// The prover refused: the graph does not satisfy the property.
    NotAYesInstance = 9,
    /// The prover needs a witness it could not compute at this scale.
    WitnessUnavailable = 10,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown = 11,
}

impl ErrorCode {
    /// Stable kebab-case name (journals and reports key on it).
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownScheme => "unknown-scheme",
            ErrorCode::GraphTooLarge => "graph-too-large",
            ErrorCode::BadGraph => "bad-graph",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::NotAYesInstance => "not-a-yes-instance",
            ErrorCode::WitnessUnavailable => "witness-unavailable",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses a wire byte back into the catalogue.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::MalformedFrame,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::UnsupportedVersion,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::UnknownScheme,
            6 => ErrorCode::GraphTooLarge,
            7 => ErrorCode::BadGraph,
            8 => ErrorCode::Overloaded,
            9 => ErrorCode::NotAYesInstance,
            10 => ErrorCode::WitnessUnavailable,
            11 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// Request mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Run the prover (cache-assisted); return certificates.
    Prove,
    /// Verify client-supplied certificates; return the verdict.
    Verify,
    /// Prove (cache-assisted) then verify; return verdict + certificates.
    Roundtrip,
}

impl Mode {
    /// Stable kebab-case name.
    pub fn code(self) -> &'static str {
        match self {
            Mode::Prove => "prove",
            Mode::Verify => "verify",
            Mode::Roundtrip => "roundtrip",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Mode::Prove => 1,
            Mode::Verify => 2,
            Mode::Roundtrip => 3,
        }
    }

    fn from_u8(b: u8) -> Option<Mode> {
        Some(match b {
            1 => Mode::Prove,
            2 => Mode::Verify,
            3 => Mode::Roundtrip,
            _ => return None,
        })
    }
}

/// How the certificate cache answered (or was skipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// The request never consulted the cache (verify mode, errors).
    Bypass,
    /// Looked up, absent; the prover ran and the result was inserted.
    Miss,
    /// Served from the cache.
    Hit,
}

impl CacheDisposition {
    /// Stable kebab-case name.
    pub fn code(self) -> &'static str {
        match self {
            CacheDisposition::Bypass => "bypass",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Hit => "hit",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            CacheDisposition::Bypass => 0,
            CacheDisposition::Miss => 1,
            CacheDisposition::Hit => 2,
        }
    }

    fn from_u8(b: u8) -> Option<CacheDisposition> {
        Some(match b {
            0 => CacheDisposition::Bypass,
            1 => CacheDisposition::Miss,
            2 => CacheDisposition::Hit,
            _ => return None,
        })
    }
}

/// One certification request. The graph travels as a raw edge list; the
/// server validates it against the `locert_graph::io` caps and reports
/// violations as typed errors (decoding never allocates proportionally
/// to a hostile declared size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub mode: Mode,
    /// Stable scheme id from `locert_core::catalogue`.
    pub scheme: String,
    /// Declared vertex count.
    pub n: u32,
    /// Edge list (endpoints are vertex indices below `n`).
    pub edges: Vec<(u32, u32)>,
    /// Optional per-vertex input word (word-reading schemes).
    pub inputs: Option<Vec<u32>>,
    /// Certificates to verify (required for [`Mode::Verify`]).
    pub certs: Option<Vec<Certificate>>,
}

/// One response, paired positionally with its request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request was served.
    Ok {
        /// Whether every vertex accepted (prove mode: whether the
        /// prover succeeded, always true here).
        accepted: bool,
        /// Cache disposition of the prove step.
        cache: CacheDisposition,
        /// Number of rejecting vertices (0 when accepted).
        rejecting: u32,
        /// Certificates (prove/roundtrip modes).
        certs: Option<Vec<Certificate>>,
    },
    /// The request failed with a typed code.
    Err {
        /// The typed error.
        code: ErrorCode,
        /// Human-readable detail (never needed to interpret the error).
        message: String,
    },
}

/// A decoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A batch of requests (opcode 0x01).
    Requests(Vec<Request>),
    /// Graceful-drain command (opcode 0x02).
    Shutdown,
    /// A batch of responses (opcode 0x81).
    Responses(Vec<Response>),
    /// Drain acknowledgement (opcode 0x82).
    ShutdownAck,
    /// Connection-level error (opcode 0x7f).
    ConnError(ErrorCode, String),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_header(out: &mut Vec<u8>, opcode: u8) {
    put_u32(out, MAGIC);
    out.push(VERSION);
    out.push(opcode);
}

fn put_certs(out: &mut Vec<u8>, certs: &Option<Vec<Certificate>>) {
    match certs {
        None => out.push(0),
        Some(list) => {
            out.push(1);
            put_u32(out, list.len() as u32);
            for c in list {
                put_u32(out, c.len_bits() as u32);
                out.extend_from_slice(c.as_bytes());
            }
        }
    }
}

/// Encodes a request batch payload.
pub fn encode_requests(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, OP_REQUEST);
    put_u16(&mut out, requests.len() as u16);
    for r in requests {
        out.push(r.mode.to_u8());
        put_u16(&mut out, r.scheme.len() as u16);
        out.extend_from_slice(r.scheme.as_bytes());
        put_u32(&mut out, r.n);
        put_u32(&mut out, r.edges.len() as u32);
        for &(u, v) in &r.edges {
            put_u32(&mut out, u);
            put_u32(&mut out, v);
        }
        match &r.inputs {
            None => out.push(0),
            Some(word) => {
                out.push(1);
                put_u32(&mut out, word.len() as u32);
                for &letter in word {
                    put_u32(&mut out, letter);
                }
            }
        }
        put_certs(&mut out, &r.certs);
    }
    out
}

/// Encodes the graceful-drain payload.
pub fn encode_shutdown() -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, OP_SHUTDOWN);
    out
}

/// Encodes the drain acknowledgement payload.
pub fn encode_shutdown_ack() -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, OP_SHUTDOWN_ACK);
    out
}

/// Encodes a response batch payload.
pub fn encode_responses(responses: &[Response]) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, OP_RESPONSE);
    put_u16(&mut out, responses.len() as u16);
    for r in responses {
        match r {
            Response::Ok {
                accepted,
                cache,
                rejecting,
                certs,
            } => {
                out.push(0);
                out.push(u8::from(*accepted));
                out.push(cache.to_u8());
                put_u32(&mut out, *rejecting);
                put_certs(&mut out, certs);
            }
            Response::Err { code, message } => {
                out.push(*code as u8);
                let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
                put_u16(&mut out, msg.len() as u16);
                out.extend_from_slice(msg);
            }
        }
    }
    out
}

/// Encodes a connection-level error payload.
pub fn encode_conn_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, OP_CONN_ERROR);
    out.push(code as u8);
    let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
    put_u16(&mut out, msg.len() as u16);
    out.extend_from_slice(msg);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.remaining() < len {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn read_certs(r: &mut Reader<'_>) -> Option<Option<Vec<Certificate>>> {
    match r.u8()? {
        0 => Some(None),
        1 => {
            let count = r.u32()? as usize;
            // Each certificate costs at least 4 bytes on the wire; a
            // hostile count cannot out-allocate the frame it rode in on.
            if count > r.remaining() / 4 + 1 {
                return None;
            }
            let mut certs = Vec::with_capacity(count);
            for _ in 0..count {
                let len_bits = r.u32()? as usize;
                let bytes = r.take(len_bits.div_ceil(8))?.to_vec();
                certs.push(Certificate::from_bytes(bytes, len_bits)?);
            }
            Some(Some(certs))
        }
        _ => None,
    }
}

fn read_request(r: &mut Reader<'_>) -> Option<Request> {
    let mode = Mode::from_u8(r.u8()?)?;
    let idlen = r.u16()? as usize;
    let scheme = std::str::from_utf8(r.take(idlen)?).ok()?.to_string();
    let n = r.u32()?;
    let m = r.u32()? as usize;
    if m > r.remaining() / 8 {
        return None; // edges cost 8 bytes each; cap by what is present
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        edges.push((r.u32()?, r.u32()?));
    }
    let inputs = match r.u8()? {
        0 => None,
        1 => {
            let wlen = r.u32()? as usize;
            if wlen > r.remaining() / 4 {
                return None;
            }
            let mut word = Vec::with_capacity(wlen);
            for _ in 0..wlen {
                word.push(r.u32()?);
            }
            Some(word)
        }
        _ => return None,
    };
    let certs = read_certs(r)?;
    Some(Request {
        mode,
        scheme,
        n,
        edges,
        inputs,
        certs,
    })
}

fn read_response(r: &mut Reader<'_>) -> Option<Response> {
    match r.u8()? {
        0 => {
            let accepted = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let cache = CacheDisposition::from_u8(r.u8()?)?;
            let rejecting = r.u32()?;
            let certs = read_certs(r)?;
            Some(Response::Ok {
                accepted,
                cache,
                rejecting,
                certs,
            })
        }
        code => {
            let code = ErrorCode::from_u8(code)?;
            let msglen = r.u16()? as usize;
            let message = String::from_utf8_lossy(r.take(msglen)?).into_owned();
            Some(Response::Err { code, message })
        }
    }
}

/// Decodes one payload. `Err` carries the connection-level error to
/// send back before closing.
pub fn decode(payload: &[u8]) -> Result<Message, (ErrorCode, String)> {
    let malformed = |what: &str| (ErrorCode::MalformedFrame, format!("malformed {what}"));
    let mut r = Reader::new(payload);
    let magic = r.u32().ok_or_else(|| malformed("header"))?;
    if magic != MAGIC {
        return Err((ErrorCode::UnsupportedVersion, "bad magic".to_string()));
    }
    let version = r.u8().ok_or_else(|| malformed("header"))?;
    if version != VERSION {
        return Err((
            ErrorCode::UnsupportedVersion,
            format!("version {version}, this build speaks {VERSION}"),
        ));
    }
    let opcode = r.u8().ok_or_else(|| malformed("header"))?;
    let msg = match opcode {
        OP_REQUEST => {
            let count = r.u16().ok_or_else(|| malformed("batch count"))? as usize;
            if count == 0 {
                return Err((ErrorCode::BadRequest, "empty batch".to_string()));
            }
            if count > MAX_BATCH {
                return Err((
                    ErrorCode::BadRequest,
                    format!("batch of {count}, cap is {MAX_BATCH}"),
                ));
            }
            let mut requests = Vec::with_capacity(count);
            for i in 0..count {
                requests
                    .push(read_request(&mut r).ok_or_else(|| malformed(&format!("request {i}")))?);
            }
            Message::Requests(requests)
        }
        OP_SHUTDOWN => Message::Shutdown,
        OP_RESPONSE => {
            let count = r.u16().ok_or_else(|| malformed("batch count"))? as usize;
            let mut responses = Vec::with_capacity(count.min(MAX_BATCH));
            for i in 0..count {
                responses.push(
                    read_response(&mut r).ok_or_else(|| malformed(&format!("response {i}")))?,
                );
            }
            Message::Responses(responses)
        }
        OP_SHUTDOWN_ACK => Message::ShutdownAck,
        OP_CONN_ERROR => {
            let code = r
                .u8()
                .and_then(ErrorCode::from_u8)
                .ok_or_else(|| malformed("error code"))?;
            let msglen = r.u16().ok_or_else(|| malformed("error message"))? as usize;
            let message =
                String::from_utf8_lossy(r.take(msglen).ok_or_else(|| malformed("error message"))?)
                    .into_owned();
            Message::ConnError(code, message)
        }
        other => {
            return Err((
                ErrorCode::MalformedFrame,
                format!("unknown opcode {other:#x}"),
            ))
        }
    };
    if !r.done() {
        return Err((
            ErrorCode::MalformedFrame,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean EOF before a length
/// prefix.
///
/// # Errors
///
/// `InvalidData` when the declared length exceeds [`MAX_FRAME`] (the
/// error message carries the [`ErrorCode::FrameTooLarge`] code);
/// `UnexpectedEof` when the stream dies mid-frame; otherwise the
/// underlying read error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    FrameReader::new().read_frame(r)
}

/// Resumable frame reader for sockets with a read timeout.
///
/// [`read_frame`] is correct on blocking streams, but on a socket with a
/// read timeout a `WouldBlock`/`TimedOut` return discards any bytes of
/// the length prefix or payload already consumed, desynchronizing the
/// framing for slow writers. `FrameReader` persists the partial-read
/// state across calls: a timeout mid-frame leaves the prefix and payload
/// progress buffered, and the next [`FrameReader::read_frame`] resumes
/// the same frame where it stopped. The server keeps one per connection
/// so its drain-poll timeout can fire at any point in a frame without
/// corrupting the stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    len_buf: [u8; 4],
    len_filled: usize,
    /// Allocated once the prefix completes; holds the payload in flight.
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameReader {
    /// A reader with no frame in flight.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a frame is partially read — a timeout now means a slow
    /// writer mid-frame, not an idle connection.
    pub fn mid_frame(&self) -> bool {
        self.len_filled > 0 || self.payload.is_some()
    }

    /// Reads one frame, resuming a partially-read one if present.
    /// Returns `Ok(None)` on clean EOF before a length prefix.
    ///
    /// # Errors
    ///
    /// As [`read_frame`]; additionally, on `WouldBlock`/`TimedOut` the
    /// partial state is retained and a subsequent call continues the
    /// same frame.
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Vec<u8>>> {
        // A clean EOF before any length byte is a closed connection, not
        // an error; EOF mid-prefix is malformed.
        while self.payload.is_none() {
            match r.read(&mut self.len_buf[self.len_filled..]) {
                Ok(0) if self.len_filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame length",
                    ))
                }
                Ok(k) => {
                    self.len_filled += k;
                    if self.len_filled == 4 {
                        let len = u32::from_le_bytes(self.len_buf) as usize;
                        if len > MAX_FRAME {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                ErrorCode::FrameTooLarge.code(),
                            ));
                        }
                        self.payload = Some(vec![0u8; len]);
                        self.payload_filled = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let payload = self.payload.as_mut().expect("payload in flight");
        while self.payload_filled < payload.len() {
            match r.read(&mut payload[self.payload_filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame payload",
                    ))
                }
                Ok(k) => self.payload_filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.len_filled = 0;
        self.payload_filled = 0;
        Ok(self.payload.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cert(bits: &[bool]) -> Certificate {
        let mut w = locert_core::bits::BitWriter::new();
        for &b in bits {
            w.write_bit(b);
        }
        w.finish()
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                mode: Mode::Roundtrip,
                scheme: "spanning-tree".into(),
                n: 4,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
                inputs: None,
                certs: None,
            },
            Request {
                mode: Mode::Verify,
                scheme: "word-no-11".into(),
                n: 2,
                edges: vec![(0, 1)],
                inputs: Some(vec![0, 1]),
                certs: Some(vec![
                    sample_cert(&[true, false, true]),
                    Certificate::empty(),
                ]),
            },
        ]
    }

    #[test]
    fn request_batch_round_trips() {
        let requests = sample_requests();
        let payload = encode_requests(&requests);
        assert_eq!(decode(&payload), Ok(Message::Requests(requests)));
    }

    #[test]
    fn response_batch_round_trips() {
        let responses = vec![
            Response::Ok {
                accepted: true,
                cache: CacheDisposition::Hit,
                rejecting: 0,
                certs: Some(vec![sample_cert(&[true, true])]),
            },
            Response::Ok {
                accepted: false,
                cache: CacheDisposition::Bypass,
                rejecting: 3,
                certs: None,
            },
            Response::Err {
                code: ErrorCode::UnknownScheme,
                message: "no scheme \"nope\"".into(),
            },
        ];
        let payload = encode_responses(&responses);
        assert_eq!(decode(&payload), Ok(Message::Responses(responses)));
    }

    #[test]
    fn control_frames_round_trip() {
        assert_eq!(decode(&encode_shutdown()), Ok(Message::Shutdown));
        assert_eq!(decode(&encode_shutdown_ack()), Ok(Message::ShutdownAck));
        assert_eq!(
            decode(&encode_conn_error(ErrorCode::FrameTooLarge, "727 MiB")),
            Ok(Message::ConnError(
                ErrorCode::FrameTooLarge,
                "727 MiB".into()
            ))
        );
    }

    #[test]
    fn malformed_payloads_are_typed_never_panics() {
        // Garbage, truncations of a valid frame, bad magic/version/opcode,
        // trailing bytes: every one a typed Err, none a panic.
        let valid = encode_requests(&sample_requests());
        for cut in 0..valid.len() {
            let _ = decode(&valid[..cut]);
        }
        assert!(decode(b"garbage-bytes").is_err());
        assert_eq!(decode(&[]).unwrap_err().0, ErrorCode::MalformedFrame);
        let mut bad_magic = valid.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            decode(&bad_magic).unwrap_err().0,
            ErrorCode::UnsupportedVersion
        );
        let mut bad_version = valid.clone();
        bad_version[4] = 99;
        assert_eq!(
            decode(&bad_version).unwrap_err().0,
            ErrorCode::UnsupportedVersion
        );
        let mut bad_opcode = valid.clone();
        bad_opcode[5] = 0x55;
        assert_eq!(
            decode(&bad_opcode).unwrap_err().0,
            ErrorCode::MalformedFrame
        );
        let mut trailing = valid.clone();
        trailing.push(0);
        assert_eq!(decode(&trailing).unwrap_err().0, ErrorCode::MalformedFrame);
    }

    #[test]
    fn empty_and_oversize_batches_are_bad_requests() {
        let mut empty = Vec::new();
        put_header(&mut empty, OP_REQUEST);
        put_u16(&mut empty, 0);
        assert_eq!(decode(&empty).unwrap_err().0, ErrorCode::BadRequest);
        let mut oversize = Vec::new();
        put_header(&mut oversize, OP_REQUEST);
        put_u16(&mut oversize, (MAX_BATCH + 1) as u16);
        assert_eq!(decode(&oversize).unwrap_err().0, ErrorCode::BadRequest);
    }

    #[test]
    fn hostile_counts_cannot_outallocate_the_frame() {
        // m = u32::MAX with a tiny frame: decode must fail fast, not
        // reserve gigabytes.
        let mut payload = Vec::new();
        put_header(&mut payload, OP_REQUEST);
        put_u16(&mut payload, 1);
        payload.push(1); // mode = prove
        put_u16(&mut payload, 1);
        payload.push(b'x');
        put_u32(&mut payload, 3); // n
        put_u32(&mut payload, u32::MAX); // m, lying
        assert_eq!(decode(&payload).unwrap_err().0, ErrorCode::MalformedFrame);
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let payload = encode_shutdown();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(err.to_string(), ErrorCode::FrameTooLarge.code());
    }

    #[test]
    fn error_codes_are_stable_and_invertible() {
        for b in 0..=255u8 {
            if let Some(code) = ErrorCode::from_u8(b) {
                assert_eq!(code as u8, b);
                assert!(!code.code().is_empty());
            }
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(12), None);
    }
}
