//! Per-scheme admission control.
//!
//! Each scheme id gets at most `limit` requests in flight at once;
//! excess requests are rejected with the typed `overloaded` wire code
//! instead of queueing (the client owns its retry policy — the daemon's
//! latency stays bounded). Permits are RAII: dropping one releases the
//! slot, so every exit path — success, prover failure, panic unwound by
//! the connection handler — gives the slot back.
//!
//! Within one request batch the server acquires permits in request
//! order, which makes overload deterministic: a batch carrying more
//! same-scheme requests than the limit always sees exactly the excess
//! rejected, independent of thread scheduling.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared admission state for one daemon.
#[derive(Clone)]
pub struct Admission {
    limit: usize,
    in_flight: Arc<Mutex<HashMap<String, usize>>>,
}

impl Admission {
    /// Admission allowing `limit` in-flight requests per scheme.
    /// A limit of 0 rejects everything (useful in tests).
    pub fn new(limit: usize) -> Admission {
        Admission {
            limit,
            in_flight: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The per-scheme in-flight cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Tries to take a slot for `scheme`. `None` means the scheme is at
    /// its limit — reject with `overloaded`.
    pub fn try_acquire(&self, scheme: &str) -> Option<Permit> {
        let mut map = self.in_flight.lock().expect("admission lock poisoned");
        let count = map.entry(scheme.to_string()).or_insert(0);
        if *count >= self.limit {
            return None;
        }
        *count += 1;
        Some(Permit {
            scheme: scheme.to_string(),
            in_flight: Arc::clone(&self.in_flight),
        })
    }

    /// Requests currently holding a slot for `scheme`.
    pub fn in_flight(&self, scheme: &str) -> usize {
        self.in_flight
            .lock()
            .expect("admission lock poisoned")
            .get(scheme)
            .copied()
            .unwrap_or(0)
    }
}

/// A held admission slot; dropping releases it.
pub struct Permit {
    scheme: String,
    in_flight: Arc<Mutex<HashMap<String, usize>>>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        if let Ok(mut map) = self.in_flight.lock() {
            if let Some(count) = map.get_mut(&self.scheme) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    map.remove(&self.scheme);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_is_per_scheme_and_permits_release_on_drop() {
        let a = Admission::new(2);
        let p1 = a.try_acquire("spanning-tree").unwrap();
        let _p2 = a.try_acquire("spanning-tree").unwrap();
        assert!(a.try_acquire("spanning-tree").is_none(), "at the limit");
        assert!(
            a.try_acquire("acyclicity").is_some(),
            "other schemes unaffected"
        );
        assert_eq!(a.in_flight("spanning-tree"), 2);
        drop(p1);
        assert_eq!(a.in_flight("spanning-tree"), 1);
        assert!(a.try_acquire("spanning-tree").is_some(), "slot came back");
    }

    #[test]
    fn zero_limit_rejects_everything() {
        let a = Admission::new(0);
        assert!(a.try_acquire("spanning-tree").is_none());
        assert_eq!(a.in_flight("spanning-tree"), 0);
    }
}
