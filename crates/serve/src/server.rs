//! The certification daemon.
//!
//! One accept-loop thread hands each TCP connection to its own handler
//! thread; a connection carries any number of request-batch frames, each
//! answered by one response-batch frame in order. The heavy lifting —
//! `run_verification` fan-out over vertices — already runs on the shared
//! `locert-par` pool, so handler threads are thin coordinators.
//!
//! Request execution is sequential within a batch, with all admission
//! permits acquired upfront in request order: a batch carrying more
//! same-scheme requests than the per-scheme limit deterministically sees
//! exactly the excess rejected as `overloaded`, independent of thread
//! scheduling.
//!
//! Drain semantics: a shutdown (the wire opcode or [`Server::shutdown`])
//! sets the stop flag and wakes the accept loop. In-flight batches run
//! to completion; batches arriving after the flag answer every request
//! with `shutting-down`; idle connections close at their next read
//! timeout; then the accept loop and every handler are joined. The
//! optional metrics plane (a `locert-scope` HTTP exporter serving
//! `/metrics` and `/healthz` from the global trace registry) stops last,
//! so a scrape race at shutdown still sees final counters.

use crate::admit::{Admission, Permit};
use crate::cache::{CacheKey, CertCache};
use crate::proto::{self, CacheDisposition, ErrorCode, Message, Mode, Request, Response};
use locert_core::catalogue;
use locert_core::framework::{run_verification, Assignment, Instance, ProverError};
use locert_core::schemes::common::id_bits_for;
use locert_graph::io::{MAX_EDGES, MAX_VERTICES};
use locert_graph::{Graph, IdAssignment};
use locert_trace::journal::{self, Event};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address for the binary protocol (`127.0.0.1:0` for an
    /// ephemeral port).
    pub addr: String,
    /// Certificate-cache capacity, entries.
    pub cache_capacity: usize,
    /// Per-scheme in-flight request limit.
    pub admission_limit: usize,
    /// Bind address for the HTTP metrics plane; `None` disables it.
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 256,
            admission_limit: 64,
            metrics_addr: None,
        }
    }
}

struct Shared {
    cache: Mutex<CertCache>,
    admission: Admission,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    serve_addr: SocketAddr,
}

impl Shared {
    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Sets the stop flag and wakes the accept loop.
    fn begin_drain(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.serve_addr);
    }
}

/// A running daemon; dropping it drains and joins everything.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Option<locert_scope::http::ScopeServer>,
}

impl Server {
    /// Binds and starts serving in the background.
    ///
    /// # Errors
    ///
    /// The bind error for either plane.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let serve_addr = listener.local_addr()?;
        let metrics = match &config.metrics_addr {
            Some(addr) => Some(locert_scope::http::ScopeServer::serve(addr, None)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: Mutex::new(CertCache::new(config.cache_capacity)),
            admission: Admission::new(config.admission_limit),
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            serve_addr,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_handlers = Arc::clone(&handlers);
        let accept_handle = std::thread::Builder::new()
            .name("locert-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_handlers))?;
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            handlers,
            metrics,
        })
    }

    /// The bound protocol address (real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.serve_addr
    }

    /// The metrics plane address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.addr())
    }

    /// Cache counters `(hits, misses, evictions)` — the daemon-side
    /// truth the wire dispositions must reconcile with.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        let cache = self.shared.cache.lock().expect("cache lock poisoned");
        (cache.hits(), cache.misses(), cache.evictions())
    }

    fn join_all(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let drained: Vec<_> = {
            let mut handlers = self.handlers.lock().expect("handler registry poisoned");
            handlers.drain(..).collect()
        };
        for handle in drained {
            let _ = handle.join();
        }
        if let Some(mut metrics) = self.metrics.take() {
            metrics.shutdown();
        }
    }

    /// Initiates a drain and blocks until every thread has exited.
    pub fn shutdown(&mut self) {
        self.shared.begin_drain();
        self.join_all();
    }

    /// Blocks until a client-initiated shutdown (the wire opcode)
    /// drains the daemon. The foreground of the `locert-serve` binary.
    pub fn join(&mut self) {
        self.join_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.draining() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.draining() {
            return; // the wake-up connection from `begin_drain`
        }
        let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("locert-serve-conn-{conn}"))
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared, conn);
            });
        if let Ok(handle) = spawned {
            handlers
                .lock()
                .expect("handler registry poisoned")
                .push(handle);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, conn: u64) -> io::Result<()> {
    // The read timeout is the drain poll interval: an idle connection
    // notices the stop flag within one period.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut req_seq = 0u64;
    // Resumable across timeout polls: the drain-poll timeout can fire
    // mid-frame on a slow writer, and the partially-read prefix/payload
    // must survive to the next iteration instead of desynchronizing the
    // stream.
    let mut frames = proto::FrameReader::new();
    loop {
        let payload = match frames.read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                locert_trace::add("serve.rejected.frame-too-large", 1);
                proto::write_frame(
                    &mut writer,
                    &proto::encode_conn_error(ErrorCode::FrameTooLarge, &e.to_string()),
                )?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match proto::decode(&payload) {
            Ok(Message::Requests(requests)) => {
                let responses = handle_batch(shared, conn, &mut req_seq, &requests);
                proto::write_frame(&mut writer, &proto::encode_responses(&responses))?;
            }
            Ok(Message::Shutdown) => {
                shared.begin_drain();
                proto::write_frame(&mut writer, &proto::encode_shutdown_ack())?;
                return Ok(());
            }
            Ok(_) => {
                // Response-plane opcodes from a client are nonsense.
                locert_trace::add("serve.rejected.malformed-frame", 1);
                proto::write_frame(
                    &mut writer,
                    &proto::encode_conn_error(
                        ErrorCode::MalformedFrame,
                        &format!("unexpected opcode {:#x}", payload[5]),
                    ),
                )?;
                return Ok(());
            }
            Err((code, message)) => {
                locert_trace::add(&format!("serve.rejected.{}", code.code()), 1);
                proto::write_frame(&mut writer, &proto::encode_conn_error(code, &message))?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Validated, admitted request ready to execute.
struct Admitted<'a> {
    request: &'a Request,
    graph: Graph,
    inputs: Option<Vec<usize>>,
    _permit: Permit,
}

fn reject(code: ErrorCode, message: String) -> Response {
    locert_trace::add(&format!("serve.rejected.{}", code.code()), 1);
    Response::Err { code, message }
}

/// Validates a request and takes its admission slot. All checks that
/// can fail without running a prover live here so the batch loop can
/// acquire every permit upfront, in request order.
fn admit<'a>(shared: &Shared, request: &'a Request) -> Result<Admitted<'a>, Response> {
    if shared.draining() {
        return Err(reject(
            ErrorCode::ShuttingDown,
            "daemon is draining".to_string(),
        ));
    }
    if catalogue::by_id(&request.scheme).is_none() {
        return Err(reject(
            ErrorCode::UnknownScheme,
            format!("no scheme {:?}", request.scheme),
        ));
    }
    let n = request.n as usize;
    if n > MAX_VERTICES || request.edges.len() > MAX_EDGES {
        return Err(reject(
            ErrorCode::GraphTooLarge,
            format!(
                "{n} vertices / {} edges exceed caps {MAX_VERTICES}/{MAX_EDGES}",
                request.edges.len()
            ),
        ));
    }
    let edges = request.edges.iter().map(|&(u, v)| (u as usize, v as usize));
    let graph = match Graph::from_edges(n, edges) {
        Ok(graph) => graph,
        Err(e) => return Err(reject(ErrorCode::BadGraph, e.to_string())),
    };
    let inputs = request
        .inputs
        .as_ref()
        .map(|word| word.iter().map(|&x| x as usize).collect::<Vec<_>>());
    if let Some(word) = &inputs {
        if word.len() != n {
            return Err(reject(
                ErrorCode::BadRequest,
                format!("{} inputs for {n} vertices", word.len()),
            ));
        }
    }
    match (&request.mode, &request.certs) {
        (Mode::Verify, None) => {
            return Err(reject(
                ErrorCode::BadRequest,
                "verify needs certificates".to_string(),
            ))
        }
        (Mode::Verify, Some(certs)) if certs.len() != n => {
            return Err(reject(
                ErrorCode::BadRequest,
                format!("{} certificates for {n} vertices", certs.len()),
            ))
        }
        _ => {}
    }
    let Some(permit) = shared.admission.try_acquire(&request.scheme) else {
        return Err(reject(
            ErrorCode::Overloaded,
            format!(
                "scheme {:?} at its in-flight limit {}",
                request.scheme,
                shared.admission.limit()
            ),
        ));
    };
    Ok(Admitted {
        request,
        graph,
        inputs,
        _permit: permit,
    })
}

/// Runs the prover, consulting the certificate cache first. Returns the
/// per-vertex certificates and the cache disposition.
fn prove_cached(
    shared: &Shared,
    admitted: &Admitted<'_>,
    instance: &Instance<'_>,
) -> Result<(Vec<Certs>, CacheDisposition), Response> {
    let key = CacheKey::of(
        &admitted.graph,
        admitted.inputs.as_deref(),
        &admitted.request.scheme,
    );
    if let Some(certs) = shared.cache.lock().expect("cache lock poisoned").get(&key) {
        return Ok((certs, CacheDisposition::Hit));
    }
    let scheme = catalogue::build(
        &admitted.request.scheme,
        id_bits_for(instance),
        admitted.graph.num_nodes(),
    )
    .expect("scheme id validated at admission");
    let assignment = match scheme.assign(instance) {
        Ok(assignment) => assignment,
        Err(ProverError::NotAYesInstance) => {
            return Err(reject(
                ErrorCode::NotAYesInstance,
                "the graph does not satisfy the property".to_string(),
            ))
        }
        Err(ProverError::WitnessUnavailable(why)) => {
            return Err(reject(ErrorCode::WitnessUnavailable, why))
        }
    };
    let certs: Vec<_> = (0..assignment.len())
        .map(|v| assignment.cert(locert_graph::NodeId(v)).clone())
        .collect();
    shared
        .cache
        .lock()
        .expect("cache lock poisoned")
        .put(key, certs.clone());
    Ok((certs, CacheDisposition::Miss))
}

type Certs = locert_core::bits::Certificate;

/// Executes one admitted request.
fn execute(shared: &Shared, admitted: &Admitted<'_>) -> Response {
    locert_trace::add("serve.requests", 1);
    let n = admitted.graph.num_nodes();
    let ids = IdAssignment::contiguous(n);
    let instance = match &admitted.inputs {
        Some(word) => Instance::with_inputs(&admitted.graph, &ids, word),
        None => Instance::new(&admitted.graph, &ids),
    };
    match admitted.request.mode {
        Mode::Prove => match prove_cached(shared, admitted, &instance) {
            Ok((certs, cache)) => Response::Ok {
                accepted: true,
                cache,
                rejecting: 0,
                certs: Some(certs),
            },
            Err(response) => response,
        },
        Mode::Verify => {
            let certs = admitted
                .request
                .certs
                .clone()
                .expect("validated at admission");
            let scheme = catalogue::build(&admitted.request.scheme, id_bits_for(&instance), n)
                .expect("scheme id validated at admission");
            let outcome = run_verification(scheme.as_ref(), &instance, &Assignment::new(certs));
            Response::Ok {
                accepted: outcome.accepted(),
                cache: CacheDisposition::Bypass,
                rejecting: outcome.rejecting().len() as u32,
                certs: None,
            }
        }
        Mode::Roundtrip => match prove_cached(shared, admitted, &instance) {
            Ok((certs, cache)) => {
                let scheme = catalogue::build(&admitted.request.scheme, id_bits_for(&instance), n)
                    .expect("scheme id validated at admission");
                let assignment = Assignment::new(certs.clone());
                let outcome = run_verification(scheme.as_ref(), &instance, &assignment);
                Response::Ok {
                    accepted: outcome.accepted(),
                    cache,
                    rejecting: outcome.rejecting().len() as u32,
                    certs: Some(certs),
                }
            }
            Err(response) => response,
        },
    }
}

fn journal_response(conn: u64, req: u64, request: &Request, response: &Response) {
    journal::record_with(|| {
        let (outcome, cache) = match response {
            Response::Ok {
                accepted, cache, ..
            } => (
                if *accepted { "accepted" } else { "rejected" }.to_string(),
                cache.code().to_string(),
            ),
            Response::Err { code, .. } => (code.code().to_string(), "bypass".to_string()),
        };
        Event::ServeRequest {
            conn,
            req,
            scheme: request.scheme.clone(),
            mode: request.mode.code().to_string(),
            vertices: u64::from(request.n),
            outcome,
            cache,
        }
    });
}

/// Serves one request batch: permits first (in order), then execution.
fn handle_batch(
    shared: &Shared,
    conn: u64,
    req_seq: &mut u64,
    requests: &[Request],
) -> Vec<Response> {
    let admissions: Vec<_> = requests.iter().map(|r| admit(shared, r)).collect();
    let mut responses = Vec::with_capacity(requests.len());
    for (request, admission) in requests.iter().zip(admissions) {
        let response = match admission {
            Ok(admitted) => {
                let t0 = std::time::Instant::now();
                let response = execute(shared, &admitted);
                locert_trace::record("serve.request.ns", t0.elapsed().as_nanos() as u64);
                response
            }
            Err(response) => response,
        };
        journal_response(conn, *req_seq, request, &response);
        *req_seq += 1;
        responses.push(response);
    }
    responses
}
