//! Strategies: composable value generators.

use crate::test_runner::TestRunner;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generated value wrapper; the real crate's trees support shrinking,
/// this stand-in reports the generated value as-is.
pub trait ValueTree {
    /// The value type.
    type Value;
    /// The current (here: only) value.
    fn current(&self) -> Self::Value;
}

/// The tree type produced by every strategy here: a single pre-generated
/// value.
#[derive(Debug, Clone)]
pub struct Single<T>(pub T);

impl<T: Clone> ValueTree for Single<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A composable generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value using the runner's RNG.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Generates a (non-shrinking) value tree — the entry point the real
    /// crate exposes; kept for source compatibility.
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in; the `Result` mirrors the real API.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Single<Self::Value>, String>
    where
        Self::Value: Clone,
    {
        Ok(Single(self.generate(runner)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `f` receives a strategy for the
    /// previous nesting level and returns the next level; `depth` bounds
    /// the nesting (the size/branch hints of the real API are accepted and
    /// ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so generated depths vary.
            strat = Union::weighted(vec![(1, leaf.clone()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheap to clone; shared).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, runner: &mut TestRunner) -> S::Value {
        self.generate(runner)
    }
}

/// A type-erased, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_generate(runner)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// Weighted choice among strategies with a common value type (what
/// [`crate::prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|&(w, _)| w).sum();
        assert!(total > 0, "union needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(runner);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($( ($($S:ident / $idx:tt),+) )*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `&str` regex-style string strategy. This stand-in understands the
/// `CLASS{m,n}` shape with the `\PC` (printable char) class this workspace
/// uses; anything else degrades to short printable strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 16));
        let len = runner.rng.random_range(lo..=hi);
        (0..len).map(|_| random_printable(runner)).collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let body = pattern[open + 1..].strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn random_printable(runner: &mut TestRunner) -> char {
    // Mostly ASCII printable, occasionally multibyte to exercise UTF-8
    // handling.
    const EXOTIC: [char; 8] = ['é', 'λ', '∀', '∃', '∈', '→', '🦀', '“'];
    if runner.rng.random_bool(0.1) {
        EXOTIC[runner.rng.random_range(0..EXOTIC.len())]
    } else {
        char::from(runner.rng.random_range(0x20u8..0x7f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_and_maps() {
        let mut r = TestRunner::deterministic();
        let s = (1u32..=8).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && (2..=16).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = TestRunner::deterministic();
        let s = (0u64..10, 0usize..3);
        let (a, b) = s.generate(&mut r);
        assert!(a < 10 && b < 3);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = TestRunner::deterministic();
        let s = Union::weighted(vec![
            (1, Just(0usize).boxed()),
            (1, Just(1usize).boxed()),
            (1, Just(2usize).boxed()),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn recursive_strategies_vary_depth() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(inner) => 1 + depth(inner),
            }
        }
        let mut r = TestRunner::deterministic();
        let s = Just(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut max_depth = 0;
        let mut min_depth = usize::MAX;
        for _ in 0..200 {
            let d = depth(&s.generate(&mut r));
            max_depth = max_depth.max(d);
            min_depth = min_depth.min(d);
            assert!(d <= 4);
        }
        assert!(max_depth >= 2, "recursion never fired");
        assert_eq!(min_depth, 0, "leaves never generated");
    }

    #[test]
    fn string_pattern_bounds() {
        let mut r = TestRunner::deterministic();
        let s = "\\PC{0,40}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.chars().count() <= 40);
        }
    }

    #[test]
    fn new_tree_current_round_trips() {
        let mut r = TestRunner::deterministic();
        let tree = (0u32..5).new_tree(&mut r).unwrap();
        assert!(tree.current() < 5);
    }
}
