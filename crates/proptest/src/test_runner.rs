//! The test runner: per-test configuration and the deterministic RNG the
//! strategies draw from.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives case generation. Always deterministic in this stand-in, so test
/// failures reproduce across runs.
pub struct TestRunner {
    /// RNG the strategies sample from.
    pub rng: StdRng,
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given config and the fixed workspace seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15),
            config,
        }
    }

    /// An explicitly deterministic runner (same behavior as [`new`]; the
    /// real crate distinguishes the two).
    ///
    /// [`new`]: TestRunner::new
    pub fn deterministic() -> Self {
        TestRunner::new(ProptestConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runners_are_reproducible() {
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::new(ProptestConfig::with_cases(8));
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        assert_eq!(b.config().cases, 8);
    }
}
