//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` strategy: `size` elements (sampled from the window), each from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = runner.rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut r = TestRunner::deterministic();
        let fixed = vec(0u32..5, 6);
        assert_eq!(fixed.generate(&mut r).len(), 6);
        let ranged = vec(0u32..5, 0..20);
        let mut saw_small = false;
        let mut saw_large = false;
        for _ in 0..200 {
            let v = ranged.generate(&mut r);
            assert!(v.len() < 20);
            saw_small |= v.len() < 5;
            saw_large |= v.len() >= 15;
        }
        assert!(saw_small && saw_large);
    }
}
