//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple and `Just` and
//! string strategies, [`collection::vec`], uniform/weighted unions (via
//! [`prop_oneof!`]), a deterministic [`test_runner::TestRunner`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate are deliberate and small:
//!
//! - cases are generated from a fixed seed, so runs are reproducible;
//! - failing cases are reported but not shrunk;
//! - string strategies interpret only the `\PC{m,n}`-style patterns this
//!   workspace uses (printable characters with bounded repetition), and
//!   fall back to short printable strings for other patterns.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly glob-imported surface.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module alias used by idiomatic proptest code
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __config = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::new(__config.clone());
                // Bind the strategies once; the per-case lets shadow the
                // names with generated values.
                let ( $($arg,)+ ) = ( $($strat,)+ );
                for __case in 0..__config.cases {
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        let ( $($arg,)+ ) =
                            ( $($crate::strategy::Strategy::generate(&$arg, &mut __runner),)+ );
                        $body
                        Ok(())
                    })();
                    if let Err(__msg) = __result {
                        panic!("proptest '{}' failed at case {}: {}",
                               stringify!($name), __case, __msg);
                    }
                }
            }
        )*
    };
}

/// Asserts inside a [`proptest!`] body; failures abort the case with a
/// diagnosable message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Discards the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// A uniform (or `weight => strategy` weighted) choice among strategies
/// with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
