//! Live-wire tests for the `/metrics` exporter.
//!
//! Binds a real listener on an ephemeral loopback port, speaks raw
//! HTTP/1.1 over `TcpStream`, and round-trips `/metrics` through the
//! crate's own Prometheus text parser — the acceptance gate for the
//! wire surface. One test function: the registry and journal are
//! process-global state.

use locert_scope::http::ScopeServer;
use locert_scope::prom;
use locert_trace::journal;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One GET over a fresh connection; returns (status line, body).
fn get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: locert\r\n\r\n").expect("request");
    let mut response = String::new();
    // Connection: close — read to EOF.
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

#[test]
fn exporter_serves_metrics_health_and_tail() {
    // Populate the registry and journal with known content.
    locert_trace::enable();
    locert_trace::reset();
    journal::reset();
    journal::enable();
    locert_trace::add("scope.test.requests", 3);
    locert_trace::record("scope.test.latency", 7);
    journal::record_with(|| journal::Event::Marker {
        label: "http-test".into(),
    });
    for v in 0..5u64 {
        journal::record_with(|| journal::Event::Verdict {
            vertex: v,
            accepted: true,
            reason: None,
            bits_read: 8,
        });
    }

    let mut server = ScopeServer::serve("127.0.0.1:0", None).expect("bind");
    let addr = server.addr();

    // /healthz is alive.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    // /metrics parses back through the crate's own Prometheus reader
    // and carries the counters and histograms we just registered.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let samples = prom::parse_text(&body).expect("/metrics output is valid Prometheus text");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("sample {name} missing from /metrics"))
            .value
    };
    assert_eq!(find("locert_scope_test_requests_total"), 3.0);
    assert_eq!(find("locert_scope_test_latency_count"), 1.0);
    assert_eq!(find("locert_scope_test_latency_sum"), 7.0);
    assert!(
        samples
            .iter()
            .any(|s| s.name == "locert_scope_test_latency_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")),
        "histogram exports a +Inf bucket"
    );

    // /journal/tail?n= serves the newest N entries as parseable JSONL.
    let (status, body) = get(addr, "/journal/tail?n=2");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "tail honors n");
    for line in &lines {
        let v = locert_trace::json::parse(line).expect("tail line is JSON");
        assert!(
            journal::event_from_json(&v).is_some(),
            "tail line decodes as a journal event: {line}"
        );
    }
    assert!(
        lines[1].contains("\"vertex\":4"),
        "tail ends at the newest entry"
    );

    // Unknown routes 404; non-GET methods 405.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: locert\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405 "), "got: {response}");
    }

    // Shutdown joins the thread; the port stops answering.
    server.shutdown();
    // (A second shutdown, via Drop, must be a no-op.)
    drop(server);

    journal::disable();
    journal::reset();
    locert_trace::reset();
}

#[test]
fn request_budget_makes_the_server_exit() {
    let mut server = ScopeServer::serve("127.0.0.1:0", Some(2)).expect("bind");
    let addr = server.addr();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // Budget exhausted: the accept loop returns on its own.
    server.join();
}
