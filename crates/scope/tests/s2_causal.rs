//! End-to-end causal analytics over a real fault-campaign journal.
//!
//! Generates an S2-style journal in-process (the same
//! scheme/instance/campaign machinery `experiments s2` uses, scaled
//! down), then drives the acceptance criteria: every `Detection`
//! resolves to its injected fault site, the chain's distance is exactly
//! the journaled BFS distance, rounds line up with `CampaignRound`
//! events, and everything survives the JSONL round trip.
//!
//! One test function: the journal is process-global state.

use locert_core::faults::{run_campaign, FaultModel};
use locert_core::framework::{run_scheme, Instance, Prover};
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_graph::{generators, IdAssignment};
use locert_scope::{causal, query, window};
use locert_trace::journal::{self, Event};

fn campaign_journal() -> journal::JournalSnapshot {
    journal::reset();
    journal::enable();
    let n = 12usize;
    let g = generators::path(n);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = VertexCountScheme::new(6, n as u64);
    let honest = scheme.assign(&inst).expect("yes-instance");
    for (mi, model) in FaultModel::ALL.into_iter().enumerate() {
        run_campaign(
            &scheme,
            &inst,
            &honest,
            model,
            20,
            0x52u64.wrapping_add((mi as u64) << 16),
        );
    }
    // One verification pass too, so the journal carries an unnumbered
    // `core.verify` round mark alongside the numbered campaign marks.
    run_scheme(&scheme, &inst).expect("honest run accepts");
    journal::disable();
    let snap = journal::snapshot();
    journal::reset();
    snap
}

#[test]
fn campaign_journal_resolves_causally() {
    let snap = campaign_journal();
    assert_eq!(snap.dropped, 0, "test journal must fit the ring");

    let detections: Vec<(u64, u64, u64, Option<u64>)> = snap
        .entries
        .iter()
        .filter_map(|e| match &e.event {
            Event::Detection {
                site,
                detector,
                distance,
                ..
            } => Some((e.seq, *site, *detector, *distance)),
            _ => None,
        })
        .collect();
    assert!(
        detections.len() >= 20,
        "campaign produced only {} detections",
        detections.len()
    );

    // Acceptance: every detection resolves to its injected site, with
    // the journaled distance.
    let report = causal::resolve(&snap);
    assert!(
        report.fully_resolved(),
        "unresolved detections: {:?}",
        report.unresolved
    );
    assert_eq!(report.chains.len(), detections.len());
    for ((det_seq, site, detector, distance), chain) in detections.iter().zip(&report.chains) {
        assert_eq!(chain.detection_seq, *det_seq);
        assert_eq!(chain.site, *site, "chain resolves the claimed site");
        assert_eq!(chain.detector, *detector);
        assert_eq!(
            chain.distance, *distance,
            "chain distance is the journaled BFS distance"
        );
        assert!(
            chain.injection_seq < *det_seq,
            "cause precedes effect in the journal"
        );
        // Radius-1 verification: single-site faults are visible only
        // within distance 1 of the site (the paper's locality claim).
        // Swap corrupts a second vertex whose distance from the recorded
        // site is unbounded, so it is exempt.
        if let (Some(d), false) = (chain.distance, chain.model == "swap") {
            assert!(d <= 1, "detection at distance {d} breaks radius-1 locality");
        }
    }

    // Chains carry the campaign round the fault was injected in: the
    // next CampaignRound event after the detection closes that round.
    for chain in &report.chains {
        let closing_run = snap
            .entries
            .iter()
            .find(|e| e.seq > chain.detection_seq && matches!(e.event, Event::CampaignRound { .. }))
            .and_then(|e| match &e.event {
                Event::CampaignRound { run, .. } => Some(*run),
                _ => None,
            })
            .expect("every campaign detection is followed by its round close");
        assert_eq!(chain.round, Some(closing_run));
    }

    // `why` filters per detector and finds the same chains.
    let some_detector = report.chains[0].detector;
    let chains = causal::why(&snap, some_detector);
    assert!(!chains.is_empty());
    assert!(chains.iter().all(|c| c.detector == some_detector));

    // The verification pass contributed an unnumbered core.verify mark
    // that readers assign an ordinal to.
    let verify_rounds = query::assign_rounds(&snap, Some("core.verify"));
    assert_eq!(
        verify_rounds.last().copied().flatten(),
        Some(0),
        "single core.verify pass gets ordinal 0"
    );

    // JSONL round trip preserves causal structure byte-for-byte.
    let text = journal::to_jsonl(&snap);
    let back = journal::from_jsonl(&text).expect("parses");
    assert_eq!(back, snap);
    assert_eq!(causal::resolve(&back), report);
    // And streaming write is identical to the string builder.
    let mut streamed = Vec::new();
    journal::write_jsonl(&snap, &mut streamed).expect("streams");
    assert_eq!(String::from_utf8(streamed).expect("utf8"), text);

    // Query engine agrees with manual counts.
    let q = query::Query {
        kinds: vec!["detection".into()],
        ..Default::default()
    };
    assert_eq!(query::run(&snap, &q).len(), detections.len());

    // Windowing: every campaign round lands in a window, and the
    // per-window event totals cover all round-marked entries.
    let windows = window::journal_windows(&snap, Some("core.faults.campaign"), 5);
    assert!(!windows.is_empty());
    let campaign_rounds = FaultModel::ALL.len() * 20;
    let marks: u64 = windows
        .iter()
        .map(|w| w.counters.get("events.round-mark").copied().unwrap_or(0))
        .sum();
    // Campaign marks are numbered 0..20 per model, so rounds collide
    // across models (by design: round = run index); the total mark
    // count still equals the number of emitted marks plus the final
    // core.verify mark, which falls in whatever round was last open.
    assert_eq!(marks as usize, campaign_rounds + 1);
}
