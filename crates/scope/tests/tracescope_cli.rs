//! Black-box tests of the `tracescope` binary: exit-code contract
//! (0 success / 1 finding / 2 usage-io), `diff` divergence reporting,
//! `why` causal resolution, and the `serve` wire surface — the same
//! invocations the CI scope-gate runs.

use locert_core::faults::{run_campaign, FaultModel};
use locert_core::framework::{Instance, Prover};
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_graph::{generators, IdAssignment};
use locert_trace::journal;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn tracescope() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracescope"))
}

fn run(args: &[&str]) -> Output {
    tracescope().args(args).output().expect("spawn tracescope")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

/// A scratch dir unique to this test process, cleaned up by the OS.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracescope-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// A small real campaign journal, written to disk via the streaming
/// writer (the same path `experiments --journal` takes). The journal is
/// process-global state and the harness runs tests in parallel, so
/// generation is serialized.
fn write_campaign_journal(name: &str) -> PathBuf {
    static JOURNAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = JOURNAL.lock().expect("journal generation lock");
    journal::reset();
    journal::enable();
    let n = 8usize;
    let g = generators::path(n);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = VertexCountScheme::new(6, n as u64);
    let honest = scheme.assign(&inst).expect("yes-instance");
    run_campaign(&scheme, &inst, &honest, FaultModel::BitFlip, 8, 0x5c09e);
    journal::disable();
    let snap = journal::snapshot();
    journal::reset();
    let path = scratch(name);
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
    journal::write_jsonl(&snap, &mut file).expect("write journal");
    file.flush().expect("flush");
    path
}

#[test]
fn exit_code_contract() {
    let journal_path = write_campaign_journal("contract.jsonl");
    let journal_str = journal_path.to_str().expect("utf8 path");

    // Usage errors are exit 2.
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["query"]).status.code(), Some(2), "missing journal");
    assert_eq!(
        run(&["query", journal_str, "--bogus"]).status.code(),
        Some(2),
        "unknown option"
    );
    assert_eq!(
        run(&["why", "/nonexistent/journal.jsonl"]).status.code(),
        Some(2),
        "I/O error"
    );

    // query --count prints the number of detections and exits 0.
    let out = run(&["query", journal_str, "--kind", "detection", "--count"]);
    assert_eq!(out.status.code(), Some(0));
    let count: usize = stdout_of(&out).trim().parse().expect("a count");
    assert!(count > 0, "campaign journal has detections");

    // why resolves every detection: exit 0, one chain line each.
    let out = run(&["why", journal_str]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let stdout = stdout_of(&out);
    assert_eq!(stdout.matches("fault injected at site").count(), count);
    assert!(stdout.contains("-> detection seq"));

    // tail honors -n and emits JSONL.
    let out = run(&["tail", journal_str, "-n", "3"]);
    assert_eq!(out.status.code(), Some(0));
    let tail = stdout_of(&out);
    assert_eq!(tail.lines().count(), 3);
    assert!(tail.lines().all(|l| l.starts_with('{')));

    // windows over the campaign scope: every line names a window.
    let out = run(&[
        "windows",
        journal_str,
        "--scope",
        "core.faults.campaign",
        "--interval",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout_of(&out).lines().all(|l| l.starts_with("window ")));
}

#[test]
fn why_flags_orphan_detections() {
    // A detection with no matching injection: the flush contract is
    // broken (as after ring-buffer truncation), so `why` must exit 1.
    let path = scratch("orphan.jsonl");
    std::fs::write(
        &path,
        concat!(
            r#"{"schema":"locert-journal/v1","dropped":3}"#,
            "\n",
            r#"{"detector":2,"distance":1,"model":"bit-flip","reason":"parent-distance-clash","seq":7,"site":3,"type":"detection"}"#,
            "\n",
        ),
    )
    .expect("write orphan journal");
    let out = run(&["why", path.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("UNRESOLVED"), "stderr: {stderr}");
    assert!(
        stderr.contains("dropped 3 events"),
        "points at the truncated ring: {stderr}"
    );
}

#[test]
fn diff_reports_first_divergence() {
    let left = write_campaign_journal("diff-left.jsonl");
    let left_str = left.to_str().expect("utf8 path");

    // Identical files: exit 0.
    let out = run(&["diff", left_str, left_str]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout_of(&out).starts_with("identical:"));

    // Perturb one field on one line: exit 1, divergence names the line.
    let text = std::fs::read_to_string(&left).expect("read");
    let perturbed: Vec<String> = text
        .lines()
        .map(|l| {
            if l.contains("\"type\":\"detection\"") {
                l.replacen("\"detector\":", "\"detector\":9", 1)
            } else {
                l.to_string()
            }
        })
        .collect();
    assert_ne!(perturbed.join("\n"), text.trim_end(), "perturbation took");
    let right = scratch("diff-right.jsonl");
    std::fs::write(&right, perturbed.join("\n") + "\n").expect("write");
    let out = run(&["diff", left_str, right.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let report = stdout_of(&out);
    assert!(report.contains("line "), "report names a line: {report}");
}

#[test]
fn serve_answers_scrapes_then_exits_on_budget() {
    let journal_path = write_campaign_journal("serve.jsonl");
    let mut child = tracescope()
        .args([
            "serve",
            journal_path.to_str().expect("utf8 path"),
            "--addr",
            "127.0.0.1:0",
            "--max-requests",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tracescope serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("banner line")
        .expect("read banner line");
    let addr = banner
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"));

    let get = |target: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: locert\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };

    // The replayed journal shows up in /metrics as per-kind counters…
    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"));
    assert!(
        metrics.contains("locert_scope_journal_events_detection_total"),
        "metrics: {metrics}"
    );
    // …and in the tail as real entries.
    let tail = get("/journal/tail?n=1");
    assert!(tail.starts_with("HTTP/1.1 200 OK"));
    assert!(tail.trim_end().ends_with('}'), "tail: {tail}");

    // Budget of 2 exhausted: the process exits 0 by itself.
    let status = child.wait().expect("wait for serve");
    assert_eq!(status.code(), Some(0));
}
