//! A hand-rolled std-only HTTP/1.1 exporter.
//!
//! The workspace is offline and serde-free by policy, so there is no
//! hyper to lean on — and none is needed: the exporter speaks just
//! enough HTTP/1.1 for a Prometheus scraper or `curl`. One background
//! thread accepts connections sequentially (scrape traffic is one
//! client every few seconds; a connection backlog *is* the queue),
//! answers exactly one request per connection, and closes
//! (`Connection: close`).
//!
//! Routes:
//!
//! - `GET /metrics` — the live registry as Prometheus text
//!   ([`crate::prom::render`]);
//! - `GET /healthz` — `ok` (liveness for the eventual `locert-serve`);
//! - `GET /journal/tail?n=N` — the newest `N` journal entries as JSONL
//!   (default 32), exactly the lines `write_jsonl` would end with.
//!
//! Shutdown is cooperative: [`ScopeServer::shutdown`] sets a flag and
//! self-connects to unblock `accept`, then joins the thread. For
//! scripted use (CI), a request budget makes the server exit by itself
//! after N requests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tail length served when `/journal/tail` has no `n` parameter.
pub const DEFAULT_TAIL: usize = 32;

/// A running exporter; dropping it shuts the server down.
pub struct ScopeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScopeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves on a background thread until [`shutdown`], drop, or —
    /// when `max_requests` is set — that many requests have been
    /// answered.
    ///
    /// # Errors
    ///
    /// The bind error, when the address is unavailable.
    ///
    /// [`shutdown`]: ScopeServer::shutdown
    pub fn serve(addr: &str, max_requests: Option<usize>) -> io::Result<ScopeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("locert-scope-http".into())
            .spawn(move || accept_loop(&listener, &thread_stop, max_requests))?;
        Ok(ScopeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins the thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so a blocked `accept` returns and sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Waits for the server thread to exit on its own (request budget
    /// exhausted). No-op after [`ScopeServer::shutdown`].
    pub fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScopeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, max_requests: Option<usize>) {
    let mut served = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if let Some(max) = max_requests {
            if served >= max {
                return;
            }
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from `shutdown`
        }
        if handle_connection(stream).is_ok() {
            served += 1;
        }
    }
}

fn handle_connection(stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; the routes take no body.
    let mut header = String::new();
    for _ in 0..128 {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = crate::prom::render(&locert_trace::snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/journal/tail" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n="))
                        .and_then(|v| v.parse::<usize>().ok())
                })
                .unwrap_or(DEFAULT_TAIL);
            let snap = locert_trace::journal::snapshot();
            let skip = snap.entries.len().saturating_sub(n);
            let mut body = String::new();
            for entry in &snap.entries[skip..] {
                body.push_str(&locert_trace::journal::entry_to_jsonl_line(entry));
                body.push('\n');
            }
            respond(&mut stream, 200, "application/jsonl", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(code),
        body.len(),
    )?;
    stream.flush()
}
