//! Causal-chain reconstruction: why did vertex v reject?
//!
//! A fault-campaign round flushes as a contiguous block —
//! `RoundMark`, `FaultInjected`(s), `Detection`(s), `CampaignRound` —
//! so causality is recoverable by a single forward walk: track the
//! injections since the last round boundary, and pair each `Detection`
//! with the injection at its recorded `site`. The chain keeps the
//! journaled BFS distance (the journal has no graph; the distance *is*
//! the provenance `run_with_faults` computed), and picks up the
//! detector's rejecting `Verdict`, when one follows in the same round,
//! as the third link of `FaultInjected → Detection → Verdict`.
//!
//! A `Detection` whose site has no live injection is **unresolved** —
//! either the journal was truncated by the ring buffer (check
//! `dropped`) or a producer broke the flush contract. `tracescope why`
//! treats any unresolved detection as a failure; CI runs it as a smoke
//! gate over the S2 campaign journal.

use crate::query::assign_rounds;
use locert_trace::journal::{Event, JournalSnapshot};

/// One resolved `FaultInjected → Detection [→ Verdict]` chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// Logical round the chain happened in (`None` before any mark).
    pub round: Option<u64>,
    /// Fault model name.
    pub model: String,
    /// Injected site.
    pub site: u64,
    /// Sequence number of the `FaultInjected` event.
    pub injection_seq: u64,
    /// Whether the injection changed the presented world.
    pub effective: bool,
    /// The rejecting vertex.
    pub detector: u64,
    /// Sequence number of the `Detection` event.
    pub detection_seq: u64,
    /// Rejection reason code.
    pub reason: String,
    /// Journaled BFS distance from site to detector.
    pub distance: Option<u64>,
    /// Sequence number of the detector's rejecting `Verdict` in the
    /// same round, when the journal carries one.
    pub verdict_seq: Option<u64>,
}

/// A `Detection` that could not be paired with an injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unresolved {
    /// Sequence number of the orphaned `Detection`.
    pub detection_seq: u64,
    /// The rejecting vertex.
    pub detector: u64,
    /// The site the detection claims.
    pub site: u64,
}

/// Everything one resolution pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CausalReport {
    /// Resolved chains, in journal order.
    pub chains: Vec<CausalChain>,
    /// Orphaned detections, in journal order.
    pub unresolved: Vec<Unresolved>,
}

impl CausalReport {
    /// Whether every detection resolved to an injection.
    pub fn fully_resolved(&self) -> bool {
        self.unresolved.is_empty()
    }
}

/// Walks the journal once and reconstructs every causal chain.
pub fn resolve(snap: &JournalSnapshot) -> CausalReport {
    let rounds = assign_rounds(snap, None);
    let mut report = CausalReport::default();
    // Injections live since the last round boundary: (seq, model, site,
    // effective). Campaign plans carry one fault, but the resolver
    // accepts many — later injections at the same site shadow earlier
    // ones (`last()` below), matching injection order.
    let mut injections: Vec<(u64, String, u64, bool)> = Vec::new();
    // Chains whose detector still wants a Verdict link, by index into
    // `report.chains`; cleared at round boundaries.
    let mut pending_verdicts: Vec<usize> = Vec::new();
    for (i, entry) in snap.entries.iter().enumerate() {
        match &entry.event {
            Event::RoundMark { .. } | Event::CampaignRound { .. } => {
                injections.clear();
                pending_verdicts.clear();
            }
            Event::FaultInjected {
                model,
                site,
                effective,
            } => {
                injections.push((entry.seq, model.clone(), *site, *effective));
            }
            Event::Detection {
                model: _,
                site,
                detector,
                reason,
                distance,
            } => match injections.iter().rfind(|(_, _, s, _)| s == site) {
                Some((inj_seq, model, _, effective)) => {
                    pending_verdicts.push(report.chains.len());
                    report.chains.push(CausalChain {
                        round: rounds[i],
                        model: model.clone(),
                        site: *site,
                        injection_seq: *inj_seq,
                        effective: *effective,
                        detector: *detector,
                        detection_seq: entry.seq,
                        reason: reason.clone(),
                        distance: *distance,
                        verdict_seq: None,
                    });
                }
                None => report.unresolved.push(Unresolved {
                    detection_seq: entry.seq,
                    detector: *detector,
                    site: *site,
                }),
            },
            Event::Verdict {
                vertex,
                accepted: false,
                ..
            } => {
                for &ci in &pending_verdicts {
                    let chain = &mut report.chains[ci];
                    if chain.detector == *vertex && chain.verdict_seq.is_none() {
                        chain.verdict_seq = Some(entry.seq);
                    }
                }
            }
            _ => {}
        }
    }
    report
}

/// The chains explaining why `vertex` rejected.
pub fn why(snap: &JournalSnapshot, vertex: u64) -> Vec<CausalChain> {
    resolve(snap)
        .chains
        .into_iter()
        .filter(|c| c.detector == vertex)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_trace::journal::Entry;

    fn snap(events: Vec<Event>) -> JournalSnapshot {
        JournalSnapshot {
            entries: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Entry {
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn detection_resolves_to_its_round_local_injection() {
        let s = snap(vec![
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(0),
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 3,
                effective: true,
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 3,
                detector: 2,
                reason: "parent-distance-clash".into(),
                distance: Some(1),
            },
            Event::Verdict {
                vertex: 2,
                accepted: false,
                reason: Some("parent-distance-clash".into()),
                bits_read: 12,
            },
            Event::CampaignRound {
                model: "bit-flip".into(),
                run: 0,
                detected: true,
                locality: Some(1),
            },
            // Round 1: a detection at a site only injected in round 0
            // must NOT resolve across the boundary.
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(1),
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 3,
                detector: 4,
                reason: "parent-distance-clash".into(),
                distance: Some(0),
            },
        ]);
        let report = resolve(&s);
        assert_eq!(report.chains.len(), 1);
        let c = &report.chains[0];
        assert_eq!(
            (c.round, c.site, c.detector, c.distance, c.verdict_seq),
            (Some(0), 3, 2, Some(1), Some(3))
        );
        assert_eq!(report.unresolved.len(), 1);
        assert_eq!(report.unresolved[0].detector, 4);
        assert!(!report.fully_resolved());
        assert_eq!(why(&s, 2).len(), 1);
        assert!(why(&s, 9).is_empty());
    }

    #[test]
    fn later_injection_at_same_site_shadows_earlier() {
        let s = snap(vec![
            Event::FaultInjected {
                model: "truncate".into(),
                site: 5,
                effective: true,
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 5,
                effective: true,
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 5,
                detector: 5,
                reason: "malformed-certificate".into(),
                distance: Some(0),
            },
        ]);
        let report = resolve(&s);
        assert_eq!(report.chains.len(), 1);
        assert_eq!(report.chains[0].model, "bit-flip");
        assert_eq!(report.chains[0].injection_seq, 1);
    }
}
