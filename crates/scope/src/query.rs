//! A filter engine over journal snapshots.
//!
//! Filters compose conjunctively: an entry matches when it passes every
//! set field of the [`Query`]. Vertex filters match the vertex in *any*
//! role (detector, fault site, frame endpoint, …) — "show me everything
//! that touched vertex 7" is the question an operator actually asks.
//!
//! Round filtering uses the [`Event::RoundMark`] boundaries: an entry's
//! round is that of the most recent preceding mark (in the query's
//! scope, when one is given). Marks without a producer-assigned number
//! get ordinals by position per scope — well-defined because journals
//! are deterministic for a fixed seed.

use locert_trace::journal::{Entry, Event, JournalSnapshot};
use std::collections::BTreeMap;

/// The JSONL `type` tag of an event — the vocabulary `--kind` filters
/// use, identical to the wire format's.
pub fn kind_of(event: &Event) -> &'static str {
    match event {
        Event::ProverStart { .. } => "prover-start",
        Event::ProverEnd { .. } => "prover-end",
        Event::Verdict { .. } => "verdict",
        Event::CertMutated { .. } => "cert-mutated",
        Event::FaultInjected { .. } => "fault-injected",
        Event::Detection { .. } => "detection",
        Event::CampaignRound { .. } => "campaign-round",
        Event::OracleDisagreement { .. } => "oracle-disagreement",
        Event::ShrinkStep { .. } => "shrink-step",
        Event::NetSend { .. } => "net-send",
        Event::NetDrop { .. } => "net-drop",
        Event::NetRetry { .. } => "net-retry",
        Event::NetCrash { .. } => "net-crash",
        Event::NetVerdict { .. } => "net-verdict",
        Event::ServeRequest { .. } => "serve-request",
        Event::RoundMark { .. } => "round-mark",
        Event::Marker { .. } => "marker",
    }
}

/// Every vertex the event mentions, in any role.
pub fn vertices_of(event: &Event) -> Vec<u64> {
    match event {
        Event::Verdict { vertex, .. }
        | Event::CertMutated { vertex }
        | Event::NetVerdict { vertex, .. } => vec![*vertex],
        Event::FaultInjected { site, .. } => vec![*site],
        Event::Detection { site, detector, .. } => vec![*site, *detector],
        Event::NetSend { src, dst, .. } | Event::NetDrop { src, dst, .. } => vec![*src, *dst],
        Event::NetRetry { node, .. } | Event::NetCrash { node, .. } => vec![*node],
        Event::ProverStart { .. }
        | Event::ProverEnd { .. }
        | Event::CampaignRound { .. }
        | Event::OracleDisagreement { .. }
        | Event::ShrinkStep { .. }
        | Event::ServeRequest { .. }
        | Event::RoundMark { .. }
        | Event::Marker { .. } => Vec::new(),
    }
}

/// The event's name-like field: scheme, fault model, oracle case, round
/// scope, or marker label.
pub fn name_of(event: &Event) -> Option<&str> {
    match event {
        Event::ProverStart { scheme } | Event::ProverEnd { scheme, .. } => Some(scheme),
        Event::FaultInjected { model, .. }
        | Event::Detection { model, .. }
        | Event::CampaignRound { model, .. } => Some(model),
        Event::OracleDisagreement { case, .. } | Event::ShrinkStep { case, .. } => Some(case),
        Event::ServeRequest { scheme, .. } => Some(scheme),
        Event::RoundMark { scope, .. } => Some(scope),
        Event::Marker { label } => Some(label),
        _ => None,
    }
}

/// A conjunctive journal filter. Unset fields match everything.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Event kinds ([`kind_of`] tags) to keep; empty keeps all.
    pub kinds: Vec<String>,
    /// Keep entries mentioning this vertex in any role.
    pub vertex: Option<u64>,
    /// Keep entries whose name-like field ([`name_of`]) equals this.
    pub name: Option<String>,
    /// Keep entries in this logical round (see [`assign_rounds`]).
    pub round: Option<u64>,
    /// Restrict round tracking to marks with this scope.
    pub scope: Option<String>,
}

impl Query {
    /// Whether the stateless filters (kind, vertex, name) pass.
    fn matches_stateless(&self, event: &Event) -> bool {
        if !self.kinds.is_empty() && !self.kinds.iter().any(|k| k == kind_of(event)) {
            return false;
        }
        if let Some(v) = self.vertex {
            if !vertices_of(event).contains(&v) {
                return false;
            }
        }
        if let Some(name) = &self.name {
            if name_of(event) != Some(name.as_str()) {
                return false;
            }
        }
        true
    }
}

/// The logical round each entry belongs to, parallel to
/// `snap.entries`: the effective round of the most recent
/// [`Event::RoundMark`] (restricted to `scope` when given), `None`
/// before the first mark. Marks with `round: None` receive ordinals by
/// position, counted separately per scope starting at 0.
pub fn assign_rounds(snap: &JournalSnapshot, scope: Option<&str>) -> Vec<Option<u64>> {
    let mut ordinals: BTreeMap<&str, u64> = BTreeMap::new();
    let mut current = None;
    snap.entries
        .iter()
        .map(|entry| {
            if let Event::RoundMark { scope: s, round } = &entry.event {
                if scope.is_none_or(|want| want == s) {
                    let effective = round.unwrap_or_else(|| {
                        let next = ordinals.entry(s.as_str()).or_insert(0);
                        let v = *next;
                        *next += 1;
                        v
                    });
                    current = Some(effective);
                }
            }
            current
        })
        .collect()
}

/// Runs the query over a snapshot, returning matching entries in journal
/// order (round marks themselves match a round filter when they open
/// that round).
pub fn run(snap: &JournalSnapshot, q: &Query) -> Vec<Entry> {
    let rounds = q
        .round
        .is_some()
        .then(|| assign_rounds(snap, q.scope.as_deref()));
    snap.entries
        .iter()
        .enumerate()
        .filter(|(i, entry)| {
            if let (Some(want), Some(rounds)) = (q.round, &rounds) {
                if rounds[*i] != Some(want) {
                    return false;
                }
            }
            q.matches_stateless(&entry.event)
        })
        .map(|(_, entry)| entry.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(events: Vec<Event>) -> JournalSnapshot {
        JournalSnapshot {
            entries: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Entry {
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
        }
    }

    fn campaign_snap() -> JournalSnapshot {
        snap(vec![
            Event::Marker { label: "s2".into() },
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(0),
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 3,
                effective: true,
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 3,
                detector: 2,
                reason: "parent-distance-clash".into(),
                distance: Some(1),
            },
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(1),
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 7,
                effective: false,
            },
        ])
    }

    #[test]
    fn kind_and_vertex_filters_compose() {
        let s = campaign_snap();
        let q = Query {
            kinds: vec!["detection".into()],
            ..Default::default()
        };
        assert_eq!(run(&s, &q).len(), 1);
        let q = Query {
            vertex: Some(3),
            ..Default::default()
        };
        // site of both the injection and the detection.
        assert_eq!(run(&s, &q).len(), 2);
        let q = Query {
            kinds: vec!["fault-injected".into()],
            vertex: Some(3),
            ..Default::default()
        };
        assert_eq!(run(&s, &q).len(), 1);
        let q = Query {
            name: Some("bit-flip".into()),
            ..Default::default()
        };
        // Two injections and one detection carry the model name.
        assert_eq!(run(&s, &q).len(), 3);
    }

    #[test]
    fn round_filter_uses_marks() {
        let s = campaign_snap();
        let q = Query {
            round: Some(0),
            ..Default::default()
        };
        let hits = run(&s, &q);
        // The mark itself, the injection, and the detection.
        assert_eq!(hits.len(), 3);
        assert!(hits
            .iter()
            .all(|e| !matches!(&e.event, Event::Marker { .. })));
        let q = Query {
            round: Some(1),
            kinds: vec!["fault-injected".into()],
            ..Default::default()
        };
        let hits = run(&s, &q);
        assert_eq!(hits.len(), 1);
        assert!(matches!(
            &hits[0].event,
            Event::FaultInjected { site: 7, .. }
        ));
    }

    #[test]
    fn unnumbered_marks_get_per_scope_ordinals() {
        let s = snap(vec![
            Event::RoundMark {
                scope: "core.verify".into(),
                round: None,
            },
            Event::Verdict {
                vertex: 0,
                accepted: true,
                reason: None,
                bits_read: 8,
            },
            Event::RoundMark {
                scope: "core.verify".into(),
                round: None,
            },
            Event::Verdict {
                vertex: 0,
                accepted: false,
                reason: Some("root-mismatch".into()),
                bits_read: 8,
            },
        ]);
        let rounds = assign_rounds(&s, Some("core.verify"));
        assert_eq!(rounds, vec![Some(0), Some(0), Some(1), Some(1)]);
        let q = Query {
            round: Some(1),
            scope: Some("core.verify".into()),
            kinds: vec!["verdict".into()],
            ..Default::default()
        };
        let hits = run(&s, &q);
        assert_eq!(hits.len(), 1);
        assert!(matches!(
            &hits[0].event,
            Event::Verdict {
                accepted: false,
                ..
            }
        ));
    }
}
