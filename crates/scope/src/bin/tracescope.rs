//! tracescope — query, explain, diff, window, flame, tail, and serve
//! locert journals and metrics.
//!
//! ```text
//! tracescope query   JOURNAL [--kind K]… [--vertex V] [--name N]
//!                            [--round R] [--scope S] [--limit N] [--count]
//! tracescope why     JOURNAL [--vertex V]
//! tracescope diff    LEFT RIGHT
//! tracescope windows JOURNAL [--scope S] [--interval N]
//! tracescope flame   METRICS_JSON [--out PATH]
//! tracescope tail    JOURNAL [-n N]
//! tracescope serve   [JOURNAL] [--addr HOST:PORT] [--max-requests N]
//! ```
//!
//! Exit codes: 0 success (for `diff`: identical; for `why`: fully
//! resolved), 1 finding (divergence / unresolved detection), 2 usage or
//! I/O error — the same convention as `trace-check` and `bench_diff`,
//! so CI gates read naturally.

use locert_scope::{causal, diff, flame, http, query, window};
use locert_trace::journal::{self, JournalSnapshot};
use locert_trace::json;
use std::process::ExitCode;

const USAGE: &str = "\
usage: tracescope <command> …
  query   JOURNAL [--kind K]… [--vertex V] [--name N] [--round R]
                  [--scope S] [--limit N] [--count]
  why     JOURNAL [--vertex V]         causal chains (all detections when
                                       no vertex; exit 1 if any detection
                                       is unresolved)
  diff    LEFT RIGHT                   first divergence (exit 1) or
                                       identical (exit 0)
  windows JOURNAL [--scope S] [--interval N]
                                       per-window event counts over
                                       logical rounds (default interval 1)
  flame   METRICS_JSON [--out PATH]    collapsed-stack flamegraph export
  tail    JOURNAL [-n N]               newest N entries as JSONL
  serve   [JOURNAL] [--addr HOST:PORT] [--max-requests N]
                                       HTTP exporter: /metrics /healthz
                                       /journal/tail?n=";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tracescope: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn read_file(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("tracescope: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn load_journal(path: &str) -> Result<JournalSnapshot, ExitCode> {
    let text = read_file(path)?;
    journal::from_jsonl(&text).map_err(|e| {
        eprintln!("tracescope: {path}: {e}");
        ExitCode::from(2)
    })
}

/// Consumes `--flag VALUE` from `args`; `Ok(None)` when absent.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    match take_opt(args, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: bad value {v:?}")),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn positional(args: Vec<String>, want: usize, what: &str) -> Result<Vec<String>, String> {
    if let Some(stray) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option {stray}"));
    }
    if args.len() != want {
        return Err(format!("expected {what}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage_error("missing command");
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "query" => cmd_query(args),
        "why" => cmd_why(args),
        "diff" => cmd_diff(args),
        "windows" => cmd_windows(args),
        "flame" => cmd_flame(args),
        "tail" => cmd_tail(args),
        "serve" => cmd_serve(args),
        other => return usage_error(&format!("unknown command {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => usage_error(&msg),
    }
}

fn cmd_query(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut q = query::Query::default();
    while let Some(kind) = take_opt(&mut args, "--kind")? {
        q.kinds.push(kind);
    }
    q.vertex = take_parsed(&mut args, "--vertex")?;
    q.name = take_opt(&mut args, "--name")?;
    q.round = take_parsed(&mut args, "--round")?;
    q.scope = take_opt(&mut args, "--scope")?;
    let limit: Option<usize> = take_parsed(&mut args, "--limit")?;
    let count_only = take_flag(&mut args, "--count");
    let [path] = <[String; 1]>::try_from(positional(args, 1, "one JOURNAL path")?).unwrap();
    let snap = match load_journal(&path) {
        Ok(s) => s,
        Err(code) => return Ok(code),
    };
    let hits = query::run(&snap, &q);
    if count_only {
        println!("{}", hits.len());
        return Ok(ExitCode::SUCCESS);
    }
    for entry in hits.iter().take(limit.unwrap_or(usize::MAX)) {
        println!("{}", journal::entry_to_jsonl_line(entry));
    }
    if let Some(limit) = limit {
        if hits.len() > limit {
            eprintln!("… {} more (raise --limit)", hits.len() - limit);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_why(mut args: Vec<String>) -> Result<ExitCode, String> {
    let vertex: Option<u64> = take_parsed(&mut args, "--vertex")?;
    let [path] = <[String; 1]>::try_from(positional(args, 1, "one JOURNAL path")?).unwrap();
    let snap = match load_journal(&path) {
        Ok(s) => s,
        Err(code) => return Ok(code),
    };
    let report = causal::resolve(&snap);
    let chains: Vec<&causal::CausalChain> = report
        .chains
        .iter()
        .filter(|c| vertex.is_none_or(|v| c.detector == v))
        .collect();
    for c in &chains {
        let round = c.round.map_or_else(|| "-".to_string(), |r| r.to_string());
        let distance = c
            .distance
            .map_or_else(|| "unreachable".to_string(), |d| format!("distance {d}"));
        let verdict = c
            .verdict_seq
            .map_or_else(String::new, |s| format!(" -> verdict seq {s}"));
        println!(
            "vertex {} rejected ({}) in round {round}: {} fault injected at site {} \
             (seq {}, effective {}) -> detection seq {} at {distance}{verdict}",
            c.detector, c.reason, c.model, c.site, c.injection_seq, c.effective, c.detection_seq
        );
    }
    if chains.is_empty() {
        println!(
            "no causal chains{}",
            vertex.map_or_else(String::new, |v| format!(" for vertex {v}"))
        );
    }
    let unresolved: Vec<_> = report
        .unresolved
        .iter()
        .filter(|u| vertex.is_none_or(|v| u.detector == v))
        .collect();
    if !unresolved.is_empty() {
        for u in &unresolved {
            eprintln!(
                "UNRESOLVED: detection seq {} (detector {}, claimed site {}) has no \
                 matching injection{}",
                u.detection_seq,
                u.detector,
                u.site,
                if snap.dropped > 0 {
                    format!(" — journal dropped {} events", snap.dropped)
                } else {
                    String::new()
                }
            );
        }
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: Vec<String>) -> Result<ExitCode, String> {
    let [left_path, right_path] =
        <[String; 2]>::try_from(positional(args, 2, "LEFT and RIGHT journal paths")?).unwrap();
    let (left, right) = match (read_file(&left_path), read_file(&right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(code), _) | (_, Err(code)) => return Ok(code),
    };
    match diff::first_divergence(&left, &right) {
        None => {
            println!("identical: {left_path} == {right_path}");
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            print!("{d}");
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_windows(mut args: Vec<String>) -> Result<ExitCode, String> {
    let scope = take_opt(&mut args, "--scope")?;
    let interval: u64 = take_parsed(&mut args, "--interval")?.unwrap_or(1);
    let [path] = <[String; 1]>::try_from(positional(args, 1, "one JOURNAL path")?).unwrap();
    let snap = match load_journal(&path) {
        Ok(s) => s,
        Err(code) => return Ok(code),
    };
    let windows = window::journal_windows(&snap, scope.as_deref(), interval);
    if windows.is_empty() {
        println!("no windowed rounds (journal has no round marks in scope)");
        return Ok(ExitCode::SUCCESS);
    }
    for w in &windows {
        let counts: Vec<String> = w
            .counters
            .iter()
            .map(|(k, v)| format!("{}={v}", k.trim_start_matches("events.")))
            .collect();
        println!(
            "window {} (rounds {}..{}): {}",
            w.window,
            w.start_round,
            w.end_round,
            counts.join(" ")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out_path = take_opt(&mut args, "--out")?;
    let [path] = <[String; 1]>::try_from(positional(args, 1, "one METRICS_JSON path")?).unwrap();
    let text = match read_file(&path) {
        Ok(t) => t,
        Err(code) => return Ok(code),
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracescope: {path}: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    let folded = match flame::from_metrics_json(&doc) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tracescope: {path}: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    match out_path {
        Some(out) => {
            if let Err(e) = std::fs::write(&out, &folded) {
                eprintln!("tracescope: cannot write {out}: {e}");
                return Ok(ExitCode::from(2));
            }
            eprintln!("wrote {out} ({} stacks)", folded.lines().count());
        }
        None => print!("{folded}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_tail(mut args: Vec<String>) -> Result<ExitCode, String> {
    let n: usize = take_parsed(&mut args, "-n")?.unwrap_or(http::DEFAULT_TAIL);
    let [path] = <[String; 1]>::try_from(positional(args, 1, "one JOURNAL path")?).unwrap();
    let snap = match load_journal(&path) {
        Ok(s) => s,
        Err(code) => return Ok(code),
    };
    let skip = snap.entries.len().saturating_sub(n);
    for entry in &snap.entries[skip..] {
        println!("{}", journal::entry_to_jsonl_line(entry));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(mut args: Vec<String>) -> Result<ExitCode, String> {
    let addr = take_opt(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:9184".to_string());
    let max_requests: Option<usize> = take_parsed(&mut args, "--max-requests")?;
    if args.len() > 1 {
        return Err("expected at most one JOURNAL path".to_string());
    }
    // Replaying a journal file populates both surfaces: the ring buffer
    // behind /journal/tail, and per-kind counters (plus the recorded
    // drop count) behind /metrics.
    if let Some(path) = args.first() {
        let snap = match load_journal(path) {
            Ok(s) => s,
            Err(code) => return Ok(code),
        };
        locert_trace::enable();
        locert_trace::journal::set_capacity(snap.entries.len().max(journal::DEFAULT_CAPACITY));
        locert_trace::journal::enable();
        for entry in &snap.entries {
            locert_trace::add(
                &format!("scope.journal.events.{}", query::kind_of(&entry.event)),
                1,
            );
        }
        locert_trace::add(journal::DROPPED_EVENTS_COUNTER, snap.dropped);
        journal::append_events(snap.entries.into_iter().map(|e| e.event));
        eprintln!("replayed {path}");
    } else {
        locert_trace::enable();
        locert_trace::journal::enable();
    }
    let mut server = match http::ScopeServer::serve(&addr, max_requests) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracescope: cannot bind {addr}: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    println!("listening on http://{}", server.addr());
    if max_requests.is_some() {
        server.join();
    } else {
        // Serve until killed.
        loop {
            std::thread::park();
        }
    }
    Ok(ExitCode::SUCCESS)
}
