//! First-divergence diff of two JSONL journals.
//!
//! The determinism contract says a fixed seed yields a *byte-identical*
//! journal at any thread count, so the diff is deliberately strict:
//! lines are compared as text (ignoring only trailing whitespace and
//! blank lines), and the first mismatch is reported with its line
//! number and both renderings. When both lines parse as JSON objects
//! the divergence also names the first differing top-level field —
//! "same event, different `seq`" and "different event kind" read very
//! differently during a bisect.

use locert_trace::json::{self, Value};

/// The first point where two journals disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number (header line is 1) of the first mismatch,
    /// counted over non-blank lines.
    pub line: usize,
    /// The left journal's line (`None`: left ended early).
    pub left: Option<String>,
    /// The right journal's line (`None`: right ended early).
    pub right: Option<String>,
    /// First differing top-level JSON field, when both lines parse.
    pub field: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergence at line {}:", self.line)?;
        match &self.left {
            Some(l) => writeln!(f, "  left:  {l}")?,
            None => writeln!(f, "  left:  <journal ends>")?,
        }
        match &self.right {
            Some(r) => writeln!(f, "  right: {r}")?,
            None => writeln!(f, "  right: <journal ends>")?,
        }
        if let Some(field) = &self.field {
            writeln!(f, "  field: {field}")?;
        }
        Ok(())
    }
}

fn first_differing_field(a: &str, b: &str) -> Option<String> {
    let (Ok(Value::Obj(a)), Ok(Value::Obj(b))) = (json::parse(a), json::parse(b)) else {
        return None;
    };
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter().find(|k| a.get(*k) != b.get(*k)).cloned()
}

/// Compares two JSONL documents line by line; `None` means identical
/// (modulo blank lines and trailing whitespace).
pub fn first_divergence(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines().map(str::trim_end).filter(|s| !s.is_empty());
    let mut r = right.lines().map(str::trim_end).filter(|s| !s.is_empty());
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => {}
            (a, b) => {
                return Some(Divergence {
                    line,
                    field: match (a, b) {
                        (Some(a), Some(b)) => first_differing_field(a, b),
                        _ => None,
                    },
                    left: a.map(str::to_string),
                    right: b.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"dropped\":0,\"entries\":2,\"schema\":\"locert-journal/v1\"}";

    #[test]
    fn identical_journals_do_not_diverge() {
        let j = format!("{HEADER}\n{{\"seq\":0,\"type\":\"marker\",\"label\":\"x\"}}\n");
        assert_eq!(first_divergence(&j, &j), None);
        // Trailing whitespace and blank lines are cosmetic.
        let padded = format!("{j}\n\n");
        assert_eq!(first_divergence(&j, &padded), None);
    }

    #[test]
    fn mismatch_reports_line_and_field() {
        let a = format!(
            "{HEADER}\n{{\"label\":\"x\",\"seq\":0,\"type\":\"marker\"}}\n\
             {{\"label\":\"y\",\"seq\":1,\"type\":\"marker\"}}\n"
        );
        let b = format!(
            "{HEADER}\n{{\"label\":\"x\",\"seq\":0,\"type\":\"marker\"}}\n\
             {{\"label\":\"z\",\"seq\":1,\"type\":\"marker\"}}\n"
        );
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.line, 3);
        assert_eq!(d.field.as_deref(), Some("label"));
        assert!(d.left.as_deref().unwrap().contains("\"y\""));
        assert!(d.right.as_deref().unwrap().contains("\"z\""));
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = format!("{HEADER}\n{{\"label\":\"x\",\"seq\":0,\"type\":\"marker\"}}\n");
        let b = HEADER.to_string();
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.line, 2);
        assert!(d.right.is_none());
        // Symmetric.
        let d = first_divergence(&b, &a).expect("diverges");
        assert!(d.left.is_none());
    }
}
