//! Fixed-interval window deltas, driven by logical rounds.
//!
//! A wall-clock window would make every windowed series
//! schedule-dependent; locert's workloads already carry a deterministic
//! logical clock — campaign run indices, verification passes — so
//! windows are keyed to *rounds*: window `w` covers rounds
//! `[w·interval, (w+1)·interval)`. Two engines share the
//! [`WindowDelta`] shape:
//!
//! - [`WindowTracker`] watches the live registry: feed it a
//!   [`Snapshot`] per observed round and it emits counter/histogram
//!   deltas each time the round number crosses into a new window;
//! - [`journal_windows`] replays a finished journal, bucketing logical
//!   rounds (from `RoundMark` boundaries, see
//!   [`crate::query::assign_rounds`]) and counting event kinds per
//!   window.
//!
//! Both are pure functions of their inputs: deterministic rounds in,
//! deterministic windows out.

use crate::query::{assign_rounds, kind_of};
use locert_trace::journal::JournalSnapshot;
use locert_trace::Snapshot;
use std::collections::BTreeMap;

/// One closed window's worth of change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowDelta {
    /// Window index (`start_round / interval`).
    pub window: u64,
    /// First round covered (inclusive).
    pub start_round: u64,
    /// One past the last round covered.
    pub end_round: u64,
    /// Counter increments inside the window (for journal windows:
    /// event counts keyed `events.<kind>`). Zero deltas are omitted.
    pub counters: BTreeMap<String, u64>,
    /// Histogram observation-count increments inside the window. Zero
    /// deltas are omitted.
    pub histogram_counts: BTreeMap<String, u64>,
}

/// Live windowing over the metrics registry. Feed it monotone rounds;
/// it emits one delta per *completed* window (windows in which no
/// observation landed produce nothing — locert rounds are dense, and
/// an empty window has an all-zero delta anyway).
#[derive(Debug)]
pub struct WindowTracker {
    interval: u64,
    /// Window index and registry state at the last observation.
    last: Option<(u64, Snapshot)>,
}

fn counter_deltas(from: &Snapshot, to: &Snapshot) -> BTreeMap<String, u64> {
    to.counters
        .iter()
        .filter_map(|(name, &v)| {
            let before = from.counters.get(name).copied().unwrap_or(0);
            let d = v.saturating_sub(before);
            (d > 0).then(|| (name.clone(), d))
        })
        .collect()
}

fn histogram_count_deltas(from: &Snapshot, to: &Snapshot) -> BTreeMap<String, u64> {
    to.histograms
        .iter()
        .filter_map(|(name, h)| {
            let before = from.histograms.get(name).map_or(0, |h| h.count);
            let d = h.count.saturating_sub(before);
            (d > 0).then(|| (name.clone(), d))
        })
        .collect()
}

impl WindowTracker {
    /// A tracker with windows of `interval` rounds (minimum 1).
    pub fn new(interval: u64) -> WindowTracker {
        WindowTracker {
            interval: interval.max(1),
            last: None,
        }
    }

    /// The configured window width in rounds.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Observes the registry at logical round `round`. Returns the
    /// delta of the previously open window when `round` has moved past
    /// it; rounds must not decrease (a decrease restarts tracking).
    pub fn observe(&mut self, round: u64, snap: &Snapshot) -> Option<WindowDelta> {
        let window = round / self.interval;
        match self.last.take() {
            Some((prev_window, prev_snap)) if prev_window < window => {
                let delta = WindowDelta {
                    window: prev_window,
                    start_round: prev_window * self.interval,
                    end_round: (prev_window + 1) * self.interval,
                    counters: counter_deltas(&prev_snap, snap),
                    histogram_counts: histogram_count_deltas(&prev_snap, snap),
                };
                self.last = Some((window, snap.clone()));
                Some(delta)
            }
            Some((prev_window, prev_snap)) if prev_window == window => {
                self.last = Some((prev_window, prev_snap));
                None
            }
            // First observation, or rounds went backwards: restart.
            _ => {
                self.last = Some((window, snap.clone()));
                None
            }
        }
    }

    /// Closes the currently open window (end of run) and returns its
    /// delta against `snap`.
    pub fn finish(&mut self, snap: &Snapshot) -> Option<WindowDelta> {
        let (window, prev_snap) = self.last.take()?;
        Some(WindowDelta {
            window,
            start_round: window * self.interval,
            end_round: (window + 1) * self.interval,
            counters: counter_deltas(&prev_snap, snap),
            histogram_counts: histogram_count_deltas(&prev_snap, snap),
        })
    }
}

/// Buckets a finished journal into fixed windows of logical rounds
/// (marks in `scope`, see [`assign_rounds`]) and counts event kinds per
/// window (keys `events.<kind>`; round marks themselves are counted
/// too). Entries before the first mark are not windowed.
pub fn journal_windows(
    snap: &JournalSnapshot,
    scope: Option<&str>,
    interval: u64,
) -> Vec<WindowDelta> {
    let interval = interval.max(1);
    let rounds = assign_rounds(snap, scope);
    let mut windows: BTreeMap<u64, WindowDelta> = BTreeMap::new();
    for (entry, round) in snap.entries.iter().zip(&rounds) {
        let Some(round) = round else { continue };
        let w = round / interval;
        let delta = windows.entry(w).or_insert_with(|| WindowDelta {
            window: w,
            start_round: w * interval,
            end_round: (w + 1) * interval,
            ..WindowDelta::default()
        });
        *delta
            .counters
            .entry(format!("events.{}", kind_of(&entry.event)))
            .or_insert(0) += 1;
    }
    windows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_trace::journal::{Entry, Event};

    fn snap_with(counters: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            counters: counters.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn tracker_emits_deltas_at_window_boundaries() {
        let mut t = WindowTracker::new(4);
        assert_eq!(t.observe(0, &snap_with(&[("x", 10)])), None);
        assert_eq!(t.observe(3, &snap_with(&[("x", 14)])), None, "same window");
        let d = t
            .observe(4, &snap_with(&[("x", 20), ("y", 2)]))
            .expect("window 0 closed");
        assert_eq!((d.window, d.start_round, d.end_round), (0, 0, 4));
        assert_eq!(d.counters["x"], 10, "delta against window-0 entry state");
        assert_eq!(d.counters["y"], 2);
        // Skipping windows closes the open one against the new state.
        let d = t
            .observe(12, &snap_with(&[("x", 21), ("y", 2)]))
            .expect("closed");
        assert_eq!(d.window, 1);
        assert_eq!(d.counters.get("x"), Some(&1));
        assert_eq!(d.counters.get("y"), None, "zero deltas omitted");
        let d = t.finish(&snap_with(&[("x", 25), ("y", 2)])).expect("final");
        assert_eq!(d.window, 3);
        assert_eq!(d.counters["x"], 4);
        assert!(t.finish(&snap_with(&[])).is_none(), "finish consumes");
    }

    #[test]
    fn journal_windows_bucket_rounds() {
        let events = vec![
            Event::Marker {
                label: "pre".into(),
            }, // before any mark: unwindowed
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(0),
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 1,
                effective: true,
            },
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(1),
            },
            Event::FaultInjected {
                model: "bit-flip".into(),
                site: 2,
                effective: true,
            },
            Event::RoundMark {
                scope: "core.faults.campaign".into(),
                round: Some(2),
            },
            Event::Detection {
                model: "bit-flip".into(),
                site: 2,
                detector: 2,
                reason: "malformed-certificate".into(),
                distance: Some(0),
            },
        ];
        let s = JournalSnapshot {
            entries: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Entry {
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
        };
        let ws = journal_windows(&s, Some("core.faults.campaign"), 2);
        assert_eq!(ws.len(), 2);
        assert_eq!(
            (ws[0].window, ws[0].start_round, ws[0].end_round),
            (0, 0, 2)
        );
        assert_eq!(ws[0].counters["events.round-mark"], 2);
        assert_eq!(ws[0].counters["events.fault-injected"], 2);
        assert_eq!(ws[1].window, 1);
        assert_eq!(ws[1].counters["events.detection"], 1);
        assert_eq!(ws[1].counters.get("events.marker"), None);
    }
}
