//! `locert-scope` — the *dynamic* half of locert's observability.
//!
//! The span/counter layer of `locert-trace` aggregates and the journal
//! records; this crate is what reads, watches, and serves them while (or
//! after) a process runs:
//!
//! - [`query`]: a filter engine over journal snapshots — by event kind,
//!   vertex (in any role), scheme/model name, and logical round;
//! - [`causal`]: causal-chain reconstruction for fault campaigns,
//!   resolving each `Detection` back to the `FaultInjected` event that
//!   caused it ("why did vertex v reject?");
//! - [`diff`]: first-divergence comparison of two JSONL journals — the
//!   tooling behind the determinism contract (same seed, any thread
//!   count ⇒ byte-identical journals);
//! - [`flame`]: collapsed-stack flamegraph export from the aggregated
//!   span forest;
//! - [`window`]: fixed-interval window deltas over registry snapshots
//!   and journals, driven by logical round numbers rather than wall
//!   clock, so windows are as deterministic as the rounds themselves;
//! - [`http`]: a hand-rolled std-only HTTP/1.1 exporter serving
//!   [`prom`]-formatted `/metrics`, `/healthz`, and `/journal/tail` —
//!   the first networked surface on the road to `locert-serve`.
//!
//! The `tracescope` binary wraps all of it as a CLI. Everything here is
//! read-side: this crate never records, so depending on it adds nothing
//! to instrumented hot paths.

pub mod causal;
pub mod diff;
pub mod flame;
pub mod http;
pub mod prom;
pub mod query;
pub mod window;
