//! Collapsed-stack flamegraph export from the aggregated span forest.
//!
//! Emits the `folded` format every flamegraph renderer reads (one
//! `root;child;leaf <value>` line per stack, value = *self* time in
//! nanoseconds, i.e. a span's total minus its children's totals). The
//! span forest already aggregates by call-tree path, so each path
//! appears exactly once and line order is the forest's deterministic
//! (sorted) order.

use locert_trace::json::Value;
use locert_trace::SpanNode;
use std::fmt::Write as _;

/// Parses one exported span-tree node (`{"name","calls","total_ns",
/// "children"}`, the shape `snapshot_to_json` writes).
pub fn span_from_json(v: &Value) -> Option<SpanNode> {
    let as_u64 = |key: &str| {
        let x = v.get(key)?.as_num()?;
        (x.is_finite() && x >= 0.0).then_some(x as u64)
    };
    Some(SpanNode {
        name: v.get("name")?.as_str()?.to_string(),
        calls: as_u64("calls")?,
        total_ns: as_u64("total_ns")?,
        children: v
            .get("children")?
            .as_arr()?
            .iter()
            .map(span_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn walk(prefix: &str, span: &SpanNode, out: &mut String) {
    let frame = if prefix.is_empty() {
        span.name.replace([';', '\n'], "_")
    } else {
        format!("{prefix};{}", span.name.replace([';', '\n'], "_"))
    };
    let children_ns: u64 = span.children.iter().map(|c| c.total_ns).sum();
    let self_ns = span.total_ns.saturating_sub(children_ns);
    if self_ns > 0 {
        let _ = writeln!(out, "{frame} {self_ns}");
    }
    for child in &span.children {
        walk(&frame, child, out);
    }
}

/// Renders a span forest as folded stacks, optionally under a synthetic
/// root frame (used to keep per-experiment sections apart). Spans with
/// zero self time (pure wrappers, `event!` marks) emit no line of their
/// own — their children carry the weight.
pub fn collapse(root: Option<&str>, spans: &[SpanNode]) -> String {
    let mut out = String::new();
    let prefix = root.unwrap_or("");
    for span in spans {
        walk(prefix, span, &mut out);
    }
    out
}

/// Extracts folded stacks from a parsed metrics document: either a
/// `locert-trace/v2` file (spans live under `timings[].telemetry.spans`,
/// each section rooted at its experiment id) or any object with a
/// top-level `spans` array (a bare exported snapshot).
///
/// # Errors
///
/// A message naming what was missing or malformed.
pub fn from_metrics_json(doc: &Value) -> Result<String, String> {
    let collapse_arr = |root: Option<&str>, arr: &[Value]| -> Result<String, String> {
        let spans = arr
            .iter()
            .map(span_from_json)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "malformed span node".to_string())?;
        Ok(collapse(root, &spans))
    };
    if let Some(timings) = doc.get("timings").and_then(Value::as_arr) {
        let mut out = String::new();
        for entry in timings {
            let id = entry
                .get("id")
                .and_then(Value::as_str)
                .ok_or("timings entry without id")?;
            let spans = entry
                .get("telemetry")
                .and_then(|t| t.get("spans"))
                .and_then(Value::as_arr)
                .ok_or("timings entry without telemetry.spans")?;
            out.push_str(&collapse_arr(Some(id), spans)?);
        }
        return Ok(out);
    }
    if let Some(spans) = doc.get("spans").and_then(Value::as_arr) {
        return collapse_arr(None, spans);
    }
    Err("no spans found: expected a locert-trace/v2 document or an object with `spans`".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, total_ns: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            calls: 1,
            total_ns,
            children,
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let forest = vec![node(
            "outer",
            10_000,
            vec![
                node("inner", 4_000, Vec::new()),
                node("leaf", 1_000, Vec::new()),
            ],
        )];
        let folded = collapse(None, &forest);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec!["outer 5000", "outer;inner 4000", "outer;leaf 1000"]
        );
    }

    #[test]
    fn zero_self_wrappers_are_omitted_and_names_sanitized() {
        let forest = vec![node("wrap", 3_000, vec![node("a;b", 3_000, Vec::new())])];
        let folded = collapse(Some("e1"), &forest);
        assert_eq!(folded.lines().collect::<Vec<_>>(), vec!["e1;wrap;a_b 3000"]);
    }

    #[test]
    fn v2_document_roots_sections_at_experiment_ids() {
        let doc = locert_trace::json::parse(
            r#"{"schema":"locert-trace/v2","timings":[
                {"id":"e1","wall_s":0.5,"telemetry":{"spans":[
                    {"name":"e1.work","calls":1,"total_ns":2000,"children":[]}]}},
                {"id":"s2","wall_s":0.1,"telemetry":{"spans":[
                    {"name":"s2.campaign","calls":1,"total_ns":1000,"children":[]}]}}
            ]}"#,
        )
        .expect("parses");
        let folded = from_metrics_json(&doc).expect("collapses");
        assert_eq!(
            folded.lines().collect::<Vec<_>>(),
            vec!["e1;e1.work 2000", "s2;s2.campaign 1000"]
        );
    }

    #[test]
    fn bare_snapshot_and_errors() {
        let doc = locert_trace::json::parse(
            r#"{"spans":[{"name":"x","calls":2,"total_ns":7,"children":[]}]}"#,
        )
        .expect("parses");
        assert_eq!(from_metrics_json(&doc).expect("collapses"), "x 7\n");
        let empty = locert_trace::json::parse("{}").expect("parses");
        assert!(from_metrics_json(&empty).is_err());
    }
}
