//! Prometheus text exposition (format 0.0.4) for registry snapshots.
//!
//! Name mapping from locert's `layer.component.metric` convention:
//! prefix `locert_`, then every character outside `[a-zA-Z0-9_]`
//! becomes `_` (so dots and dashes collapse into underscores) —
//! `core.framework.verifier.invocations` exports as
//! `locert_core_framework_verifier_invocations`. Counters export with
//! the `_total` suffix Prometheus conventions expect. Histograms map
//! onto native Prometheus histograms: locert buckets are *per-bucket*
//! counts with inclusive upper bounds, Prometheus buckets are
//! *cumulative* `le` counts, so rendering takes the running sum; the
//! overflow bucket (inclusive bound `u64::MAX`) folds into the
//! mandatory `+Inf` bucket.
//!
//! [`parse_text`] is the matching minimal reader — enough to round-trip
//! everything [`render`] emits, used by the CI gate that proves
//! `/metrics` output is machine-readable.

use locert_trace::Snapshot;
use std::fmt::Write as _;

/// Maps a `layer.component.metric` name onto a Prometheus metric name.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 7);
    out.push_str("locert_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in Prometheus text format. Deterministic: metrics
/// in registry (sorted) order, buckets ascending.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &value) in &snap.counters {
        let pname = metric_name(name);
        let _ = writeln!(out, "# HELP {pname}_total locert counter {name}");
        let _ = writeln!(out, "# TYPE {pname}_total counter");
        let _ = writeln!(out, "{pname}_total {value}");
    }
    for (name, h) in &snap.histograms {
        let pname = metric_name(name);
        let _ = writeln!(out, "# HELP {pname} locert histogram {name}");
        let _ = writeln!(out, "# TYPE {pname} histogram");
        let mut cumulative = 0u64;
        for &(le, count) in &h.buckets {
            cumulative += count;
            if le == u64::MAX {
                // The overflow bucket is the +Inf bucket.
                continue;
            }
            let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{pname}_sum {}", h.sum);
        let _ = writeln!(out, "{pname}_count {}", h.count);
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_total`/`_bucket` suffix).
    pub name: String,
    /// Label pairs, in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`f64::INFINITY` never appears as a value here, but
    /// label values may be `+Inf`).
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let body = body.trim();
    if body.is_empty() {
        return Ok(labels);
    }
    for pair in body.split(',') {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let k = k.trim();
        if !valid_name(k) {
            return Err(format!("line {line_no}: bad label name {k:?}"));
        }
        let v = v.trim();
        let inner = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {line_no}: unquoted label value {v:?}"))?;
        labels.push((k.to_string(), inner.to_string()));
    }
    Ok(labels)
}

/// Parses Prometheus text-format exposition into samples. Comment
/// (`# HELP`/`# TYPE`) and blank lines are validated for shape and
/// skipped.
///
/// # Errors
///
/// A message naming the first malformed line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.trim().splitn(2, ' ');
            if matches!(words.next(), Some("HELP" | "TYPE")) && words.next().is_none() {
                return Err(format!("line {line_no}: bare # HELP/TYPE"));
            }
            continue;
        }
        // name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unclosed label braces"))?;
                (&line[..open], {
                    let labels = &line[open + 1..close];
                    (labels, line[close + 1..].trim())
                })
            }
            None => {
                let (name, value) = line
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                (name, ("", value.trim()))
            }
        };
        let (label_body, value_str) = rest;
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {line_no}: bad value {value_str:?}"))?;
        samples.push(Sample {
            name: name.to_string(),
            labels: parse_labels(label_body, line_no)?,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_trace::HistogramSnapshot;
    use std::collections::BTreeMap;

    #[test]
    fn name_mapping_sanitizes() {
        assert_eq!(
            metric_name("core.framework.verifier.invocations"),
            "locert_core_framework_verifier_invocations"
        );
        assert_eq!(
            metric_name("journal.dropped_events"),
            "locert_journal_dropped_events"
        );
        assert_eq!(metric_name("a-b π"), "locert_a_b__");
    }

    #[test]
    fn render_parses_back_with_cumulative_buckets() {
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "core.framework.certificate.bits".to_string(),
            HistogramSnapshot {
                count: 7,
                sum: 61,
                min: Some(0),
                max: Some(u64::MAX),
                // Per-bucket counts; the u64::MAX bucket is overflow.
                buckets: vec![(0, 1), (3, 2), (7, 3), (u64::MAX, 1)],
            },
        );
        let snap = Snapshot {
            counters: [("journal.dropped_events".to_string(), 42u64)]
                .into_iter()
                .collect(),
            histograms,
            spans: Vec::new(),
        };
        let text = render(&snap);
        let samples = parse_text(&text).expect("our own output parses");
        let find = |n: &str, le: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == n
                        && match le {
                            Some(want) => s.labels.iter().any(|(k, v)| k == "le" && v == want),
                            None => s.labels.is_empty(),
                        }
                })
                .unwrap_or_else(|| panic!("sample {n} le={le:?}"))
                .value
        };
        assert_eq!(find("locert_journal_dropped_events_total", None), 42.0);
        let h = "locert_core_framework_certificate_bits";
        // Cumulative: 1, 3, 6 then +Inf = total count 7.
        assert_eq!(find(&format!("{h}_bucket"), Some("0")), 1.0);
        assert_eq!(find(&format!("{h}_bucket"), Some("3")), 3.0);
        assert_eq!(find(&format!("{h}_bucket"), Some("7")), 6.0);
        assert_eq!(find(&format!("{h}_bucket"), Some("+Inf")), 7.0);
        assert_eq!(find(&format!("{h}_sum"), None), 61.0);
        assert_eq!(find(&format!("{h}_count"), None), 7.0);
        // No u64::MAX bucket leaks through.
        assert!(!text.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("ok_metric 1\n").is_ok());
        assert!(parse_text("9bad 1\n").is_err());
        assert!(parse_text("no_value\n").is_err());
        assert!(parse_text("m{le=\"1\" 2\n").is_err(), "unclosed braces");
        assert!(parse_text("m{le=1} 2\n").is_err(), "unquoted label");
        assert!(parse_text("m nan-ish\n").is_err());
        assert!(parse_text("# free comment\nm 1\n").is_ok());
    }
}
