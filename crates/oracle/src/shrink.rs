//! Delta-debugging counterexample shrinking.
//!
//! Given a graph on which some oracle relation fails and a predicate
//! that re-checks the failure, [`shrink`] greedily removes vertices
//! (then edges) while the failure persists, to a local minimum: no
//! single vertex or edge removal preserves the disagreement. Candidates
//! are tried in a fixed order (ascending vertex index, ascending edge
//! position), so the result is deterministic for a deterministic
//! predicate. Every accepted step is journaled as a `ShrinkStep` event —
//! the replay artifact records the path from witness to minimum.

use locert_graph::{Graph, NodeId};
use locert_trace::journal;

/// Shrinks `g` to a 1-minimal witness of `fails` (which must hold on
/// `g` itself; if it does not, `g` is returned unchanged). `case` labels
/// the journal events.
pub fn shrink(case: &str, g: &Graph, mut fails: impl FnMut(&Graph) -> bool) -> Graph {
    if !fails(g) {
        return g.clone();
    }
    let mut cur = g.clone();
    let step = |action: &str, next: &Graph| {
        journal::record_with(|| journal::Event::ShrinkStep {
            case: case.to_string(),
            action: action.to_string(),
            vertices: next.num_nodes() as u64,
        });
        if locert_trace::enabled() {
            locert_trace::add("oracle.shrink.steps", 1);
        }
    };
    loop {
        let mut improved = false;
        // Vertex pass: drop one vertex, keep the induced subgraph.
        let mut v = 0;
        while v < cur.num_nodes() {
            if cur.num_nodes() <= 1 {
                break;
            }
            let keep: Vec<NodeId> = (0..cur.num_nodes())
                .filter(|&i| i != v)
                .map(NodeId)
                .collect();
            let (candidate, _) = cur.induced_subgraph(&keep);
            if fails(&candidate) {
                step("drop-vertex", &candidate);
                cur = candidate;
                improved = true;
                // Indices shifted; restart the pass.
                v = 0;
            } else {
                v += 1;
            }
        }
        // Edge pass: drop one edge, keep the vertex set.
        let mut e = 0;
        loop {
            let edges: Vec<(usize, usize)> = cur.edges().map(|(u, v)| (u.0, v.0)).collect();
            if e >= edges.len() {
                break;
            }
            let kept: Vec<(usize, usize)> = edges
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != e)
                .map(|(_, &uv)| uv)
                .collect();
            let candidate =
                Graph::from_edges(cur.num_nodes(), kept).expect("subset of valid edges");
            if fails(&candidate) {
                step("drop-edge", &candidate);
                cur = candidate;
                improved = true;
                e = 0;
            } else {
                e += 1;
            }
        }
        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::generators;

    #[test]
    fn shrinks_triangle_witness_to_the_triangle() {
        // "Contains a triangle" on K5 must shrink to exactly K3.
        let g = generators::clique(5);
        let has_triangle = |g: &Graph| {
            g.edges()
                .any(|(u, v)| g.neighbors(u).iter().any(|w| g.neighbors(v).contains(w)))
        };
        let min = shrink("test", &g, has_triangle);
        assert_eq!(min.num_nodes(), 3);
        assert_eq!(min.num_edges(), 3);
    }

    #[test]
    fn shrinks_disconnection_witness_to_two_vertices() {
        // "Disconnected with at least 2 vertices" minimizes to 2 isolated
        // vertices (the edge pass strips everything else).
        let g = generators::path(4).disjoint_union(&generators::cycle(3));
        let fails = |g: &Graph| g.num_nodes() >= 2 && !g.is_connected();
        let min = shrink("test", &g, fails);
        assert_eq!(min.num_nodes(), 2);
        assert_eq!(min.num_edges(), 0);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let g = generators::path(3);
        let min = shrink("test", &g, |_| false);
        assert_eq!(min, g);
    }

    #[test]
    fn shrink_is_deterministic() {
        let g = generators::clique(6);
        let pred = |g: &Graph| g.num_edges() >= 3;
        let a = shrink("test", &g, pred);
        let b = shrink("test", &g, pred);
        assert_eq!(a, b);
        assert_eq!(a.num_edges(), 3);
    }
}
