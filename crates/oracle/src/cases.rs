//! The oracle case catalogue.
//!
//! An [`OracleCase`] pairs a scheme constructor with an *independent*
//! ground-truth function — the exact treedepth solver, the FO/MSO model
//! checker, a direct automaton run, or a hand-rolled graph predicate —
//! and a sibling group: cases in the same group certify the same
//! property by different constructions and must agree on every decision.
//!
//! Truth functions return `Option<bool>`: `None` marks a graph outside
//! the case's promise domain (a non-tree for a trees-only scheme, a
//! disconnected graph where the truth itself is connectivity-relative).
//! The harness still drives out-of-domain graphs through the prover —
//! refusals must be typed errors, never panics — but draws no verdict.

use locert_automata::library;
use locert_core::catalogue;
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_core::schemes::universal::UniversalScheme;
use locert_core::Scheme;
use locert_graph::rooted::RootedTree;
use locert_graph::{minors, Graph, NodeId};
use locert_logic::{eval, props};

/// Identifier field width used by every catalogued scheme. Wide enough
/// for shuffled identifier assignments on every family graph.
pub const ID_BITS: u32 = 16;

/// Treedepth bound certified by the treedepth and kernel cases —
/// matches the bound baked into the shared catalogue's `treedepth-3`
/// and `kernel-triangle-free` constructions.
pub const TD_BOUND: usize = 3;

/// One differential-testing case.
pub struct OracleCase {
    /// Unique case name (stable: journals and repro files key on it).
    pub name: &'static str,
    /// Sibling group; same group ⇒ same property ⇒ decisions must agree.
    pub group: &'static str,
    /// Builds a fresh scheme instance.
    pub build: fn() -> Box<dyn Scheme>,
    /// Independent ground truth; `None` = outside the promise domain.
    pub truth: fn(&Graph) -> Option<bool>,
}

fn connected_domain(g: &Graph, value: bool) -> Option<bool> {
    if g.num_nodes() == 0 || !g.is_connected() {
        // Connected-promise schemes refuse these; there is no verdict to
        // cross-check (and on the empty graph acceptance is vacuous).
        None
    } else {
        Some(value)
    }
}

fn truth_connected(g: &Graph) -> Option<bool> {
    if g.num_nodes() == 0 {
        None
    } else {
        Some(g.is_connected())
    }
}

fn truth_tree(g: &Graph) -> Option<bool> {
    if g.num_nodes() == 0 {
        None
    } else {
        Some(g.is_tree())
    }
}

fn truth_td(g: &Graph) -> Option<bool> {
    connected_domain(g, true)?;
    Some(locert_treedepth::exact::treedepth_exact(g) <= TD_BOUND)
}

fn truth_dominating(g: &Graph) -> Option<bool> {
    connected_domain(g, eval::models(g, &props::has_dominating_vertex()))
}

fn truth_triangle(g: &Graph) -> Option<bool> {
    connected_domain(g, eval::models(g, &props::has_clique(3)))
}

fn truth_p4_free(g: &Graph) -> Option<bool> {
    connected_domain(g, !minors::has_path_of_order(g, 4))
}

fn truth_kernel_triangle_free(g: &Graph) -> Option<bool> {
    connected_domain(g, true)?;
    Some(
        locert_treedepth::exact::treedepth_exact(g) <= TD_BOUND
            && eval::models(g, &props::triangle_free()),
    )
}

fn truth_perfect_matching(g: &Graph) -> Option<bool> {
    if g.num_nodes() == 0 || !g.is_tree() {
        return None;
    }
    let rooted = RootedTree::from_tree(g, NodeId(0)).expect("is_tree checked");
    Some(
        library::has_perfect_matching()
            .accepts(&locert_automata::trees::LabeledTree::unlabeled(rooted)),
    )
}

fn has_dominating_vertex_direct(g: &Graph) -> bool {
    let n = g.num_nodes();
    g.nodes().any(|v| g.neighbors(v).len() + 1 == n)
}

fn has_triangle_direct(g: &Graph) -> bool {
    g.edges()
        .any(|(u, v)| g.neighbors(u).iter().any(|w| g.neighbors(v).contains(w)))
}

/// Builds a shared-catalogue scheme by stable id. The instance-size
/// parameter is irrelevant for every id the oracle delegates (none of
/// them bind `n`); the differing constructions below stay local.
fn shared(id: &str) -> Box<dyn Scheme> {
    catalogue::build(id, ID_BITS, 0)
        .unwrap_or_else(|| panic!("{id} is a shared-catalogue scheme id"))
}

fn build_spanning_tree() -> Box<dyn Scheme> {
    shared("spanning-tree")
}

fn build_vertex_count() -> Box<dyn Scheme> {
    // Not the catalogue's `vertex-count`: the oracle variant certifies
    // *any* count (the truth is connectivity), not a fixed target `n`.
    Box::new(VertexCountScheme::any_count(ID_BITS))
}

fn build_universal_connected() -> Box<dyn Scheme> {
    // The verifier independently rejects disconnected broadcast maps;
    // the property closure is the identity on top of that.
    shared("universal-connected")
}

fn build_treedepth() -> Box<dyn Scheme> {
    shared("treedepth-3")
}

fn build_depth2_dominating() -> Box<dyn Scheme> {
    shared("depth2-dominating")
}

fn build_universal_dominating() -> Box<dyn Scheme> {
    Box::new(UniversalScheme::new(
        ID_BITS,
        "universal-dominating",
        has_dominating_vertex_direct,
    ))
}

fn build_existential_triangle() -> Box<dyn Scheme> {
    shared("existential-triangle")
}

fn build_universal_triangle() -> Box<dyn Scheme> {
    Box::new(UniversalScheme::new(
        ID_BITS,
        "universal-triangle",
        has_triangle_direct,
    ))
}

fn build_mso_perfect_matching() -> Box<dyn Scheme> {
    shared("mso-perfect-matching")
}

fn build_path_minor_free() -> Box<dyn Scheme> {
    shared("path-minor-free-4")
}

fn build_kernel_triangle_free() -> Box<dyn Scheme> {
    shared("kernel-triangle-free")
}

fn build_acyclicity() -> Box<dyn Scheme> {
    shared("acyclicity")
}

/// The full case catalogue. Order is stable — journals, repro file
/// names, and the deterministic CLI output all follow it.
pub fn catalogue() -> Vec<OracleCase> {
    vec![
        OracleCase {
            name: "spanning-tree",
            group: "connected",
            build: build_spanning_tree,
            truth: truth_connected,
        },
        OracleCase {
            name: "vertex-count",
            group: "connected",
            build: build_vertex_count,
            truth: truth_connected,
        },
        OracleCase {
            name: "universal-connected",
            group: "connected",
            build: build_universal_connected,
            truth: truth_connected,
        },
        OracleCase {
            name: "acyclicity",
            group: "tree",
            build: build_acyclicity,
            truth: truth_tree,
        },
        OracleCase {
            name: "treedepth-3",
            group: "td3",
            build: build_treedepth,
            truth: truth_td,
        },
        OracleCase {
            name: "depth2-dominating",
            group: "dominating",
            build: build_depth2_dominating,
            truth: truth_dominating,
        },
        OracleCase {
            name: "universal-dominating",
            group: "dominating",
            build: build_universal_dominating,
            truth: truth_dominating,
        },
        OracleCase {
            name: "existential-triangle",
            group: "triangle",
            build: build_existential_triangle,
            truth: truth_triangle,
        },
        OracleCase {
            name: "universal-triangle",
            group: "triangle",
            build: build_universal_triangle,
            truth: truth_triangle,
        },
        OracleCase {
            name: "mso-perfect-matching",
            group: "pm",
            build: build_mso_perfect_matching,
            truth: truth_perfect_matching,
        },
        OracleCase {
            name: "path-minor-free-4",
            group: "p4free",
            build: build_path_minor_free,
            truth: truth_p4_free,
        },
        OracleCase {
            name: "kernel-triangle-free",
            group: "kernel-tf",
            build: build_kernel_triangle_free,
            truth: truth_kernel_triangle_free,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalogue_builds_every_scheme_and_names_are_unique() {
        let cases = catalogue();
        let names: BTreeSet<_> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), cases.len(), "duplicate case names");
        for case in &cases {
            let scheme = (case.build)();
            assert!(!scheme.name().is_empty(), "{}", case.name);
        }
    }

    #[test]
    fn truth_functions_respect_domains() {
        let path3 = locert_graph::generators::path(3);
        let two_parts = path3.disjoint_union(&path3);
        for case in catalogue() {
            // Everything is in-domain on a small path except nothing;
            // disconnected graphs are out of every connected domain.
            if case.group == "connected" || case.group == "tree" {
                assert_eq!((case.truth)(&two_parts), Some(false), "{}", case.name);
            } else {
                assert_eq!((case.truth)(&two_parts), None, "{}", case.name);
            }
            assert!((case.truth)(&path3).is_some(), "{}", case.name);
        }
    }

    #[test]
    fn truths_match_known_instances() {
        let triangle = locert_graph::generators::clique(3);
        assert_eq!(truth_triangle(&triangle), Some(true));
        assert_eq!(truth_kernel_triangle_free(&triangle), Some(false));
        let path4 = locert_graph::generators::path(4);
        assert_eq!(truth_triangle(&path4), Some(false));
        assert_eq!(truth_p4_free(&path4), Some(false));
        assert_eq!(truth_p4_free(&triangle), Some(true));
        // P2 has a perfect matching; P3 does not.
        assert_eq!(
            truth_perfect_matching(&locert_graph::generators::path(2)),
            Some(true)
        );
        assert_eq!(
            truth_perfect_matching(&locert_graph::generators::path(3)),
            Some(false)
        );
        assert_eq!(
            truth_dominating(&locert_graph::generators::star(5)),
            Some(true)
        );
        assert_eq!(truth_td(&path4), Some(true));
        assert_eq!(
            truth_td(&locert_graph::generators::path(12)),
            Some(false),
            "P12 needs treedepth 4"
        );
    }
}
