//! Metamorphic relations: transformations with a known effect on the
//! verdict.
//!
//! - **Relabel** — vertex identifiers are names, not structure: the
//!   honest decision under a shuffled [`IdAssignment`] must equal the
//!   decision under the contiguous one.
//! - **Disjoint self-union** — every catalogued scheme certifies a
//!   property of connected graphs (or trees); `G ⊎ G` is disconnected
//!   for any non-empty `G`, so the honest run must refuse — with a typed
//!   error, not a panic. This is the standing regression guard for the
//!   panic-audit sweep across the prover fronts.
//! - **Leaf-append** — hanging a fresh leaf off vertex 0 preserves
//!   connectivity and tree-ness; the grown graph is re-checked against
//!   recomputed ground truth (completeness/refusal only — the attack
//!   battery is the differential pass's job).

use crate::cases::OracleCase;
use crate::harness::{decision_of, Decision, Disagreement};
use locert_core::Scheme;
use locert_graph::{Graph, IdAssignment, NodeId};
use locert_par::split_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Appends one leaf attached to vertex 0. `None` on the empty graph.
pub fn leaf_append(g: &Graph) -> Option<Graph> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
    edges.push((0, n));
    Some(Graph::from_edges(n + 1, edges).expect("leaf edge is fresh"))
}

/// Runs all metamorphic relations for one case. `base_decision` is the
/// honest decision already computed on `g` under contiguous identifiers.
pub fn check(
    case: &OracleCase,
    scheme: &dyn Scheme,
    g: &Graph,
    base_decision: Decision,
    seed: u64,
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    let n = g.num_nodes();
    if n == 0 {
        return out;
    }
    let mut fail = |relation: String, witness: &Graph, detail: String| {
        out.push(Disagreement {
            case: case.name.to_string(),
            relation,
            graph: witness.clone(),
            detail,
        });
    };

    // Relabel: strict decision equality under a shuffled assignment.
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 0x1D5));
    let shuffled = IdAssignment::shuffled(n, &mut rng);
    let relabeled = decision_of(scheme, g, &shuffled);
    if relabeled != base_decision {
        fail(
            "relabel".into(),
            g,
            format!("decision {base_decision:?} became {relabeled:?} under relabeling"),
        );
    }

    // Disjoint self-union: disconnected, so the honest run must refuse.
    let doubled = g.disjoint_union(g);
    let union_ids = IdAssignment::contiguous(doubled.num_nodes());
    let union_decision = decision_of(scheme, &doubled, &union_ids);
    if union_decision != Decision::Reject {
        fail(
            "union".into(),
            &doubled,
            format!("disconnected self-union was not refused (got {union_decision:?})"),
        );
    }

    // Leaf-append: re-differential against recomputed truth.
    if let Some(grown) = leaf_append(g) {
        debug_assert!(grown.neighbors(NodeId(n)).len() == 1);
        let grown_ids = IdAssignment::contiguous(grown.num_nodes());
        let grown_decision = decision_of(scheme, &grown, &grown_ids);
        match ((case.truth)(&grown), grown_decision) {
            (_, Decision::HonestRejected) => fail(
                "leaf-append:honest-rejected".into(),
                &grown,
                "honest assignment rejected on the grown graph".into(),
            ),
            (Some(true), Decision::Reject) => fail(
                "leaf-append:completeness".into(),
                &grown,
                "grown graph is a yes-instance but the honest run refused".into(),
            ),
            (Some(false), Decision::Accept) => fail(
                "leaf-append:honest-accepted".into(),
                &grown,
                "grown graph is a no-instance but the honest run accepted".into(),
            ),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::catalogue;
    use locert_graph::generators;

    #[test]
    fn leaf_append_grows_by_one_and_preserves_treeness() {
        let g = generators::path(3);
        let grown = leaf_append(&g).unwrap();
        assert_eq!(grown.num_nodes(), 4);
        assert!(grown.is_tree());
        assert!(leaf_append(&Graph::empty(0)).is_none());
    }

    #[test]
    fn relations_hold_for_the_spanning_tree_case() {
        let cases = catalogue();
        let case = cases.iter().find(|c| c.name == "spanning-tree").unwrap();
        let scheme = (case.build)();
        let g = generators::cycle(5);
        let ids = IdAssignment::contiguous(5);
        let base = decision_of(scheme.as_ref(), &g, &ids);
        assert_eq!(base, Decision::Accept);
        let out = check(case, scheme.as_ref(), &g, base, 7);
        assert!(out.is_empty(), "{out:?}");
    }
}
