//! diffhunt — the differential oracle CLI.
//!
//! ```text
//! diffhunt [--seed N] [--quick] [--threads N] [--out DIR] [--mutants] [--list]
//! ```
//!
//! Runs the full oracle sweep (every catalogue case × the seeded graph
//! family) and exits 0 when clean, 1 on any disagreement or escaped
//! mutant, 2 on usage errors. Output is deterministic for a fixed seed
//! at any thread count — no wall-clock, no unordered iteration — so CI
//! byte-compares runs at `LOCERT_THREADS=1` and `4`.
//!
//! With `--out DIR` the run writes a replayable `locert-journal/v1`
//! artifact (`oracle-journal.jsonl`) and one minimal `.graph` repro per
//! shrunk disagreement. With `--mutants` (needs the `mutants` feature)
//! it runs the self-test instead: every injected scheme bug must be
//! detected with a witness of at most 12 vertices.

use locert_oracle::{cases, harness};
use locert_trace::journal;
use std::process::ExitCode;

const USAGE: &str = "\
usage: diffhunt [--seed N] [--quick] [--threads N] [--out DIR] [--mutants] [--list]

Differential + metamorphic oracle over every catalogued certification
scheme: honest runs are cross-checked against exact oracles and sibling
schemes, no-instances are attacked adversarially, and each disagreement
is shrunk to a minimal repro.

  --seed N     RNG seed for the graph family and attacks (default 1)
  --quick      smaller random family (CI smoke mode)
  --threads N  worker threads (also honours LOCERT_THREADS)
  --out DIR    write oracle-journal.jsonl and shrunk .graph repros
  --mutants    mutation self-test (requires the `mutants` build feature)
  --list       print the case catalogue and exit";

fn fail(msg: &str) -> ExitCode {
    eprintln!("diffhunt: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    seed: u64,
    quick: bool,
    out: Option<std::path::PathBuf>,
    mutants: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        quick: false,
        out: None,
        mutants: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("thread count must be at least 1".into());
                }
                if !locert_par::configure_threads(n) {
                    return Err("--threads must come before any parallel work".into());
                }
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(v.into());
            }
            "--quick" => args.quick = true,
            "--mutants" => args.mutants = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn write_artifacts(
    dir: &std::path::Path,
    disagreements: &[harness::Disagreement],
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let journal_path = dir.join("oracle-journal.jsonl");
    let text = journal::to_jsonl(&journal::snapshot());
    std::fs::write(&journal_path, text)
        .map_err(|e| format!("cannot write {}: {e}", journal_path.display()))?;
    for (i, d) in disagreements.iter().enumerate() {
        let slug: String = d
            .relation
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("{}-{slug}-{i}.graph", d.case));
        std::fs::write(&path, locert_graph::io::to_edge_list(&d.graph))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn run_sweep(args: &Args) -> ExitCode {
    let cases = cases::catalogue();
    let graphs = harness::family(args.quick, args.seed);
    let rounds = if args.quick { 20 } else { 60 };
    println!(
        "diffhunt: {} cases x {} graphs (seed {}, {} attack rounds)",
        cases.len(),
        graphs.len(),
        args.seed,
        rounds
    );
    let report = harness::run_oracle(&cases, &graphs, args.seed, rounds);
    for stat in &report.stats {
        println!(
            "case {:<22} [{:<10}] checked {:>3}  skipped {:>3}  disagreements {}",
            stat.name, stat.group, stat.checked, stat.skipped, stat.disagreements
        );
    }
    for d in &report.disagreements {
        println!(
            "DISAGREEMENT {} / {}: {} ({} vertices shrunk)",
            d.case,
            d.relation,
            d.detail,
            d.graph.num_nodes()
        );
    }
    if let Some(dir) = &args.out {
        if let Err(e) = write_artifacts(dir, &report.disagreements) {
            return fail(&e);
        }
        println!("artifacts written to {}", dir.display());
    }
    if report.clean() {
        println!("diffhunt: clean");
        ExitCode::SUCCESS
    } else {
        println!("diffhunt: {} disagreement(s)", report.disagreements.len());
        ExitCode::FAILURE
    }
}

#[cfg(feature = "mutants")]
fn run_mutants(args: &Args) -> ExitCode {
    use locert_oracle::mutants;
    let graphs = harness::family(true, args.seed);
    let mut escaped = 0usize;
    let mut all = Vec::new();
    for mutant in mutants::mutants() {
        let cases = mutants::apply(&mutant);
        let report = harness::run_oracle(&cases, &graphs, args.seed, 20);
        let found: Vec<_> = report
            .disagreements
            .into_iter()
            .filter(|d| d.case == mutant.case)
            .collect();
        match found.iter().map(|d| d.graph.num_nodes()).min() {
            Some(min) if min <= 12 => {
                println!(
                    "mutant {:<22} detected ({} relation(s), smallest witness {} vertices)",
                    mutant.name,
                    found.len(),
                    min
                );
            }
            Some(min) => {
                escaped += 1;
                println!(
                    "mutant {:<22} DETECTED BUT UNSHRUNK (smallest witness {} vertices)",
                    mutant.name, min
                );
            }
            None => {
                escaped += 1;
                println!("mutant {:<22} ESCAPED", mutant.name);
            }
        }
        all.extend(found);
    }
    if let Some(dir) = &args.out {
        if let Err(e) = write_artifacts(dir, &all) {
            return fail(&e);
        }
        println!("artifacts written to {}", dir.display());
    }
    if escaped == 0 {
        println!("diffhunt: all mutants detected");
        ExitCode::SUCCESS
    } else {
        println!("diffhunt: {escaped} mutant(s) escaped");
        ExitCode::FAILURE
    }
}

#[cfg(not(feature = "mutants"))]
fn run_mutants(_args: &Args) -> ExitCode {
    fail("this binary was built without the `mutants` feature (use --features mutants)")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if args.list {
        for case in cases::catalogue() {
            println!("{:<22} [{}]", case.name, case.group);
        }
        return ExitCode::SUCCESS;
    }
    journal::set_capacity(1 << 20);
    journal::enable();
    if args.mutants {
        run_mutants(&args)
    } else {
        run_sweep(&args)
    }
}
