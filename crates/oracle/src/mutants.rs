//! Known-bad scheme wrappers for the mutation self-test.
//!
//! Each [`Mutant`] injects one realistic bug class into one catalogue
//! case — a flipped comparison, an off-by-one certificate width, an
//! accept-everything verifier — and the oracle must detect every one of
//! them with a shrunk counterexample. `diffhunt --mutants` runs the
//! battery; the tests here mirror it in-process. This module is
//! test-only (`mutants` feature) so the wrappers can never leak into a
//! production binary.

use crate::cases::{catalogue, OracleCase, ID_BITS};
use locert_core::framework::{DeclaredBound, RejectReason};
use locert_core::schemes::depth2_fo::Depth2FoScheme;
use locert_core::schemes::treedepth::TreedepthScheme;
use locert_core::{
    Assignment, BitWriter, Instance, LocalView, Prover, ProverError, Scheme, Verifier,
};
use locert_graph::NodeId;

fn base(name: &str) -> Box<dyn Scheme> {
    (catalogue()
        .into_iter()
        .find(|c| c.name == name)
        .expect("catalogued case")
        .build)()
}

/// Inverts every per-vertex verdict — a flipped comparison in the
/// verifier. Caught because the honest run rejects a yes-instance.
struct FlipVerdict(Box<dyn Scheme>);

impl Prover for FlipVerdict {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        self.0.assign(instance)
    }
}

impl Verifier for FlipVerdict {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        match self.0.decide(view) {
            Ok(()) => Err(RejectReason::PropertyViolation),
            Err(_) => Ok(()),
        }
    }
}

impl Scheme for FlipVerdict {
    fn name(&self) -> String {
        format!("{}+flip", self.0.name())
    }

    fn declared_bound(&self) -> DeclaredBound {
        self.0.declared_bound()
    }
}

/// Accepts every view — a verifier whose checks were optimized away.
/// Caught by the attack battery on any no-instance.
struct AcceptAll(Box<dyn Scheme>);

impl Prover for AcceptAll {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        self.0.assign(instance)
    }
}

impl Verifier for AcceptAll {
    fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
        Ok(())
    }
}

impl Scheme for AcceptAll {
    fn name(&self) -> String {
        format!("{}+accept-all", self.0.name())
    }

    fn declared_bound(&self) -> DeclaredBound {
        self.0.declared_bound()
    }
}

/// Drops the last bit of vertex 0's certificate — an off-by-one field
/// width in the prover. Caught because the honest assignment no longer
/// parses at (or next to) vertex 0.
struct TruncateLastBit(Box<dyn Scheme>);

impl Prover for TruncateLastBit {
    fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
        let mut asg = self.0.assign(instance)?;
        if instance.graph().num_nodes() > 0 {
            let c = asg.cert(NodeId(0)).clone();
            if c.len_bits() > 0 {
                let mut w = BitWriter::new();
                for i in 0..c.len_bits() - 1 {
                    w.write_bit(c.bit(i));
                }
                *asg.cert_mut(NodeId(0)) = w.finish();
            }
        }
        Ok(asg)
    }
}

impl Verifier for TruncateLastBit {
    fn decide(&self, view: &LocalView<'_>) -> Result<(), RejectReason> {
        self.0.decide(view)
    }
}

impl Scheme for TruncateLastBit {
    fn name(&self) -> String {
        format!("{}+truncate", self.0.name())
    }

    fn declared_bound(&self) -> DeclaredBound {
        self.0.declared_bound()
    }
}

fn build_flip_spanning_tree() -> Box<dyn Scheme> {
    Box::new(FlipVerdict(base("spanning-tree")))
}

fn build_accept_all_spanning_tree() -> Box<dyn Scheme> {
    Box::new(AcceptAll(base("spanning-tree")))
}

fn build_truncated_spanning_tree() -> Box<dyn Scheme> {
    Box::new(TruncateLastBit(base("spanning-tree")))
}

fn build_treedepth_off_by_one() -> Box<dyn Scheme> {
    // Labeled treedepth-3 in the catalogue, but certifies t = 2: the
    // classic threshold off-by-one. Caught on any graph of treedepth
    // exactly 3 (P4 already).
    Box::new(TreedepthScheme::new(ID_BITS, crate::cases::TD_BOUND - 1))
}

fn build_always_true_dominating() -> Box<dyn Scheme> {
    // Truth-table flip: the depth-2 scheme for "has a dominating vertex"
    // replaced by the all-true table — the prover now happily certifies
    // no-instances.
    Box::new(Depth2FoScheme::from_truth_table(ID_BITS, [true; 4]))
}

/// One injected bug: which case it poisons and the poisoned constructor.
pub struct Mutant {
    /// Mutant name (stable, shown by `diffhunt --mutants`).
    pub name: &'static str,
    /// The catalogue case whose scheme is replaced.
    pub case: &'static str,
    build: fn() -> Box<dyn Scheme>,
}

/// The mutant battery.
pub fn mutants() -> Vec<Mutant> {
    vec![
        Mutant {
            name: "flip-verdict",
            case: "spanning-tree",
            build: build_flip_spanning_tree,
        },
        Mutant {
            name: "accept-all",
            case: "spanning-tree",
            build: build_accept_all_spanning_tree,
        },
        Mutant {
            name: "truncate-last-bit",
            case: "spanning-tree",
            build: build_truncated_spanning_tree,
        },
        Mutant {
            name: "treedepth-off-by-one",
            case: "treedepth-3",
            build: build_treedepth_off_by_one,
        },
        Mutant {
            name: "truth-table-flip",
            case: "depth2-dominating",
            build: build_always_true_dominating,
        },
    ]
}

/// The catalogue with `mutant`'s target case poisoned.
pub fn apply(mutant: &Mutant) -> Vec<OracleCase> {
    let mut cases = catalogue();
    let target = cases
        .iter_mut()
        .find(|c| c.name == mutant.case)
        .expect("mutant targets a catalogued case");
    target.build = mutant.build;
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{family, run_oracle};

    /// The acceptance criterion: every mutant is detected, and the shrunk
    /// counterexample stays small (≤ 12 vertices).
    #[test]
    fn oracle_detects_every_mutant_with_small_witness() {
        let graphs = family(true, 0xBEEF);
        for mutant in mutants() {
            let cases = apply(&mutant);
            let report = run_oracle(&cases, &graphs, 0xBEEF, 20);
            let found: Vec<_> = report
                .disagreements
                .iter()
                .filter(|d| d.case == mutant.case)
                .collect();
            assert!(
                !found.is_empty(),
                "mutant {} escaped the oracle",
                mutant.name
            );
            for d in &found {
                assert!(
                    d.graph.num_nodes() <= 12,
                    "mutant {}: witness not shrunk ({} vertices, relation {})",
                    mutant.name,
                    d.graph.num_nodes(),
                    d.relation
                );
            }
        }
    }
}
