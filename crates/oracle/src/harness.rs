//! The differential driver.
//!
//! For every case × family graph the harness checks:
//!
//! 1. **Completeness** — on a ground-truth yes-instance the honest run
//!    must accept at every vertex.
//! 2. **Honest soundness** — on a no-instance the prover must refuse
//!    (`honest-accepted` when it instead produces an accepted run).
//! 3. **Adversarial soundness** — on a no-instance the
//!    [`attack_battery`] must not find a fooling assignment.
//! 4. **Sibling agreement** — cases in the same group must reach the
//!    same decision on every graph where both are in-domain.
//! 5. **Metamorphic relations** — relabeling, disjoint self-union, and
//!    leaf-append (see [`crate::metamorphic`]).
//!
//! Out-of-domain graphs (`truth == None`) are still pushed through the
//! prover: the connected-graph promise is refused with a typed error,
//! never a panic — the regression guard for the panic-audit sweep.
//!
//! Every disagreement is journaled as an `OracleDisagreement` event and
//! shrunk to a local minimum (see [`crate::shrink`]). All randomness
//! derives from `locert_par::split_seed(seed, index)`, so a fixed seed
//! gives byte-identical output at any thread count.

use crate::cases::OracleCase;
use crate::metamorphic;
use crate::shrink::shrink;
use locert_core::attacks::attack_battery;
use locert_core::{run_scheme, Instance, Scheme};
use locert_graph::{Graph, IdAssignment};
use locert_par::split_seed;
use locert_trace::journal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The per-graph outcome of an honest scheme run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Prover assigned and every vertex accepted.
    Accept,
    /// Prover refused with a typed error.
    Reject,
    /// Prover assigned but some vertex rejected — always a bug
    /// (`honest-rejected`), surfaced by the caller.
    HonestRejected,
}

/// One oracle finding: a case, the relation that broke, and the witness.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Case name from the catalogue.
    pub case: String,
    /// Which relation broke: `completeness`, `honest-accepted`,
    /// `soundness`, `honest-rejected`, `sibling:<other>`, `relabel`,
    /// `union`, or `leaf-append:<inner>`.
    pub relation: String,
    /// The (possibly shrunk) witness graph.
    pub graph: Graph,
    /// Human-readable context.
    pub detail: String,
}

/// Per-case tallies across a family sweep.
#[derive(Debug, Clone)]
pub struct CaseStat {
    /// Case name.
    pub name: String,
    /// Sibling group.
    pub group: String,
    /// Graphs inside the case's promise domain.
    pub checked: usize,
    /// Graphs outside it (prover exercised, no verdict drawn).
    pub skipped: usize,
    /// Disagreements attributed to this case.
    pub disagreements: usize,
}

/// The result of [`run_oracle`].
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// One entry per catalogue case, in catalogue order.
    pub stats: Vec<CaseStat>,
    /// All findings, shrunk, in discovery order.
    pub disagreements: Vec<Disagreement>,
}

impl OracleReport {
    /// Whether the sweep found no disagreement.
    pub fn clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs one honest prover+verifier pass and classifies the outcome.
pub fn decision_of(scheme: &dyn Scheme, g: &Graph, ids: &IdAssignment) -> Decision {
    let inst = Instance::new(g, ids);
    match run_scheme(scheme, &inst) {
        Ok(outcome) if outcome.accepted() => Decision::Accept,
        Ok(_) => Decision::HonestRejected,
        Err(_) => Decision::Reject,
    }
}

fn push(out: &mut Vec<Disagreement>, case: &OracleCase, relation: &str, g: &Graph, detail: String) {
    journal::record_with(|| journal::Event::OracleDisagreement {
        case: case.name.to_string(),
        relation: relation.to_string(),
        vertices: g.num_nodes() as u64,
    });
    if locert_trace::enabled() {
        locert_trace::add("oracle.harness.disagreements", 1);
    }
    out.push(Disagreement {
        case: case.name.to_string(),
        relation: relation.to_string(),
        graph: g.clone(),
        detail,
    });
}

/// The differential check for one case on one graph (relations 1–3 plus
/// the metamorphic set). Sibling agreement needs the whole catalogue and
/// lives in [`check_graph`].
pub fn check_case_on_graph(
    case: &OracleCase,
    g: &Graph,
    seed: u64,
    rounds: usize,
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    let scheme = (case.build)();
    let ids = IdAssignment::contiguous(g.num_nodes());
    let truth = (case.truth)(g);
    let decision = decision_of(scheme.as_ref(), g, &ids);
    if locert_trace::enabled() {
        locert_trace::add("oracle.harness.checks", 1);
    }
    if decision == Decision::HonestRejected {
        push(
            &mut out,
            case,
            "honest-rejected",
            g,
            "honest prover's assignment was rejected by its own verifier".into(),
        );
        return out;
    }
    match truth {
        Some(true) if decision != Decision::Accept => {
            push(
                &mut out,
                case,
                "completeness",
                g,
                "ground truth says yes; the honest run did not accept".into(),
            );
        }
        Some(true) => {}
        Some(false) => {
            if decision == Decision::Accept {
                push(
                    &mut out,
                    case,
                    "honest-accepted",
                    g,
                    "ground truth says no; the honest run accepted".into(),
                );
            }
            let inst = Instance::new(g, &ids);
            let mut rng = StdRng::seed_from_u64(split_seed(seed, 0xA77));
            if let Some(fooling) = attack_battery(scheme.as_ref(), &inst, None, &mut rng, rounds) {
                push(
                    &mut out,
                    case,
                    "soundness",
                    g,
                    format!(
                        "adversarial assignment of {} bits accepted on a no-instance",
                        fooling.max_bits()
                    ),
                );
            }
        }
        // Out of domain: the prover was already exercised above (a typed
        // refusal, not a panic); there is no verdict to compare.
        None => {}
    }
    for d in metamorphic::check(case, scheme.as_ref(), g, decision, seed) {
        journal::record_with(|| journal::Event::OracleDisagreement {
            case: d.case.clone(),
            relation: d.relation.clone(),
            vertices: d.graph.num_nodes() as u64,
        });
        if locert_trace::enabled() {
            locert_trace::add("oracle.harness.disagreements", 1);
        }
        out.push(d);
    }
    out
}

/// Runs every relation for every case on one graph, including sibling
/// agreement across the catalogue. This is also the shrinker's oracle:
/// a candidate graph "still fails" when this returns a disagreement with
/// the original case and relation.
pub fn check_graph(cases: &[OracleCase], g: &Graph, seed: u64, rounds: usize) -> Vec<Disagreement> {
    let mut out = Vec::new();
    let mut decisions: Vec<Option<Decision>> = Vec::with_capacity(cases.len());
    for (ci, case) in cases.iter().enumerate() {
        out.extend(check_case_on_graph(
            case,
            g,
            split_seed(seed, ci as u64),
            rounds,
        ));
        // Sibling decisions only compare in-domain graphs; the honest
        // decision is recomputed cheaply (the prover is deterministic).
        let d = if (case.truth)(g).is_some() {
            let scheme = (case.build)();
            let ids = IdAssignment::contiguous(g.num_nodes());
            Some(decision_of(scheme.as_ref(), g, &ids))
        } else {
            None
        };
        decisions.push(d);
    }
    for (i, a) in cases.iter().enumerate() {
        for (j, b) in cases.iter().enumerate().skip(i + 1) {
            if a.group != b.group {
                continue;
            }
            if let (Some(da), Some(db)) = (decisions[i], decisions[j]) {
                if da != db {
                    push(
                        &mut out,
                        a,
                        &format!("sibling:{}", b.name),
                        g,
                        format!(
                            "{} decided {da:?} but sibling {} decided {db:?}",
                            a.name, b.name
                        ),
                    );
                }
            }
        }
    }
    out
}

/// The full sweep: every graph through [`check_graph`], every finding
/// shrunk to a local minimum. Findings are deduplicated per
/// (case, relation) — the first witness wins and is the one shrunk.
pub fn run_oracle(
    cases: &[OracleCase],
    graphs: &[Graph],
    seed: u64,
    rounds: usize,
) -> OracleReport {
    let mut stats: Vec<CaseStat> = cases
        .iter()
        .map(|c| CaseStat {
            name: c.name.to_string(),
            group: c.group.to_string(),
            checked: 0,
            skipped: 0,
            disagreements: 0,
        })
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut disagreements = Vec::new();
    for (gi, g) in graphs.iter().enumerate() {
        if locert_trace::enabled() {
            locert_trace::add("oracle.harness.graphs", 1);
        }
        let graph_seed = split_seed(seed, gi as u64);
        for (ci, case) in cases.iter().enumerate() {
            if (case.truth)(g).is_some() {
                stats[ci].checked += 1;
            } else {
                stats[ci].skipped += 1;
            }
        }
        for d in check_graph(cases, g, graph_seed, rounds) {
            let key = (d.case.clone(), d.relation.clone());
            if let Some(stat) = stats.iter_mut().find(|s| s.name == d.case) {
                stat.disagreements += 1;
            }
            if !seen.insert(key) {
                continue;
            }
            // Shrink against the same (case, relation) under the seed the
            // witness was found with — deterministic and replayable.
            let case_name = d.case.clone();
            let relation = d.relation.clone();
            let shrunk = shrink(&d.case, &d.graph, |candidate| {
                check_graph(cases, candidate, graph_seed, rounds)
                    .iter()
                    .any(|x| x.case == case_name && x.relation == relation)
            });
            disagreements.push(Disagreement { graph: shrunk, ..d });
        }
    }
    OracleReport {
        stats,
        disagreements,
    }
}

/// The seeded graph family the sweep runs over: classic shapes, every
/// non-isomorphic tree on up to 5 vertices, seeded random trees and
/// connected graphs, and deliberately disconnected graphs (unions and an
/// isolated vertex) that exercise the promise boundary. `quick` bounds
/// the random sizes for the CI smoke run.
pub fn family(quick: bool, seed: u64) -> Vec<Graph> {
    use locert_graph::{enumerate, generators};
    let mut graphs = Vec::new();
    for n in 1..=6 {
        graphs.push(generators::path(n));
    }
    for n in 3..=6 {
        graphs.push(generators::cycle(n));
    }
    for n in 2..=4 {
        graphs.push(generators::clique(n));
    }
    for n in 3..=5 {
        graphs.push(generators::star(n));
    }
    graphs.push(generators::spider(3, 2));
    for n in 1..=5 {
        for pv in enumerate::enumerate_trees(n, n) {
            let edges: Vec<(usize, usize)> = pv
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p != usize::MAX)
                .map(|(i, &p)| (i, p))
                .collect();
            graphs.push(Graph::from_edges(n, edges).expect("parent array edges"));
        }
    }
    let max_n = if quick { 7 } else { 10 };
    let mut idx = 0u64;
    let rng_at = |idx: u64| StdRng::seed_from_u64(split_seed(seed, 0xFA0 + idx));
    for n in 4..=max_n {
        for extra in 0..=2usize {
            graphs.push(generators::random_connected(n, extra, &mut rng_at(idx)));
            idx += 1;
        }
        graphs.push(generators::random_tree(n, &mut rng_at(idx)));
        idx += 1;
    }
    graphs.push(generators::path(2).disjoint_union(&generators::path(3)));
    graphs.push(generators::cycle(3).disjoint_union(&generators::clique(2)));
    let t = generators::random_tree(5, &mut rng_at(idx));
    let edges: Vec<(usize, usize)> = t.edges().map(|(u, v)| (u.0, v.0)).collect();
    // The 5-vertex tree plus one isolated vertex.
    graphs.push(Graph::from_edges(6, edges).expect("isolated vertex"));
    graphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::catalogue;
    use locert_graph::generators;

    #[test]
    fn family_is_seed_deterministic_and_mixed() {
        let a = family(true, 42);
        let b = family(true, 42);
        assert_eq!(a, b);
        assert_ne!(family(true, 43), a, "seed must matter");
        assert!(a.iter().any(|g| !g.is_connected()), "needs no-instances");
        assert!(a.iter().any(|g| g.num_nodes() == 1));
        assert!(a.len() < family(false, 42).len());
    }

    #[test]
    fn clean_catalogue_is_clean_on_core_family() {
        let cases = catalogue();
        let graphs = vec![
            generators::path(1),
            generators::path(2),
            generators::path(4),
            generators::cycle(4),
            generators::clique(3),
            generators::star(4),
            generators::path(2).disjoint_union(&generators::path(3)),
        ];
        let report = run_oracle(&cases, &graphs, 0xD1FF, 20);
        assert!(
            report.clean(),
            "unexpected disagreements: {:?}",
            report
                .disagreements
                .iter()
                .map(|d| format!("{}/{}: {}", d.case, d.relation, d.detail))
                .collect::<Vec<_>>()
        );
        // Every case saw the family; the disconnected graph is skipped by
        // the connected-relative truths and counted for the rest.
        for stat in &report.stats {
            assert_eq!(stat.checked + stat.skipped, graphs.len(), "{}", stat.name);
            assert!(stat.checked > 0, "{} never in-domain", stat.name);
        }
    }

    #[test]
    fn decisions_track_ground_truth() {
        let cases = catalogue();
        let st = cases.iter().find(|c| c.name == "spanning-tree").unwrap();
        let scheme = (st.build)();
        let p4 = generators::path(4);
        let ids = IdAssignment::contiguous(4);
        assert_eq!(decision_of(scheme.as_ref(), &p4, &ids), Decision::Accept);
        let split = generators::path(2).disjoint_union(&generators::path(2));
        let ids4 = IdAssignment::contiguous(4);
        assert_eq!(
            decision_of(scheme.as_ref(), &split, &ids4),
            Decision::Reject
        );
    }
}
