//! Differential and metamorphic testing oracle for certification schemes.
//!
//! Every scheme in `locert-core` makes three promises: the honest prover
//! accepts exactly the yes-instances (completeness), no adversarial
//! assignment makes a no-instance accept (soundness), and both are
//! invariant under the symmetries the model grants — vertex relabeling,
//! and the connected-graph promise refusing anything outside it. This
//! crate checks all three *against independent ground truth*: the exact
//! treedepth solver, the MSO/FO model checker, direct tree-automaton
//! runs, and sibling schemes certifying the same property by a different
//! construction.
//!
//! The pieces:
//!
//! - [`cases`] — the catalogue of [`cases::OracleCase`]s: a scheme
//!   constructor, an independent truth function, and a sibling group.
//! - [`harness`] — the differential driver: seeded graph families, the
//!   per-graph check (completeness, soundness via
//!   `locert_core::attacks::attack_battery`, sibling agreement), and the
//!   metamorphic relations from [`metamorphic`].
//! - [`shrink`] — delta-debugging: a disagreement is shrunk to a local
//!   minimum by greedy vertex then edge removal, each accepted step
//!   journaled as a `ShrinkStep` event.
//! - [`mutants`] (test-only, behind the `mutants` feature) — known-bad
//!   scheme wrappers the oracle must catch; the `diffhunt --mutants`
//!   self-test asserts it does.
//!
//! Everything is deterministic for a fixed seed at any thread count:
//! graph generation and attack randomness derive from
//! `locert_par::split_seed`, and the journal records verdicts in vertex
//! order regardless of the worker schedule. The `diffhunt` binary is the
//! CLI entry point; CI diffs its journal byte-for-byte across
//! `LOCERT_THREADS` settings.

pub mod cases;
pub mod harness;
pub mod metamorphic;
#[cfg(any(test, feature = "mutants"))]
pub mod mutants;
pub mod shrink;

pub use cases::{catalogue, OracleCase};
pub use harness::{check_case_on_graph, run_oracle, Decision, Disagreement, OracleReport};
pub use shrink::shrink;
