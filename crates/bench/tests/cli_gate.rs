//! CLI-level tests for the two observability binaries: the `bench-diff`
//! regression gate and the `experiments` journal/metrics flags. These
//! drive the real executables (via `CARGO_BIN_EXE_*`), so they cover
//! argument parsing, exit codes, and on-disk artifact formats — the
//! contract CI scripts rely on.

use locert_trace::journal;
use std::path::PathBuf;
use std::process::Command;

fn bench_diff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
}

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

/// A scratch path unique to this test process (tests share a target
/// dir across runs; stale files from a previous run are overwritten).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("locert-cli-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

const CRITERION_FIXTURE: &str = r#"{
  "schema": "locert-criterion/v1",
  "benchmarks": [
    {"name": "alpha/64", "iters": 10, "min_ns": 900.0, "median_ns": 1000.0, "mean_ns": 1010.0},
    {"name": "beta/512", "iters": 10, "min_ns": 4000.0, "median_ns": 5000.0, "mean_ns": 5100.0}
  ]
}"#;

#[test]
fn identical_artifacts_pass_the_gate() {
    let path = scratch("identical.json");
    std::fs::write(&path, CRITERION_FIXTURE).unwrap();
    let out = bench_diff().arg(&path).arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "identical inputs must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("No regressions"), "report: {stdout}");
    assert!(stdout.contains("| alpha/64 |"), "report: {stdout}");
}

#[test]
fn injected_2x_regression_fails_the_gate() {
    let base = scratch("reg_base.json");
    let slow = scratch("reg_slow.json");
    std::fs::write(&base, CRITERION_FIXTURE).unwrap();
    let scaled = bench_diff()
        .args(["scale", "2.0"])
        .arg(&base)
        .arg(&slow)
        .output()
        .unwrap();
    assert!(
        scaled.status.success(),
        "scale must succeed: {}",
        String::from_utf8_lossy(&scaled.stderr)
    );

    let out = bench_diff().arg(&base).arg(&slow).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "2x regression must exit 1: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "report: {stdout}");

    // The same 2x gap passes once the threshold is raised above it.
    let lenient = bench_diff()
        .arg(&base)
        .arg(&slow)
        .args(["--threshold", "2.5"])
        .output()
        .unwrap();
    assert!(lenient.status.success(), "2x within a 2.5x threshold");
}

#[test]
fn regression_exactly_at_threshold_fails_the_gate() {
    let base = scratch("exact_base.json");
    let edge = scratch("exact_edge.json");
    std::fs::write(&base, CRITERION_FIXTURE).unwrap();
    // 1000.0 * 1.5 and 5000.0 * 1.5 are exact in f64, so the ratio lands
    // precisely on the default threshold.
    let scaled = bench_diff()
        .args(["scale", "1.5"])
        .arg(&base)
        .arg(&edge)
        .output()
        .unwrap();
    assert!(
        scaled.status.success(),
        "scale must succeed: {}",
        String::from_utf8_lossy(&scaled.stderr)
    );

    let out = bench_diff().arg(&base).arg(&edge).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        // Regression: `ratio > threshold` let delta == threshold slip by.
        "regression equal to the threshold must exit 1: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // Identical inputs still pass even at the tightest legal threshold:
    // a ratio of exactly 1.0 is "unchanged", not a regression.
    let out = bench_diff()
        .arg(&base)
        .arg(&base)
        .args(["--threshold", "1.0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "identical inputs at threshold 1.0 must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn improvements_and_renames_do_not_fail_the_gate() {
    let base = scratch("ren_base.json");
    let cur = scratch("ren_cur.json");
    std::fs::write(&base, CRITERION_FIXTURE).unwrap();
    // beta/512 got faster; alpha/64 was renamed (one removed, one added).
    std::fs::write(
        &cur,
        r#"{
  "schema": "locert-criterion/v1",
  "benchmarks": [
    {"name": "alpha_v2/64", "iters": 10, "min_ns": 900.0, "median_ns": 1000.0, "mean_ns": 1010.0},
    {"name": "beta/512", "iters": 10, "min_ns": 2000.0, "median_ns": 2500.0, "mean_ns": 2600.0}
  ]
}"#,
    )
    .unwrap();
    let out = bench_diff().arg(&base).arg(&cur).output().unwrap();
    assert!(out.status.success(), "improvement + rename must pass");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("improved"), "report: {stdout}");
    assert!(stdout.contains("removed"), "report: {stdout}");
    assert!(stdout.contains("added"), "report: {stdout}");
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No arguments.
    let out = bench_diff().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing file.
    let out = bench_diff()
        .args(["/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Malformed threshold.
    let path = scratch("usage.json");
    std::fs::write(&path, CRITERION_FIXTURE).unwrap();
    let out = bench_diff()
        .arg(&path)
        .arg(&path)
        .args(["--threshold", "0.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "threshold < 1 is a usage error");
    // Mixed schemas.
    let metrics = scratch("usage_metrics.json");
    std::fs::write(
        &metrics,
        r#"{"schema": "locert-trace/v1", "quick": true, "experiments": [{"id": "e1", "wall_s": 1.0, "telemetry": {}}]}"#,
    )
    .unwrap();
    let out = bench_diff().arg(&path).arg(&metrics).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "schema mismatch is an error");
}

#[test]
fn metrics_schema_compares_wall_seconds() {
    let base = scratch("wall_base.json");
    let slow = scratch("wall_slow.json");
    std::fs::write(
        &base,
        r#"{"schema": "locert-trace/v1", "quick": true, "experiments": [{"id": "e1", "wall_s": 1.0, "telemetry": {}}, {"id": "s2", "wall_s": 2.0, "telemetry": {}}]}"#,
    )
    .unwrap();
    let out = bench_diff()
        .args(["scale", "2.0"])
        .arg(&base)
        .arg(&slow)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bench_diff().arg(&base).arg(&slow).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "2x wall-clock must trip the gate"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wall s"));
}

#[test]
fn serve_schema_compares_latency_quantiles() {
    let base = scratch("serve_base.json");
    let slow = scratch("serve_slow.json");
    std::fs::write(
        &base,
        r#"{"schema": "locert-serve/v1", "latency": [{"name": "request", "p50_ns": 100000.0, "p99_ns": 900000.0}, {"name": "request.repeated", "p50_ns": 20000.0, "p99_ns": 80000.0}]}"#,
    )
    .unwrap();
    // Identity passes and the flattened quantile rows appear.
    let out = bench_diff().arg(&base).arg(&base).output().unwrap();
    assert!(
        out.status.success(),
        "identical serve artifacts must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| request/p50 |"), "report: {stdout}");
    assert!(
        stdout.contains("| request.repeated/p99 |"),
        "report: {stdout}"
    );
    assert!(stdout.contains("latency ns"), "report: {stdout}");
    // A synthetic 2x slowdown trips the gate.
    let scaled = bench_diff()
        .args(["scale", "2.0"])
        .arg(&base)
        .arg(&slow)
        .output()
        .unwrap();
    assert!(scaled.status.success());
    let out = bench_diff().arg(&base).arg(&slow).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "2x latency must trip the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Serve artifacts never compare against another schema.
    let criterion = scratch("serve_vs_criterion.json");
    std::fs::write(&criterion, CRITERION_FIXTURE).unwrap();
    let out = bench_diff().arg(&base).arg(&criterion).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "schema mismatch is an error");
}

#[test]
fn experiments_rejects_unwritable_metrics_path_without_panicking() {
    let out_md = scratch("unwritable_report.md");
    let out = experiments()
        .args(["--quick", "--metrics", "/proc/nonexistent/metrics.json"])
        .arg("--out")
        .arg(&out_md)
        .arg("f4")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "unwritable metrics path must be an IO error, not a panic"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/proc/nonexistent/metrics.json"),
        "error names the path: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
}

#[test]
fn experiments_rejects_unknown_flags_with_usage() {
    let out = experiments().arg("--no-such-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// The tentpole acceptance check: `experiments --journal` writes a
/// seed-deterministic JSONL journal whose verdict trail round-trips
/// through the parser.
#[test]
fn journal_is_deterministic_and_replays_verdicts() {
    let md1 = scratch("journal_run1.md");
    let md2 = scratch("journal_run2.md");
    let j1 = scratch("journal_run1.jsonl");
    let j2 = scratch("journal_run2.jsonl");
    for (md, j) in [(&md1, &j1), (&md2, &j2)] {
        let out = experiments()
            .args(["--quick", "--journal"])
            .arg(j)
            .arg("--out")
            .arg(md)
            .args(["e1", "s2"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "experiments run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text1 = std::fs::read_to_string(&j1).unwrap();
    let text2 = std::fs::read_to_string(&j2).unwrap();
    assert_eq!(text1, text2, "journal must be byte-identical across runs");

    // Round-trip: parse the JSONL back into a snapshot and re-serialize.
    let snap = journal::from_jsonl(&text1).expect("journal parses");
    assert_eq!(journal::to_jsonl(&snap), text1, "JSONL round-trips exactly");

    // The replay reconstructs per-vertex verdicts: e1 verifies honest
    // instances (accepting verdicts with bits read), and every rejecting
    // verdict carries a machine-readable reason code.
    let verdicts: Vec<_> = snap.verdicts().collect();
    assert!(!verdicts.is_empty(), "e1 must journal verdicts");
    let mut accepted = 0usize;
    for v in &verdicts {
        let journal::Event::Verdict {
            accepted: ok,
            reason,
            bits_read,
            ..
        } = v
        else {
            unreachable!("verdicts() filters");
        };
        if *ok {
            accepted += 1;
            assert!(reason.is_none(), "accepting verdicts carry no reason");
            assert!(*bits_read > 0, "radius-1 views read certificate bits");
        } else {
            assert!(reason.is_some(), "rejections carry a reason code");
        }
    }
    assert!(accepted > 0, "honest e1 runs must accept somewhere");

    // s2's fault campaign journals provenance: detections link a reason
    // to a fault site at bounded distance.
    let mut detections = 0usize;
    for e in snap.entries.iter().map(|e| &e.event) {
        if let journal::Event::Detection {
            reason, distance, ..
        } = e
        {
            detections += 1;
            assert!(!reason.is_empty());
            if let Some(d) = distance {
                assert!(*d <= 12, "detector distance bounded by instance size");
            }
        }
    }
    assert!(detections > 0, "s2 must journal fault detections");
}
