//! End-to-end determinism gate for the `locert-par` runtime: the
//! `experiments` binary must produce byte-identical deterministic
//! artifacts (verification journal, deterministic metrics section,
//! report tables) no matter how many workers the pool runs.
//!
//! This is the contract that makes parallel verification trustworthy:
//! scheduling may vary, results may not. The quick E3/S1/S2 grid covers
//! the three parallelised paths — per-vertex verdicts
//! (`run_verification`), exhaustive certificate enumeration
//! (`exhaustive_soundness`), and fault-campaign rounds (`run_campaign`).

use std::path::{Path, PathBuf};
use std::process::Command;

use locert_trace::json::{self, Value};

/// Artifacts of one subprocess run of the experiments binary.
struct RunArtifacts {
    journal: String,
    metrics: String,
    report: String,
}

fn run_experiments(threads: usize, dir: &Path) -> RunArtifacts {
    let journal = dir.join(format!("journal_{threads}.jsonl"));
    let metrics = dir.join(format!("metrics_{threads}.json"));
    let report = dir.join(format!("report_{threads}.md"));
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e3", "s1", "s2", "--quick", "--metrics"])
        .arg(&metrics)
        .arg("--journal")
        .arg(&journal)
        .arg("--out")
        .arg(&report)
        .env("LOCERT_THREADS", threads.to_string())
        .status()
        .expect("spawn experiments binary");
    assert!(status.success(), "experiments failed at {threads} threads");
    let read = |p: &PathBuf| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
    RunArtifacts {
        journal: read(&journal),
        metrics: read(&metrics),
        report: read(&report),
    }
}

/// The deterministic section of a `locert-trace/v2` dump, re-serialized —
/// same projection as `trace-check --compare`.
fn deterministic_section(metrics: &str) -> String {
    let doc = json::parse(metrics).expect("metrics parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("locert-trace/v2"),
        "metrics dump must use the v2 schema"
    );
    let quick = doc.get("quick").cloned().expect("quick key");
    let experiments = doc.get("experiments").cloned().expect("experiments key");
    Value::obj([
        ("quick".to_string(), quick),
        ("experiments".to_string(), experiments),
    ])
    .to_string()
}

/// Strips the run-varying parts of the report: the telemetry appendix
/// (wall histograms, `par.*` scheduling counters), the line naming the
/// per-run metrics path, and every wall-time table column (headers with
/// a time unit — `wall time [s]`, `prover [ms]`, `verify [µs/vertex]`).
/// Everything else — every deterministic table cell — must be
/// byte-identical across thread counts.
fn deterministic_report(report: &str) -> String {
    let body = report
        .split("## Telemetry appendix")
        .next()
        .unwrap_or(report);
    let timing_col = |h: &str| h.contains("[ms]") || h.contains("[µs") || h.contains("[s]");
    let mut out = String::new();
    let mut drop_cols: Vec<usize> = Vec::new();
    let mut in_table = false;
    for line in body.lines() {
        if line.contains("machine-readable") {
            continue; // names the per-run metrics path
        }
        if line.starts_with('|') {
            let cells: Vec<&str> = line.split('|').collect();
            if !in_table {
                in_table = true;
                drop_cols = cells
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| timing_col(c))
                    .map(|(i, _)| i)
                    .collect();
            }
            let kept: Vec<&str> = cells
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop_cols.contains(i))
                .map(|(_, c)| *c)
                .collect();
            out.push_str(&kept.join("|"));
        } else {
            in_table = false;
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn artifacts_are_byte_identical_at_one_and_four_threads() {
    let dir = std::env::temp_dir().join(format!("locert_par_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let one = run_experiments(1, &dir);
    let four = run_experiments(4, &dir);

    assert!(
        !one.journal.is_empty(),
        "journal must record events for the comparison to mean anything"
    );
    assert_eq!(
        one.journal, four.journal,
        "verification journal diverged between 1 and 4 threads"
    );

    let det_one = deterministic_section(&one.metrics);
    let det_four = deterministic_section(&four.metrics);
    assert!(det_one.contains("counters"), "deterministic section empty");
    assert_eq!(
        det_one, det_four,
        "deterministic metrics section diverged between 1 and 4 threads"
    );

    let report_one = deterministic_report(&one.report);
    let report_four = deterministic_report(&four.report);
    assert!(
        report_one.contains("| "),
        "report must contain experiment tables"
    );
    assert_eq!(
        report_one, report_four,
        "report tables diverged between 1 and 4 threads"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `--threads` flag must behave exactly like the environment
/// variable: a `--threads 3` run and a `LOCERT_THREADS=3` run produce
/// the same deterministic journal (they are the same pool, configured
/// through two doors).
#[test]
fn threads_flag_matches_environment_variable() {
    let dir = std::env::temp_dir().join(format!("locert_par_flag_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let via_env = run_experiments(3, &dir);

    let journal = dir.join("journal_flag.jsonl");
    let report = dir.join("report_flag.md");
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e3", "--quick", "--threads", "3", "--journal"])
        .arg(&journal)
        .arg("--out")
        .arg(&report)
        .env_remove("LOCERT_THREADS")
        .status()
        .expect("spawn experiments binary");
    assert!(status.success(), "experiments --threads 3 failed");
    let flag_journal = std::fs::read_to_string(&journal).expect("flag journal");

    // The env run covered e3+s1+s2; restrict both journals to e3 events
    // (everything from the e3 marker up to the next experiment marker).
    let e3_slice = |jsonl: &str| -> String {
        let mut out = String::new();
        let mut active = false;
        for line in jsonl.lines() {
            if line.contains("\"marker\"") {
                active = line.contains("\"e3\"");
            }
            if active {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    };
    let env_e3 = e3_slice(&via_env.journal);
    let flag_e3 = e3_slice(&flag_journal);
    assert!(!flag_e3.is_empty(), "e3 journal slice is empty");
    // Sequence numbers restart identically because e3 runs first in both
    // invocations, so the slices compare byte-for-byte.
    assert_eq!(
        env_e3, flag_e3,
        "--threads 3 and LOCERT_THREADS=3 journals diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero worker count — through the flag or the environment — is a
/// usage error (exit 1), not a silently ignored value: a zero-worker
/// pool would deadlock the first parallel region, and the old fallback
/// hid typos in CI matrices.
#[test]
fn zero_threads_is_a_usage_error() {
    let flag = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e3", "--quick", "--threads", "0"])
        .env_remove("LOCERT_THREADS")
        .output()
        .expect("spawn experiments binary");
    assert_eq!(flag.status.code(), Some(1), "--threads 0 must exit 1");
    assert!(
        String::from_utf8_lossy(&flag.stderr).contains("thread count must be at least 1"),
        "stderr names the problem"
    );

    let env = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e3", "--quick"])
        .env("LOCERT_THREADS", "0")
        .output()
        .expect("spawn experiments binary");
    assert_eq!(env.status.code(), Some(1), "LOCERT_THREADS=0 must exit 1");
    assert!(
        String::from_utf8_lossy(&env.stderr).contains("LOCERT_THREADS=0"),
        "stderr names the source"
    );
}
