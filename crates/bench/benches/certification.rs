//! Criterion benchmarks: one group per experiment, timing the full
//! prover + verifier pipeline at representative sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e1_mso_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_mso_tree_cert");
    for n in [64usize, 512, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::e1_mso_trees::bench_once(n)));
        });
    }
    g.finish();
}

fn bench_e3_treedepth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_treedepth_cert");
    for (n, t) in [(256usize, 3usize), (1024, 4), (4096, 5)] {
        g.bench_with_input(
            BenchmarkId::new("n_t", format!("{n}_{t}")),
            &(n, t),
            |b, &(n, t)| {
                b.iter(|| black_box(locert_bench::e3_treedepth::bench_once(n, t, 42)));
            },
        );
    }
    g.finish();
}

fn bench_e4_gadget(c: &mut Criterion) {
    use locert_lb::treedepth_gadget::build_gadget;
    use locert_treedepth::treedepth_exact;
    let mut g = c.benchmark_group("e4_treedepth_lb");
    g.bench_function("gadget_n2_exact_td", |b| {
        b.iter(|| {
            let (graph, _) = build_gadget(2, &[0, 1], &[0, 1]);
            black_box(treedepth_exact(&graph))
        });
    });
    g.finish();
}

fn bench_e5_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_kernel_mso");
    for n in [64usize, 512, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::e5_kernel::bench_once(n)));
        });
    }
    g.finish();
}

fn bench_e6_minor_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_minor_free");
    for n in [64usize, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::e6_minor_free::bench_once(n)));
        });
    }
    g.finish();
}

fn bench_e7_fo(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_fo_fragments");
    for n in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::e7_fo_fragments::bench_once(n)));
        });
    }
    g.finish();
}

fn bench_e8_words(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_word_automata");
    for n in [64usize, 1024, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::e8_words::bench_once(n)));
        });
    }
    g.finish();
}

fn bench_p34_spanning_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("p34_spanning_tree");
    for n in [256usize, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(locert_bench::p34_spanning_tree::bench_once(n, 7)));
        });
    }
    g.finish();
}

fn bench_e2_counting(c: &mut Criterion) {
    use locert_graph::enumerate::count_trees_log2;
    let mut g = c.benchmark_group("e2_fpf_lowerbound");
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(count_trees_log2(n, 3)));
        });
    }
    g.finish();
}

fn bench_f1_paths(c: &mut Criterion) {
    use locert_treedepth::bounds::path_elimination_tree;
    let mut g = c.benchmark_group("f1_path_models");
    for k in [8usize, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(path_elimination_tree((1 << k) - 1).1.height()));
        });
    }
    g.finish();
}

/// The parallel-runtime workload: an exhaustive soundness sweep over
/// ~118k certificate assignments, enumerated on the locert-par pool.
/// CI runs this suite at LOCERT_THREADS=1 and =4 and records both
/// BENCH_certification.json artifacts; on multi-core hosts the
/// multi-thread median for this group should be >= 2x faster.
fn bench_s1_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("s1_exhaustive");
    g.bench_function("acyclicity_cycle6_b2", |b| {
        b.iter(|| black_box(locert_bench::s1_soundness::exhaustive_once(6, 2)));
    });
    g.finish();
}

fn bench_prover_vs_verifier(c: &mut Criterion) {
    use locert_core::framework::{run_verification, Instance, Prover};
    use locert_core::schemes::common::id_bits_for;
    use locert_core::schemes::treedepth::{ModelStrategy, TreedepthScheme};
    use locert_graph::{generators, IdAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("split_prover_verifier");
    let n = 2048;
    let t = 5;
    let mut rng = StdRng::seed_from_u64(7);
    let (g, parents) = generators::random_bounded_treedepth(n, t, 0.3, &mut rng);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme =
        TreedepthScheme::new(id_bits_for(&inst), t).with_strategy(ModelStrategy::Explicit(parents));
    group.bench_function("treedepth_prover", |b| {
        b.iter(|| black_box(scheme.assign(&inst).unwrap().max_bits()));
    });
    let asg = scheme.assign(&inst).unwrap();
    group.bench_function("treedepth_verifier_all_nodes", |b| {
        b.iter(|| black_box(run_verification(&scheme, &inst, &asg).accepted()));
    });
    group.finish();
}

fn config() -> Criterion {
    // Keep the full-suite wall time bounded: 10 samples × short windows.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group!(
    name = benches;
    config = config();
    targets =
    bench_prover_vs_verifier,
    bench_e1_mso_tree,
    bench_e2_counting,
    bench_e3_treedepth,
    bench_e4_gadget,
    bench_e5_kernel,
    bench_e6_minor_free,
    bench_e7_fo,
    bench_e8_words,
    bench_f1_paths,
    bench_p34_spanning_tree,
    bench_s1_exhaustive,
);
criterion_main!(benches);
