//! Minimal table type with markdown and CSV rendering.
//!
//! Cell text is preserved exactly: markdown pipes are escaped (`|` →
//! `\|`) and CSV follows RFC 4180 quoting, so [`parse_csv`] round-trips
//! [`Table::csv`] output including commas, quotes, and newlines in cells.

use std::fmt::Write as _;

/// Escapes a cell for use inside a GitHub-flavored markdown table: `|`
/// would otherwise split the cell. Newlines (which markdown tables cannot
/// represent) become spaces.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|").replace(['\n', '\r'], " ")
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// line break; doubles interior quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses RFC 4180 CSV text (as produced by [`Table::csv`]) into rows of
/// fields. Quoted fields may contain commas, doubled quotes, and line
/// breaks. A trailing newline does not produce an empty row.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {}
            '\n' => {
                if any || !field.is_empty() || !row.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any = false;
            }
            _ => {
                field.push(c);
                any = true;
            }
        }
    }
    if any || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// A titled results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier, e.g. `"E3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim the table validates.
    pub claim: String,
    /// What "shape agreement" means for this table.
    pub shape: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        shape: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            shape: shape.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown (header block + table).
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Paper claim:* {}", self.claim);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Shape criterion:* {}", self.shape);
        let _ = writeln!(out);
        let cells = |row: &[String]| {
            row.iter()
                .map(|c| md_cell(c))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let _ = writeln!(out, "| {} |", cells(&self.columns));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", cells(row));
        }
        out
    }

    /// Renders CSV (header + rows) with RFC 4180 quoting; [`parse_csv`]
    /// inverts it.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let line = |row: &[String]| {
            row.iter()
                .map(|c| csv_field(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", line(&self.columns));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        out
    }
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "demo", "c", "s", &["n", "bits"]);
        t.push([1, 5]);
        t.push([2, 6]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| n | bits |"));
        assert!(md.contains("| 2 | 6 |"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().csv();
        assert_eq!(csv, "n,bits\n1,5\n2,6\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = sample();
        t.push([1]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.2345), "1.23");
    }

    #[test]
    fn markdown_escapes_pipes_and_newlines() {
        let mut t = Table::new("E0", "demo", "c", "s", &["formula", "ok"]);
        t.push(["a | b".to_string(), "line1\nline2".to_string()]);
        let md = t.markdown();
        assert!(md.contains("| a \\| b | line1 line2 |"));
        // The escaped pipe must not create an extra column.
        let data_row = md.lines().last().unwrap();
        assert_eq!(data_row.matches(" | ").count(), 1);
    }

    #[test]
    fn csv_round_trips_commas_quotes_and_newlines() {
        let mut t = Table::new("E0", "demo", "c", "s", &["k", "v"]);
        t.push(["comma, inside".to_string(), "quote \"here\"".to_string()]);
        t.push(["multi\nline".to_string(), "plain".to_string()]);
        let csv = t.csv();
        let parsed = parse_csv(&csv);
        assert_eq!(parsed[0], vec!["k", "v"]);
        assert_eq!(parsed[1], vec!["comma, inside", "quote \"here\""]);
        assert_eq!(parsed[2], vec!["multi\nline", "plain"]);
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn csv_plain_cells_stay_unquoted() {
        let csv = sample().csv();
        assert_eq!(csv, "n,bits\n1,5\n2,6\n");
        assert_eq!(
            parse_csv(&csv),
            vec![vec!["n", "bits"], vec!["1", "5"], vec!["2", "6"]]
        );
    }

    #[test]
    fn parse_csv_handles_empty_fields_and_no_trailing_newline() {
        assert_eq!(parse_csv("a,,c"), vec![vec!["a", "", "c"]]);
        assert_eq!(parse_csv(""), Vec::<Vec<String>>::new());
        assert_eq!(parse_csv("\"\",x\n"), vec![vec!["", "x"]]);
    }
}
