//! Minimal table type with markdown and CSV rendering.

use std::fmt::Write as _;

/// A titled results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier, e.g. `"E3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim the table validates.
    pub claim: String,
    /// What "shape agreement" means for this table.
    pub shape: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        shape: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            shape: shape.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown (header block + table).
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Paper claim:* {}", self.claim);
        let _ = writeln!(out);
        let _ = writeln!(out, "*Shape criterion:* {}", self.shape);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "demo", "c", "s", &["n", "bits"]);
        t.push([1, 5]);
        t.push([2, 6]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| n | bits |"));
        assert!(md.contains("| 2 | 6 |"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().csv();
        assert_eq!(csv, "n,bits\n1,5\n2,6\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = sample();
        t.push([1]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.2345), "1.23");
    }
}
