//! Experiment harness: one module per experiment of DESIGN.md's index.
//!
//! Every module exposes a `run(...) -> Table` (or several) used by both
//! the `experiments` binary — which regenerates `EXPERIMENTS.md` — and
//! the Criterion benches. The experiments mirror the paper's theorems:
//!
//! | module | paper claim |
//! |---|---|
//! | [`e1_mso_trees`] | Thm 2.2: O(1)-bit MSO certification on trees |
//! | [`e2_automorphism`] | Thm 2.3: Ω̃(n) for fixed-point-free automorphism |
//! | [`e3_treedepth`] | Thm 2.4: O(t log n) treedepth certification |
//! | [`e4_treedepth_lb`] | Thm 2.5: Ω(log n) for treedepth ≤ 5 |
//! | [`e5_kernel`] | Thm 2.6 / Prop 6.2: kernel size independent of n |
//! | [`e6_minor_free`] | Cor 2.7: O(log n) minor-freeness |
//! | [`e7_fo_fragments`] | Lemma 2.1: O(log n) FO fragments |
//! | [`e8_words`] | §4 warm-up: O(1) MSO-on-words on paths |
//! | [`e9_bounds`] | bit-ledger size curves vs. declared bounds |
//! | [`f1_figure1`] | Fig. 1: td(P_{2^k − 1}) = k |
//! | [`f4_cops`] | Fig. 4: 5-cop capture on the gadget |
//! | [`p34_spanning_tree`] | Prop 3.4: O(log n) spanning tree + count |
//! | [`a1_radius`] | App. A.1: radius 3 vs radius 1 for diameter ≤ 2 |

pub mod report;

pub mod a1_radius;
pub mod e1_mso_trees;
pub mod e2_automorphism;
pub mod e3_treedepth;
pub mod e4_treedepth_lb;
pub mod e5_kernel;
pub mod e6_minor_free;
pub mod e7_fo_fragments;
pub mod e8_words;
pub mod e9_bounds;
pub mod f1_figure1;
pub mod f4_cops;
pub mod p34_spanning_tree;
pub mod s1_soundness;
pub mod s2_faults;
pub mod s3_oracle;
pub mod s4_net;
pub mod s5_serve;

pub use report::Table;
