//! E7 — Lemma 2.1 / A.2 / A.3: existential and depth-2 FO with O(log n)
//! bits.

use crate::report::{f2, Table};
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::depth2_fo::Depth2FoScheme;
use locert_core::schemes::existential_fo::ExistentialFoScheme;
use locert_graph::{generators, IdAssignment};
use locert_logic::props;

/// Existential FO: `∃` clique/independent-set witnesses across `n` and
/// arity `k`.
pub fn run_existential(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E7a",
        "Existential FO certification (Lemma A.2)",
        "Existential sentences with k quantifiers are certifiable with O(k log n) bits.",
        "bits / (k·log₂ n) bounded by a small constant",
        &["sentence", "k", "n", "max cert [bits]", "bits / (k·log2 n)"],
    );
    for &n in ns {
        for (name, phi, k, graph) in [
            (
                "has_clique(3)",
                props::has_clique(3),
                3usize,
                generators::clique(n.min(40)),
            ),
            (
                "has_independent_set(2)",
                props::has_independent_set(2),
                2,
                generators::cycle(n.max(4)),
            ),
        ] {
            let g = graph;
            let actual_n = g.num_nodes();
            let ids = IdAssignment::contiguous(actual_n);
            let inst = Instance::new(&g, &ids);
            let scheme =
                ExistentialFoScheme::new(id_bits_for(&inst), &phi).expect("existential prenex");
            let out = run_scheme(&scheme, &inst).expect("yes-instance");
            assert!(out.accepted());
            let reference = k as f64 * (actual_n as f64).log2();
            table.push([
                name.to_string(),
                k.to_string(),
                actual_n.to_string(),
                out.max_bits().to_string(),
                f2(out.max_bits() as f64 / reference),
            ]);
        }
    }
    table
}

/// Depth-2 FO: the three Lemma A.3 properties across `n`.
pub fn run_depth2(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E7b",
        "Quantifier-depth-2 FO certification (Lemma A.3)",
        "FO sentences of quantifier depth ≤ 2 are certifiable with O(log n) bits \
         (they reduce to boolean combinations of: single vertex, clique, \
         dominating vertex).",
        "bits / log₂ n bounded by a small constant",
        &[
            "sentence",
            "instance",
            "n",
            "max cert [bits]",
            "bits / log2 n",
        ],
    );
    for &n in ns {
        let cases = [
            (
                "is_clique",
                props::is_clique(),
                generators::clique(n.min(64)),
            ),
            (
                "has_dominating_vertex",
                props::has_dominating_vertex(),
                generators::star(n),
            ),
            (
                "¬has_dominating_vertex",
                locert_logic::ast::not(props::has_dominating_vertex()),
                generators::cycle(n.max(5)),
            ),
        ];
        for (name, phi, g) in cases {
            let actual_n = g.num_nodes();
            let ids = IdAssignment::contiguous(actual_n);
            let inst = Instance::new(&g, &ids);
            let scheme = Depth2FoScheme::from_formula(id_bits_for(&inst), &phi).expect("depth 2");
            let out = run_scheme(&scheme, &inst).expect("yes-instance");
            assert!(out.accepted());
            table.push([
                name.to_string(),
                format!("{}-vertex", actual_n),
                actual_n.to_string(),
                out.max_bits().to_string(),
                f2(out.max_bits() as f64 / (actual_n as f64).log2()),
            ]);
        }
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize) -> usize {
    let g = generators::star(n);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = Depth2FoScheme::from_formula(id_bits_for(&inst), &props::has_dominating_vertex())
        .expect("depth 2");
    run_scheme(&scheme, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_run_and_stay_logarithmic() {
        let a = run_existential(&[16, 64]);
        for row in &a.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 8.0, "{ratio}");
        }
        let b = run_depth2(&[16, 64]);
        for row in &b.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 14.0, "{ratio}");
        }
    }
}
