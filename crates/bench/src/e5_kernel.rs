//! E5 — Theorem 2.6 / Propositions 6.2–6.4: MSO on bounded treedepth via
//! certified kernels.
//!
//! Measures, for fixed `(t, φ)` and growing `n`: the kernel size (flat in
//! `n`), the type-table size (flat), the total certificate size (grows
//! only with `log n`), and EF-validation `G ≃_k H` on the small
//! instances.

use crate::report::{f2, Table};
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::kernel_mso::KernelMsoScheme;
use locert_core::schemes::treedepth::ModelStrategy;
use locert_graph::{generators, IdAssignment};
use locert_kernel::k_reduce;
use locert_logic::ef::duplicator_wins;
use locert_logic::props;
use locert_treedepth::EliminationTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Kernel size and certificate size across `n` for the domination
/// property on stars (`t = 2`) and triangle-freeness on random
/// treedepth-3 graphs.
pub fn run(ns: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E5a",
        "Certified kernelization (Theorem 2.6, Prop 6.4)",
        "Every FO sentence φ is certifiable with O(t log n + f(t, φ)) bits on \
         treedepth-≤-t graphs; the kernel and its type table depend only on (t, φ).",
        "kernel-size and table-size columns flat in n; certificate bits grow \
         only logarithmically",
        &[
            "workload",
            "n",
            "kernel size",
            "#types",
            "max cert [bits]",
            "t·log2 n",
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for &n in ns {
        // Workload A: stars, φ = "has a dominating vertex", t = 2, k = 2.
        let g = generators::star(n);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = KernelMsoScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex())
            .expect("FO sentence");
        let out = run_scheme(&scheme, &inst).expect("star is dominated");
        assert!(out.accepted());
        // Kernel metrics straight from the reduction.
        let mut parents = vec![Some(0); n];
        parents[0] = None;
        let model = EliminationTree::new(&g, &parents).unwrap();
        let red = k_reduce(&g, &model, scheme.k());
        table.push([
            "star/domination t=2".to_string(),
            n.to_string(),
            red.kernel_size().to_string(),
            red.types.len().to_string(),
            out.max_bits().to_string(),
            f2(2.0 * (n as f64).log2()),
        ]);
        // Workload B: random treedepth-3 graphs, φ = triangle-freeness.
        // Ancestor probability 0: a random depth-2 tree (triangle-free
        // by construction), so the workload is always a yes-instance.
        let (g2, parents2) = generators::random_bounded_treedepth(n, 3, 0.0, &mut rng);
        let ids2 = IdAssignment::contiguous(n);
        let inst2 = Instance::new(&g2, &ids2);
        let scheme2 = KernelMsoScheme::new(id_bits_for(&inst2), 3, props::triangle_free())
            .expect("FO sentence")
            .with_strategy(ModelStrategy::Explicit(parents2.clone()));
        let model2 = EliminationTree::new(&g2, &parents2)
            .unwrap()
            .make_coherent(&g2);
        let red2 = k_reduce(&g2, &model2, scheme2.k());
        match run_scheme(&scheme2, &inst2) {
            Ok(out2) => {
                assert!(out2.accepted());
                table.push([
                    "random td<=3 tree/triangle-free".to_string(),
                    n.to_string(),
                    red2.kernel_size().to_string(),
                    red2.types.len().to_string(),
                    out2.max_bits().to_string(),
                    f2(3.0 * (n as f64).log2()),
                ]);
            }
            Err(_) => {
                // The random instance contained a triangle: record the
                // kernel metrics anyway (the reduction exists regardless).
                table.push([
                    "random td<=3 tree/triangle-free (no-instance)".to_string(),
                    n.to_string(),
                    red2.kernel_size().to_string(),
                    red2.types.len().to_string(),
                    "-".to_string(),
                    f2(3.0 * (n as f64).log2()),
                ]);
            }
        }
    }
    table
}

/// Global+local split (\[27], §7.1 remark): pay the f(t, φ) table once
/// globally, keep per-vertex certificates at O(t log n).
pub fn run_global_split(ns: &[usize]) -> Table {
    use locert_core::schemes::kernel_mso::KernelMsoGlobalScheme;
    let mut table = Table::new(
        "E5c",
        "Global + local certificates (the [27] variant of §7.1)",
        "The framework also applies when vertices receive a global certificate \
         plus local ones; the kernel table — the f(t, φ) term — is naturally \
         global, leaving O(t log n) bits per vertex.",
        "local column tracks t·log n; global column flat in n; \
         local+global = the local-only size of E5a",
        &[
            "n",
            "local-only [bits]",
            "split local [bits]",
            "split global [bits]",
        ],
    );
    let phi = props::has_dominating_vertex();
    for &n in ns {
        let g = generators::star(n);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let local_only = KernelMsoScheme::new(id_bits_for(&inst), 2, phi.clone()).expect("FO");
        let full = run_scheme(&local_only, &inst).expect("yes");
        let split = KernelMsoGlobalScheme::new(id_bits_for(&inst), 2, phi.clone()).expect("FO");
        let out = split.run(&inst).expect("yes");
        assert!(out.accepted);
        table.push([
            n.to_string(),
            full.max_bits().to_string(),
            out.max_local_bits.to_string(),
            out.global_bits.to_string(),
        ]);
    }
    table
}

/// EF-validation of Proposition 6.3 on small instances.
pub fn run_ef_validation(trials: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "E5b",
        "Kernel faithfulness G ≃_k H (Proposition 6.3)",
        "The k-reduced graph satisfies the same quantifier-depth-k FO sentences \
         as G — verified by Ehrenfeucht–Fraïssé games.",
        "all trials equivalent",
        &["t", "k", "trials", "≃_k holds"],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for (t, k) in [(2usize, 2usize), (3, 2)] {
        let mut all_ok = true;
        for _ in 0..trials {
            let (g, parents) = generators::random_bounded_treedepth(11, t, 0.5, &mut rng);
            let model = EliminationTree::new(&g, &parents)
                .unwrap()
                .make_coherent(&g);
            let red = k_reduce(&g, &model, k);
            if !duplicator_wins(&g, &red.kernel, k) {
                all_ok = false;
            }
        }
        table.push([
            t.to_string(),
            k.to_string(),
            trials.to_string(),
            all_ok.to_string(),
        ]);
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize) -> usize {
    let g = generators::star(n);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme =
        KernelMsoScheme::new(id_bits_for(&inst), 2, props::has_dominating_vertex()).expect("FO");
    run_scheme(&scheme, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sizes_flat() {
        let t = run(&[32, 128], 11);
        // Star rows: kernel size identical across n.
        let star_rows: Vec<&Vec<String>> =
            t.rows.iter().filter(|r| r[0].starts_with("star")).collect();
        assert_eq!(star_rows[0][2], star_rows[1][2]);
        assert_eq!(star_rows[0][3], star_rows[1][3]);
    }

    #[test]
    fn ef_validation_passes() {
        let t = run_ef_validation(3, 13);
        for row in &t.rows {
            assert_eq!(row[3], "true");
        }
    }
}
