//! A1 — Appendix A.1: the verification radius matters.
//!
//! "Diameter ≤ 2" is decidable with **zero** certificate bits by a
//! radius-3 verifier, but at radius 1 (the paper's model) it requires
//! `Ω̃(n)` bits \[10] — here witnessed by the universal broadcast scheme,
//! the only radius-1 certification of it we (or anyone, essentially) can
//! offer.

use crate::report::Table;
use locert_core::framework::{run_scheme, Assignment, Instance};
use locert_core::radius::{run_radius_verification, DiameterTwoAtRadiusThree};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::universal::UniversalScheme;
use locert_graph::{generators, traversal, IdAssignment};

/// Runs A1 over graph sizes (yes-instances: stars; the no-instances drive
/// the rejection columns).
pub fn run(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "A1",
        "Verification radius: diameter ≤ 2 at radius 3 vs. radius 1 (Appendix A.1)",
        "With radius adapted to the formula, FO properties need no certificates \
         (diameter ≤ 2 at radius 3, 0 bits); at radius 1 the property needs \
         Ω̃(n) bits [10] — the broadcast scheme's Õ(n²)/Õ(m) bits are \
         essentially all one can do.",
        "radius-3 column always 0 bits and correct; radius-1 column grows with n",
        &[
            "n",
            "diameter",
            "radius-3 verdict (0 bits)",
            "radius-1 universal scheme [bits]",
        ],
    );
    for &n in ns {
        let g = generators::star(n); // diameter 2.
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        // Radius 3, empty certificates.
        let empty = Assignment::empty(n);
        let rejected = run_radius_verification(&DiameterTwoAtRadiusThree, &inst, &empty);
        let verdict = rejected.is_empty();
        assert!(verdict, "radius-3 rejected a diameter-2 graph");
        // Radius 1: broadcast the graph.
        let scheme = UniversalScheme::new(id_bits_for(&inst), "diameter<=2", |g| {
            traversal::diameter(g).is_some_and(|d| d <= 2)
        })
        .sparse();
        let out = run_scheme(&scheme, &inst).expect("star has diameter 2");
        assert!(out.accepted());
        table.push([
            n.to_string(),
            "2".to_string(),
            "accept".to_string(),
            out.max_bits().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_contrast() {
        let t = run(&[8, 64]);
        for row in &t.rows {
            assert_eq!(row[2], "accept");
            let bits: usize = row[3].parse().unwrap();
            assert!(bits > 0);
        }
        // Radius-1 cost grows with n; radius-3 stays at zero bits.
        let b0: usize = t.rows[0][3].parse().unwrap();
        let b1: usize = t.rows[1][3].parse().unwrap();
        assert!(b1 > b0);
    }

    #[test]
    fn radius3_rejects_long_paths_without_certificates() {
        let g = generators::path(6);
        let ids = IdAssignment::contiguous(6);
        let inst = Instance::new(&g, &ids);
        let empty = Assignment::empty(6);
        assert!(!run_radius_verification(&DiameterTwoAtRadiusThree, &inst, &empty).is_empty());
    }
}
