//! F4 — Figures 3–4: replay of the explicit cop strategy on the matching
//! gadget.
//!
//! The strategy of the paper's Figure 4: first the apex, then two
//! opposite vertices of the 8-cycle the robber committed to, then a
//! binary search on the remaining 3-vertex path. 5 cops capture when the
//! matchings are equal; with a merged 16-cycle (unequal matchings) the
//! optimal play needs 6.

use crate::report::Table;
use locert_graph::NodeId;
use locert_lb::treedepth_gadget::build_gadget;
use locert_treedepth::cops::{best_escape_robber, cop_number, play_optimal_cops};

/// Replays optimal cop play on equal/unequal gadgets.
pub fn run() -> Table {
    let mut table = Table::new(
        "F4",
        "Cops-and-robber on the matching gadget (Figures 3–4)",
        "5 cops suffice (and are needed) on the equal-matching gadget: apex, two \
         opposite cycle vertices, binary search; the 16-cycle of unequal \
         matchings needs a 6th cop.",
        "cops used by optimal play = game value = treedepth, 5 vs 6",
        &[
            "matchings",
            "game value",
            "cops used (optimal vs best escape)",
        ],
    );
    for (label, m_a, m_b) in [
        ("equal", vec![0usize, 1], vec![0usize, 1]),
        ("unequal", vec![0, 1], vec![1, 0]),
    ] {
        let (g, _) = build_gadget(2, &m_a, &m_b);
        let value = cop_number(&g);
        let used = play_optimal_cops(&g, NodeId(0), best_escape_robber(&g));
        table.push([label.to_string(), value.to_string(), used.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_versus_six() {
        let t = run();
        assert_eq!(t.rows[0][1], "5");
        assert_eq!(t.rows[1][1], "6");
        // Optimal play never exceeds the game value.
        for row in &t.rows {
            let v: usize = row[1].parse().unwrap();
            let u: usize = row[2].parse().unwrap();
            assert!(u <= v);
        }
    }
}
