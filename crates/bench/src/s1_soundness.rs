//! S1 — Soundness attack summary across every scheme.
//!
//! Soundness ("no assignment makes a no-instance accept") is a universal
//! statement that testing can only attack, not prove. This experiment
//! summarizes the attack campaign: for each scheme, a matched
//! no-instance, the number of random-assignment and mutation attacks run,
//! and whether any fooled the verifier (the column must read 0
//! everywhere).

use crate::report::Table;
use locert_automata::library;
use locert_core::attacks::{mutation_attacks, random_assignments};
use locert_core::framework::{Instance, Scheme};
use locert_core::schemes::acyclicity::AcyclicityScheme;
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::depth2_fo::Depth2FoScheme;
use locert_core::schemes::existential_fo::ExistentialFoScheme;
use locert_core::schemes::minor_free::PathMinorFreeScheme;
use locert_core::schemes::mso_tree::MsoTreeScheme;
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_core::schemes::tree_depth_bound::TreeDepthBoundScheme;
use locert_core::schemes::tree_diameter::TreeDiameterScheme;
use locert_core::schemes::treedepth::TreedepthScheme;
use locert_graph::{generators, Graph, IdAssignment};
use locert_logic::props;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One attack campaign row.
struct Campaign {
    scheme: Box<dyn Scheme>,
    /// The no-instance attacked.
    no_instance: Graph,
    /// A related yes-instance whose honest certificates seed mutations
    /// (same vertex count).
    yes_instance: Option<Graph>,
}

fn campaigns(b: u32, n: usize) -> Vec<Campaign> {
    vec![
        Campaign {
            scheme: Box::new(AcyclicityScheme::new(b)),
            no_instance: generators::cycle(n),
            yes_instance: Some(generators::path(n)),
        },
        Campaign {
            scheme: Box::new(VertexCountScheme::new(b, n as u64 + 1)),
            no_instance: generators::path(n),
            yes_instance: None,
        },
        Campaign {
            scheme: Box::new(TreeDiameterScheme::new(b, 3)),
            no_instance: generators::path(n),
            yes_instance: Some(generators::star(n)),
        },
        Campaign {
            scheme: Box::new(TreedepthScheme::new(b, 3)),
            no_instance: generators::path(n.max(15)),
            yes_instance: None,
        },
        Campaign {
            scheme: Box::new(TreeDepthBoundScheme::new(2)),
            no_instance: generators::path(n.max(9)),
            yes_instance: Some(generators::star(n.max(9))),
        },
        Campaign {
            scheme: Box::new(MsoTreeScheme::new(library::has_perfect_matching())),
            no_instance: generators::star(n),
            yes_instance: Some(generators::path(if n.is_multiple_of(2) {
                n
            } else {
                n + 1
            })),
        },
        Campaign {
            scheme: Box::new(
                ExistentialFoScheme::new(b, &props::has_clique(3)).expect("existential"),
            ),
            no_instance: generators::cycle(n),
            yes_instance: None,
        },
        Campaign {
            scheme: Box::new(
                Depth2FoScheme::from_formula(b, &props::has_dominating_vertex()).expect("depth 2"),
            ),
            no_instance: generators::cycle(n.max(5)),
            yes_instance: Some(generators::star(n.max(5))),
        },
        Campaign {
            scheme: Box::new(PathMinorFreeScheme::new(b, 4)),
            no_instance: generators::path(n),
            yes_instance: Some(generators::star(n)),
        },
    ]
}

/// Runs the campaign; every row must report zero successful attacks.
pub fn run(n: usize, rounds: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "S1",
        "Soundness attack campaign",
        "Soundness — every certificate assignment on a no-instance is rejected \
         somewhere — quantifies over all assignments; here each scheme faces \
         random assignments at its honest width plus mutations (bit flips, \
         swaps, blanking) of replayed honest certificates from a matched \
         yes-instance.",
        "successful-attack column identically 0",
        &[
            "scheme",
            "no-instance",
            "random attacks",
            "mutation attacks",
            "successful",
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let b = 6; // id bits for n ≤ 64.
    for c in campaigns(b, n) {
        let g = &c.no_instance;
        let ids = IdAssignment::contiguous(g.num_nodes());
        let inst = Instance::new(g, &ids);
        assert!(b >= id_bits_for(&inst));
        // Honest width for random attacks: from the yes-instance when
        // available, else a representative width.
        let (width, base) = match &c.yes_instance {
            Some(y) => {
                let yids = IdAssignment::contiguous(y.num_nodes());
                let yinst = Instance::new(y, &yids);
                match c.scheme.assign(&yinst) {
                    Ok(asg) => (asg.max_bits().max(1), Some(asg)),
                    Err(_) => (4 * b as usize, None),
                }
            }
            None => (4 * b as usize, None),
        };
        let mut fooled = 0usize;
        if random_assignments(c.scheme.as_ref(), &inst, width, &mut rng, rounds).is_some() {
            fooled += 1;
        }
        let mutations = if let Some(base) = base {
            if base.len() == g.num_nodes()
                && mutation_attacks(c.scheme.as_ref(), &inst, &base, &mut rng, rounds).is_some()
            {
                fooled += 1;
            }
            rounds
        } else {
            0
        };
        table.push([
            c.scheme.name(),
            format!("{}-vertex", g.num_nodes()),
            rounds.to_string(),
            mutations.to_string(),
            fooled.to_string(),
        ]);
    }
    table
}

/// One row of the exhaustive sweep: a scheme, a tiny no-instance, and
/// the certificate width to enumerate up to.
struct ExhaustiveCase {
    scheme: Box<dyn Scheme>,
    no_instance: Graph,
    max_bits: usize,
}

fn exhaustive_cases(b: u32) -> Vec<ExhaustiveCase> {
    vec![
        ExhaustiveCase {
            scheme: Box::new(AcyclicityScheme::new(b)),
            no_instance: generators::cycle(4),
            max_bits: 2,
        },
        ExhaustiveCase {
            scheme: Box::new(VertexCountScheme::new(b, 5)),
            no_instance: generators::path(4),
            max_bits: 2,
        },
        ExhaustiveCase {
            scheme: Box::new(TreeDiameterScheme::new(b, 1)),
            no_instance: generators::path(4),
            max_bits: 2,
        },
        ExhaustiveCase {
            scheme: Box::new(TreeDepthBoundScheme::new(1)),
            no_instance: generators::path(4),
            max_bits: 2,
        },
    ]
}

/// S1b — exhaustive soundness on tiny no-instances.
///
/// Unlike the sampled campaign of [`run`], a clean row here is a *proof*
/// of soundness for that instance and certificate width: every one of
/// the `(2^{max_bits+1} - 1)^n` assignments was enumerated and rejected
/// somewhere. The sweep runs on the `locert-par` pool
/// ([`exhaustive_soundness`] parallelises the enumeration with a
/// deterministic least-witness early exit), which is what makes widths
/// beyond a handful of bits affordable.
pub fn run_exhaustive() -> Table {
    use locert_core::attacks::exhaustive_soundness;

    let mut table = Table::new(
        "S1b",
        "Exhaustive soundness sweep",
        "For tiny no-instances the soundness quantifier is decidable by \
         brute force: enumerate every certificate assignment up to the \
         stated width (certificates ordered by (length, value), combined \
         as a mixed-radix counter) and check that each is rejected by some \
         vertex. The enumeration runs on the locert-par pool; the checked \
         count and any witness are byte-identical at every thread count. \
         Reproduce with: cargo run --release -p locert-bench --bin \
         experiments -- s1",
        "verdict column identically sound; checked = full space everywhere",
        &[
            "scheme",
            "no-instance",
            "max bits",
            "space",
            "checked",
            "verdict",
        ],
    );
    let b = 6;
    for case in exhaustive_cases(b) {
        let g = &case.no_instance;
        let n = g.num_nodes();
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(g, &ids);
        assert!(b >= id_bits_for(&inst));
        let certs_per_vertex = (1u64 << (case.max_bits + 1)) - 1;
        let space = certs_per_vertex.pow(n as u32);
        let (checked, verdict) =
            match exhaustive_soundness(case.scheme.as_ref(), &inst, case.max_bits, 10_000_000) {
                Ok(checked) => (checked, "sound".to_string()),
                Err(e) => (0, format!("UNSOUND: {e}")),
            };
        table.push([
            case.scheme.name(),
            format!("{n}-vertex"),
            case.max_bits.to_string(),
            space.to_string(),
            checked.to_string(),
            verdict,
        ]);
    }
    table
}

/// One exhaustive sweep for the criterion benchmark: acyclicity on a
/// cycle, enumerated to `max_bits`, returning the checked count. The
/// space is `(2^{max_bits+1} - 1)^n`; with `n = 6, max_bits = 2` that is
/// 7^6 ≈ 118k full-graph verifications — enough work for the pool's
/// speedup to be measurable on multi-core hosts.
pub fn exhaustive_once(n: usize, max_bits: usize) -> u64 {
    let g = generators::cycle(n);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme = AcyclicityScheme::new(id_bits_for(&inst));
    locert_core::attacks::exhaustive_soundness(&scheme, &inst, max_bits, 100_000_000)
        .expect("acyclicity is sound on a cycle")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_succeeds() {
        let t = run(12, 120, 777);
        assert!(t.rows.len() >= 8);
        for row in &t.rows {
            assert_eq!(row[4], "0", "scheme {} was fooled", row[0]);
        }
    }

    #[test]
    fn exhaustive_sweep_proves_every_case_sound() {
        let t = run_exhaustive();
        assert!(t.rows.len() >= 4);
        for row in &t.rows {
            assert_eq!(
                row[5], "sound",
                "scheme {} exhaustive sweep: {}",
                row[0], row[5]
            );
            assert_eq!(
                row[3], row[4],
                "scheme {} early-exited a sound sweep",
                row[0]
            );
        }
    }

    #[test]
    fn exhaustive_once_checks_the_full_space() {
        assert_eq!(exhaustive_once(4, 1), 3u64.pow(4));
    }
}
