//! P34 — Proposition 3.4: spanning trees and vertex counts with
//! O(log n) bits.

use crate::report::{f2, Table};
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::spanning_tree::{SpanningTreeScheme, VertexCountScheme};
use locert_graph::{generators, IdAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs P34 over sizes.
pub fn run(ns: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "P34",
        "Spanning-tree and vertex-count certification (Proposition 3.4)",
        "One can locally encode and certify a spanning tree with O(log n) bits; \
         the number of vertices can also be certified with O(log n) bits.",
        "bits / log₂ n bounded by small constants (3 for the tree, 5 with counts)",
        &[
            "n",
            "spanning tree [bits]",
            "vertex count [bits]",
            "tree bits / log2 n",
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for &n in ns {
        let g = generators::random_connected(n, n / 2, &mut rng);
        let ids = IdAssignment::shuffled(n, &mut rng);
        let inst = Instance::new(&g, &ids);
        let st = SpanningTreeScheme::new(id_bits_for(&inst));
        let vc = VertexCountScheme::new(id_bits_for(&inst), n as u64);
        let out_st = run_scheme(&st, &inst).expect("connected");
        let out_vc = run_scheme(&vc, &inst).expect("count matches");
        assert!(out_st.accepted() && out_vc.accepted());
        table.push([
            n.to_string(),
            out_st.max_bits().to_string(),
            out_vc.max_bits().to_string(),
            f2(out_st.max_bits() as f64 / (n as f64).log2()),
        ]);
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::random_connected(n, n / 2, &mut rng);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let st = SpanningTreeScheme::new(id_bits_for(&inst));
    run_scheme(&st, &inst).expect("connected").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logarithmic_sizes() {
        let t = run(&[32, 256, 1024], 17);
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio <= 4.5, "ratio {ratio}");
        }
    }
}
