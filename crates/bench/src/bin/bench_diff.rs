//! bench-diff — the regression gate over committed benchmark baselines.
//!
//! ```text
//! bench-diff BASELINE CURRENT [--threshold FACTOR]
//! bench-diff scale FACTOR IN OUT
//! ```
//!
//! Compares two benchmark artifacts and exits nonzero when any entry in
//! CURRENT is slower than its BASELINE counterpart by the noise threshold
//! or more (default 1.5x). Two artifact schemas are auto-detected:
//!
//! - `locert-criterion/v1` (`BENCH_*.json` from the vendored criterion
//!   stub): compares `median_ns` per benchmark name;
//! - `locert-trace/v1` (legacy `metrics.json`): compares `wall_s` per
//!   experiment id (inline in `experiments`);
//! - `locert-trace/v2` (current `metrics.json`): compares `wall_s` per
//!   experiment id from the `timings` section — the deterministic
//!   `experiments` section carries no wall-clock by design;
//! - `locert-serve/v1` (`loadgen-latency.json` from the serve load
//!   generator): compares `p50_ns` and `p99_ns` per latency entry,
//!   flattened to `<name>/p50` and `<name>/p99` rows.
//!
//! Entries present in only one file are reported but never fail the gate
//! (benchmarks come and go; the gate is about the ones that persist). A
//! markdown delta table goes to stdout so CI logs double as a report.
//!
//! `scale` multiplies every metric in IN by FACTOR and writes OUT — CI
//! uses it to synthesize a known 2x regression and assert the gate trips.
//!
//! Exit codes: 0 = within threshold, 1 = regression, 2 = usage/IO/parse.

use locert_trace::json::{parse, Value};
use std::process::ExitCode;

/// Noise tolerance: current/baseline ratios strictly below this factor pass.
const DEFAULT_THRESHOLD: f64 = 1.5;

const USAGE: &str = "\
usage: bench-diff BASELINE CURRENT [--threshold FACTOR]
       bench-diff scale FACTOR IN OUT

Compares two benchmark artifacts (BENCH_*.json with schema
locert-criterion/v1, metrics.json with schema locert-trace/v1 or
/v2 — v2 wall-clock lives in the \"timings\" section — or
loadgen-latency.json with schema locert-serve/v1, whose p50/p99
nanoseconds are compared per entry), prints a markdown delta table,
and exits 1 if any shared entry in CURRENT reaches or exceeds
BASELINE times FACTOR (default 1.5).

The scale form multiplies every metric in IN by FACTOR and writes
OUT; CI uses it to inject a synthetic regression.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// One comparable entry extracted from an artifact: a name and a metric.
struct Entry {
    name: String,
    value: f64,
}

/// Which schema an artifact declared, and the unit its metric carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Criterion,
    Metrics,
    Serve,
}

impl Kind {
    fn unit(self) -> &'static str {
        match self {
            Kind::Criterion => "median ns",
            Kind::Metrics => "wall s",
            Kind::Serve => "latency ns",
        }
    }
}

/// A v2 `journal` section's ring accounting: (capacity, dropped, entries).
type JournalMeta = (u64, u64, u64);

/// The optional `journal` section of a v2 metrics dump, when present and
/// well-formed.
fn journal_meta(doc: &Value) -> Option<JournalMeta> {
    let j = doc.get("journal")?;
    let field = |name: &str| {
        j.get(name)
            .and_then(Value::as_num)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .map(|v| v as u64)
    };
    Some((field("capacity")?, field("dropped")?, field("entries")?))
}

/// Reads and parses one artifact into its kind, entry list, and
/// (for v2 metrics dumps) journal ring accounting.
fn load(path: &str) -> Result<(Kind, Vec<Entry>, Option<JournalMeta>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (kind, entries) = extract(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok((kind, entries, journal_meta(&doc)))
}

fn extract(doc: &Value) -> Result<(Kind, Vec<Entry>), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" key")?;
    match schema {
        "locert-criterion/v1" => {
            let items = doc
                .get("benchmarks")
                .and_then(Value::as_arr)
                .ok_or("missing \"benchmarks\" array")?;
            let entries = items
                .iter()
                .map(|b| {
                    Ok(Entry {
                        name: b
                            .get("name")
                            .and_then(Value::as_str)
                            .ok_or("benchmark without \"name\"")?
                            .to_string(),
                        value: b
                            .get("median_ns")
                            .and_then(Value::as_num)
                            .ok_or("benchmark without \"median_ns\"")?,
                    })
                })
                .collect::<Result<Vec<_>, &str>>()?;
            Ok((Kind::Criterion, entries))
        }
        "locert-trace/v1" | "locert-trace/v2" => {
            // v1 kept wall_s inline in "experiments"; v2 moved every
            // wall-clock key to the "timings" section so the committed
            // deterministic section never diffs on regeneration.
            let list_key = if schema == "locert-trace/v1" {
                "experiments"
            } else {
                "timings"
            };
            let items = doc
                .get(list_key)
                .and_then(Value::as_arr)
                .ok_or("missing wall-clock entry array")?;
            let entries = items
                .iter()
                .map(|e| {
                    Ok(Entry {
                        name: e
                            .get("id")
                            .and_then(Value::as_str)
                            .ok_or("experiment without \"id\"")?
                            .to_string(),
                        value: e
                            .get("wall_s")
                            .and_then(Value::as_num)
                            .ok_or("experiment without \"wall_s\"")?,
                    })
                })
                .collect::<Result<Vec<_>, &str>>()?;
            Ok((Kind::Metrics, entries))
        }
        "locert-serve/v1" => {
            // Each latency entry carries two comparable quantiles;
            // flatten them into independent rows so a p99-only
            // regression is its own line in the delta table.
            let items = doc
                .get("latency")
                .and_then(Value::as_arr)
                .ok_or("missing \"latency\" array")?;
            let mut entries = Vec::new();
            for item in items {
                let name = item
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("latency entry without \"name\"")?;
                for quantile in ["p50", "p99"] {
                    entries.push(Entry {
                        name: format!("{name}/{quantile}"),
                        value: item
                            .get(&format!("{quantile}_ns"))
                            .and_then(Value::as_num)
                            .ok_or("latency entry without p50_ns/p99_ns")?,
                    });
                }
            }
            Ok((Kind::Serve, entries))
        }
        other => Err(format!("unknown schema {other:?}")),
    }
}

/// Multiplies every metric in the artifact by `factor`, in place.
fn scale_doc(doc: &mut Value, factor: f64) -> Result<(), String> {
    let (kind, _) = extract(doc)?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    let (list_key, metric_keys): (&str, &[&str]) = match kind {
        Kind::Criterion => ("benchmarks", &["median_ns"]),
        Kind::Metrics if schema == "locert-trace/v1" => ("experiments", &["wall_s"]),
        Kind::Metrics => ("timings", &["wall_s"]),
        Kind::Serve => ("latency", &["p50_ns", "p99_ns"]),
    };
    let Value::Obj(map) = doc else {
        unreachable!("extract checked")
    };
    let Some(Value::Arr(items)) = map.get_mut(list_key) else {
        unreachable!("extract checked")
    };
    for item in items {
        if let Value::Obj(fields) = item {
            for metric_key in metric_keys {
                if let Some(Value::Num(v)) = fields.get_mut(*metric_key) {
                    *v *= factor;
                }
            }
        }
    }
    Ok(())
}

fn run_scale(factor_s: &str, input: &str, output: &str) -> ExitCode {
    let Ok(factor) = factor_s.parse::<f64>() else {
        return fail(&format!("bad scale factor {factor_s:?}"));
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    let mut doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{input}: {e}")),
    };
    if let Err(e) = scale_doc(&mut doc, factor) {
        return fail(&e);
    }
    if let Err(e) = std::fs::write(output, format!("{doc}\n")) {
        return fail(&format!("cannot write {output}: {e}"));
    }
    println!("scaled {input} by {factor} -> {output}");
    ExitCode::SUCCESS
}

/// Formats a metric for the table: ns as integers, seconds with precision.
fn fmt_value(kind: Kind, v: f64) -> String {
    match kind {
        Kind::Criterion | Kind::Serve => format!("{v:.0}"),
        Kind::Metrics => format!("{v:.3}"),
    }
}

fn run_diff(baseline_path: &str, current_path: &str, threshold: f64) -> ExitCode {
    let (base_kind, base, base_journal) = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (cur_kind, cur, cur_journal) = match load(current_path) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if base_kind != cur_kind {
        return fail(&format!(
            "schema mismatch: {baseline_path} is {base_kind:?}, {current_path} is {cur_kind:?}"
        ));
    }

    println!("## bench-diff: {baseline_path} vs {current_path}");
    println!();
    println!("Threshold: current/baseline >= {threshold:.2} on any shared entry fails the gate.");
    println!();
    // Journal ring accounting (report-only, never gates): a truncated
    // journal means wall-clock entries were produced under different
    // recording pressure, worth seeing next to the deltas.
    for (label, meta) in [("baseline", &base_journal), ("current", &cur_journal)] {
        if let Some((capacity, dropped, entries)) = meta {
            let note = if *dropped > 0 {
                " — **truncated**"
            } else {
                ""
            };
            println!("Journal ({label}): {entries}/{capacity} events, {dropped} dropped{note}.");
        }
    }
    if base_journal.is_some() || cur_journal.is_some() {
        println!();
    }
    println!(
        "| benchmark | baseline ({u}) | current ({u}) | ratio | status |",
        u = base_kind.unit()
    );
    println!("|---|---:|---:|---:|---|");

    let mut regressions = Vec::new();
    let mut shared = 0usize;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            println!(
                "| {} | {} | — | — | removed |",
                b.name,
                fmt_value(base_kind, b.value)
            );
            continue;
        };
        shared += 1;
        // A zero baseline can't define a ratio; treat any nonzero current
        // value as within noise rather than dividing by zero.
        let ratio = if b.value == 0.0 {
            1.0
        } else {
            c.value / b.value
        };
        // A regression exactly at the threshold counts: the gate promises
        // "ratios up to FACTOR pass", so landing on the factor fails. The
        // `ratio > 1.0` guard keeps identical inputs green at threshold 1.
        let status = if ratio >= threshold && ratio > 1.0 {
            regressions.push(b.name.clone());
            "**REGRESSION**"
        } else if ratio < 1.0 / threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "| {} | {} | {} | {ratio:.2} | {status} |",
            b.name,
            fmt_value(base_kind, b.value),
            fmt_value(base_kind, c.value),
        );
    }
    for c in &cur {
        if !base.iter().any(|b| b.name == c.name) {
            println!(
                "| {} | — | {} | — | added |",
                c.name,
                fmt_value(base_kind, c.value)
            );
        }
    }

    println!();
    if regressions.is_empty() {
        println!("No regressions across {shared} shared entries.");
        ExitCode::SUCCESS
    } else {
        println!(
            "{} regression(s) at or beyond {threshold:.2}x: {}",
            regressions.len(),
            regressions.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("scale") {
        return match args.as_slice() {
            [_, factor, input, output] => run_scale(factor, input, output),
            _ => fail("scale takes exactly FACTOR IN OUT"),
        };
    }

    let mut threshold = DEFAULT_THRESHOLD;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next() else {
                    return fail("--threshold needs a value");
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 1.0 => threshold = t,
                    _ => return fail(&format!("bad threshold {v:?} (need a number >= 1)")),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return fail(&format!("unknown flag {other:?}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    match paths.as_slice() {
        [baseline, current] => run_diff(baseline, current, threshold),
        _ => fail("expected exactly BASELINE and CURRENT paths"),
    }
}
