//! Regenerates `EXPERIMENTS.md`: runs every experiment of the DESIGN.md
//! index and writes the paper-vs-measured report.
//!
//! Usage:
//!
//! ```text
//! experiments [--out PATH] [--quick] [--threads N] [--metrics [PATH]]
//!             [--baseline] [--journal [PATH]] [--chrome-trace [PATH]]
//!             [only-ids…]
//! ```
//!
//! `--quick` shrinks the size grids (used by CI-style smoke runs);
//! `--threads N` sets the worker count of the `locert-par` pool
//! (default: `LOCERT_THREADS`, then available parallelism) — every
//! deterministic artifact is byte-identical at any value; `--metrics`
//! enables the locert-trace subscriber and writes a machine-readable
//! telemetry dump (default `target/metrics.json`) plus a Telemetry
//! appendix in the report; `--baseline` writes the dump to the committed
//! workspace-root `metrics.json` instead (baseline regeneration);
//! `--journal` records the replayable verification journal and streams
//! it out as JSONL (default `target/journal.jsonl`) in O(line) memory;
//! `--journal-capacity` bounds the in-memory ring buffer (events beyond
//! it evict oldest-first and are tallied under `journal.dropped_events`
//! and the metrics dump's `journal` section); `--chrome-trace` exports
//! the span tree in Chrome trace-event format (default
//! `target/trace.json`, load via `chrome://tracing` or Perfetto);
//! trailing arguments select
//! experiment ids (`e1`, `e4`, `f1`, …). Unknown `--` flags and unknown
//! ids are usage errors; unwritable output paths are IO errors (exit 1),
//! not panics.
//!
//! The metrics dump (`locert-trace/v2`) keeps seed-deterministic
//! telemetry (counters, value histograms) in `experiments` and
//! run-varying telemetry (wall time, `par.*` scheduling counters, `.ns`
//! histograms, span trees) in `timings`, so committed baselines and CI
//! byte-comparisons read only the deterministic section.

use locert_bench::*;
use locert_trace::json::Value;
use std::fmt::Write as _;

/// Every experiment id the binary knows how to run, in report order.
const KNOWN_IDS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "f1", "f4", "p34", "a1", "s1", "s2",
    "s3", "s4", "s5",
];

const USAGE: &str = "\
usage: experiments [--out PATH] [--quick] [--threads N] [--metrics [PATH]]
                   [--baseline] [--journal [PATH]] [--journal-capacity N]
                   [--chrome-trace [PATH]] [only-ids…]

  --out PATH            report destination (default EXPERIMENTS.md)
  --quick               shrink size grids for a fast smoke run
  --threads N           worker count for the locert-par pool (default:
                        LOCERT_THREADS env, then available parallelism);
                        deterministic artifacts are byte-identical at any N
  --metrics [PATH]      record spans/counters/histograms via locert-trace
                        and write them as JSON (default
                        target/metrics.json); also appends a Telemetry
                        appendix to the report
  --baseline            write the telemetry dump to the committed
                        workspace-root metrics.json (baseline
                        regeneration; implies --metrics metrics.json)
  --journal [PATH]      record the replayable verification journal and
                        stream it out as JSONL (default
                        target/journal.jsonl)
  --journal-capacity N  ring-buffer capacity in events (default 65536);
                        overflow evicts oldest-first, counted in
                        journal.dropped_events and the metrics journal
                        section
  --chrome-trace [PATH] export the span tree as Chrome trace events
                        (default target/trace.json)
  --help                print this message
  only-ids…             run only the listed experiments (e1 e2 e3 e4 e5 e6
                        e7 e8 e9 f1 f4 p34 a1 s1 s2 s3 s4 s5)";

fn fail_usage(msg: &str) -> ! {
    eprintln!("experiments: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// A zero worker count (flag or environment) exits 1: constructing a
/// zero-worker pool would deadlock the first parallel region, and the
/// silent fall-back the environment variable used to get hid typos in
/// CI matrices.
fn fail_zero_threads(source: &str) -> ! {
    eprintln!("experiments: {source}: thread count must be at least 1\n{USAGE}");
    std::process::exit(1);
}

fn fail_io(what: &str, path: &str, err: &std::io::Error) -> ! {
    eprintln!("experiments: cannot write {what} {path}: {err}");
    std::process::exit(1);
}

/// Writes `content` to `path`, creating parent directories; IO failures
/// are reported as errors (exit 1), never panics.
fn write_artifact(what: &str, path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail_io(what, path, &e);
            }
        }
    }
    if let Err(e) = std::fs::write(path, content) {
        fail_io(what, path, &e);
    }
}

fn main() {
    if std::env::var("LOCERT_THREADS").is_ok_and(|v| v.trim().parse::<usize>() == Ok(0)) {
        fail_zero_threads("LOCERT_THREADS=0");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "EXPERIMENTS.md".to_string();
    let mut quick = false;
    let mut metrics_path: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    // The path operand of --metrics/--journal/--chrome-trace is optional:
    // consume the next argument unless it is a flag or an experiment id.
    let optional_path = |args: &[String], i: usize| -> Option<String> {
        args.get(i + 1)
            .filter(|a| {
                !a.starts_with("--") && !KNOWN_IDS.contains(&a.to_ascii_lowercase().as_str())
            })
            .cloned()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => fail_usage("--out needs a path"),
                }
            }
            "--quick" => quick = true,
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|a| a.parse::<usize>().ok())
                    .unwrap_or_else(|| fail_usage("--threads needs an integer"));
                if n == 0 {
                    fail_zero_threads("--threads 0");
                }
                if !locert_par::configure_threads(n) {
                    fail_usage("--threads must come before the pool is first used");
                }
            }
            "--metrics" => match optional_path(&args, i) {
                Some(p) => {
                    i += 1;
                    metrics_path = Some(p);
                }
                None => metrics_path = Some("target/metrics.json".to_string()),
            },
            "--baseline" => metrics_path = Some("metrics.json".to_string()),
            "--journal" => match optional_path(&args, i) {
                Some(p) => {
                    i += 1;
                    journal_path = Some(p);
                }
                None => journal_path = Some("target/journal.jsonl".to_string()),
            },
            "--journal-capacity" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|a| a.parse::<usize>().ok())
                    .unwrap_or_else(|| fail_usage("--journal-capacity needs an integer"));
                if n == 0 {
                    fail_usage("--journal-capacity must be at least 1");
                }
                locert_trace::journal::set_capacity(n);
            }
            "--chrome-trace" => match optional_path(&args, i) {
                Some(p) => {
                    i += 1;
                    chrome_path = Some(p);
                }
                None => chrome_path = Some("target/trace.json".to_string()),
            },
            flag if flag.starts_with("--") => {
                fail_usage(&format!("unknown flag {flag}"));
            }
            id => {
                let id = id.to_ascii_lowercase();
                if !KNOWN_IDS.contains(&id.as_str()) {
                    fail_usage(&format!("unknown experiment id {id:?}"));
                }
                only.push(id);
            }
        }
        i += 1;
    }
    let want = |id: &str| only.is_empty() || only.iter().any(|o| o == id);
    let tracing = metrics_path.is_some() || chrome_path.is_some();
    if tracing {
        locert_trace::enable();
    }
    if journal_path.is_some() {
        locert_trace::journal::enable();
    }

    let (small, medium, large): (Vec<usize>, Vec<usize>, Vec<usize>) = if quick {
        (vec![16, 64], vec![32, 128], vec![64, 256])
    } else {
        (
            vec![16, 64, 256, 1024, 4096],
            vec![64, 256, 1024, 4096],
            vec![256, 1024, 4096, 16384, 32768],
        )
    };

    let mut tables: Vec<Table> = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut telemetry: Vec<(String, f64, locert_trace::Snapshot)> = Vec::new();
    macro_rules! run_exp {
        ($id:expr, $body:expr) => {
            if want($id) {
                eprintln!("running {} …", $id);
                if tracing {
                    locert_trace::reset();
                }
                locert_trace::journal::record_with(|| locert_trace::journal::Event::Marker {
                    label: $id.to_string(),
                });
                let start = std::time::Instant::now();
                let produced: Vec<Table> = {
                    let _span = locert_trace::span($id);
                    $body
                };
                let secs = start.elapsed().as_secs_f64();
                if tracing {
                    telemetry.push(($id.to_string(), secs, locert_trace::snapshot()));
                }
                timings.push(($id.to_string(), secs));
                for t in produced {
                    println!("{}", t.markdown());
                    tables.push(t);
                }
            }
        };
    }

    run_exp!(
        "e1",
        vec![
            e1_mso_trees::run(&small),
            e1_mso_trees::run_compiled(&small)
        ]
    );
    run_exp!("e2", {
        let count_sizes: Vec<usize> = if quick {
            vec![16, 64]
        } else {
            vec![16, 64, 256, 512]
        };
        vec![
            e2_automorphism::run_counting(&count_sizes),
            e2_automorphism::run_depth2(&[8, 16, 32, 64]),
            e2_automorphism::run_upper_vs_lower(if quick { &[2, 4] } else { &[2, 4, 8, 12] }),
            e2_automorphism::run_dichotomy(if quick { 2 } else { 4 }),
        ]
    });
    run_exp!("e3", {
        let ts = [2usize, 3, 4, 6, 8];
        vec![e3_treedepth::run(&ts, &large, 0xE3)]
    });
    run_exp!("e4", {
        let rate_sizes: Vec<usize> = if quick {
            vec![8, 64]
        } else {
            vec![8, 32, 128, 512, 2048]
        };
        vec![
            e4_treedepth_lb::run_dichotomy(),
            e4_treedepth_lb::run_rates(&rate_sizes),
        ]
    });
    run_exp!("e5", {
        vec![
            e5_kernel::run(&medium, 0xE5),
            e5_kernel::run_global_split(&medium),
            e5_kernel::run_ef_validation(if quick { 2 } else { 5 }, 0x5E),
        ]
    });
    run_exp!("e6", {
        vec![
            e6_minor_free::run_paths(&[4, 6], &medium),
            e6_minor_free::run_cycles(&[4, 16, 64, 256]),
        ]
    });
    run_exp!("e7", {
        vec![
            e7_fo_fragments::run_existential(&medium),
            e7_fo_fragments::run_depth2(&medium),
        ]
    });
    run_exp!("e8", vec![e8_words::run(&small)]);
    run_exp!("e9", e9_bounds::run(quick));
    run_exp!("f1", vec![f1_figure1::run(if quick { 6 } else { 12 })]);
    run_exp!("f4", vec![f4_cops::run()]);
    run_exp!("p34", vec![p34_spanning_tree::run(&medium, 0x34)]);
    run_exp!("a1", vec![a1_radius::run(&small)]);
    run_exp!("s1", {
        let rounds = if quick { 60 } else { 300 };
        vec![
            s1_soundness::run(12, rounds, 0x51),
            s1_soundness::run_exhaustive(),
        ]
    });
    run_exp!("s2", {
        let runs = if quick { 40 } else { 200 };
        let (rates, provenance) = s2_faults::run_with_provenance(12, runs, 0x52);
        vec![rates, provenance]
    });
    run_exp!("s3", vec![s3_oracle::run(quick, 0x53)]);
    run_exp!("s4", vec![s4_net::run(quick, 0x54)]);
    run_exp!("s5", s5_serve::run(quick));

    // Assemble the report.
    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Regenerated by `cargo run -p locert-bench --release --bin experiments`. \
         Each section records the paper claim, the shape criterion we check \
         (absolute constants are ours — the substrate is a simulator, not the \
         authors' model — but who wins, the growth rates, and the dichotomies \
         must match), and the measured table."
    );
    let _ = writeln!(md);
    let _ = writeln!(md, "## Experiment index");
    let _ = writeln!(md);
    let _ = writeln!(md, "| id | title | wall time [s] |");
    let _ = writeln!(md, "|---|---|---|");
    for (id, secs) in &timings {
        let title = tables
            .iter()
            .find(|t| t.id.to_ascii_lowercase().starts_with(id.as_str()))
            .map(|t| t.title.clone())
            .unwrap_or_default();
        let _ = writeln!(md, "| {id} | {title} | {secs:.2} |");
    }
    let _ = writeln!(md);
    if let Some(path) = &metrics_path {
        let _ = writeln!(
            md,
            "Telemetry for this run (spans, counters, histograms) is in the \
             [appendix](#telemetry-appendix) and, machine-readable, in \
             `{path}`."
        );
        let _ = writeln!(md);
    }
    for t in &tables {
        let _ = writeln!(md, "{}", t.markdown());
    }
    // Snapshot the journal once: the metrics dump's `journal` section
    // and the JSONL artifact must describe the same state.
    let journal_snap = journal_path
        .as_ref()
        .map(|_| locert_trace::journal::snapshot());
    if let Some(path) = &metrics_path {
        let _ = writeln!(md, "## Telemetry appendix");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Recorded by the `locert-trace` subscriber (`--metrics`). Metric \
             names follow `layer.component.metric` (DESIGN.md §Observability); \
             `.ns` histograms are wall-time and vary between runs, counters \
             are deterministic for fixed seeds."
        );
        for (id, secs, snap) in &telemetry {
            let _ = writeln!(md);
            let _ = writeln!(md, "### {id} ({secs:.2} s)");
            let _ = writeln!(md);
            let _ = writeln!(md, "{}", locert_trace::export::snapshot_markdown(snap));
        }
        write_metrics_json(path, quick, &telemetry, journal_snap.as_ref());
        eprintln!("wrote {path} ({} experiments)", telemetry.len());
    }
    if let Some(path) = &chrome_path {
        let sections: Vec<(&str, &locert_trace::Snapshot)> = telemetry
            .iter()
            .map(|(id, _, snap)| (id.as_str(), snap))
            .collect();
        write_artifact(
            "chrome trace",
            path,
            &locert_trace::export::chrome_trace_string(&sections),
        );
        eprintln!("wrote {path} ({} sections)", sections.len());
    }
    if let (Some(path), Some(snap)) = (&journal_path, &journal_snap) {
        write_journal_artifact(path, snap);
        eprintln!(
            "wrote {path} ({} events, {} dropped)",
            snap.entries.len(),
            snap.dropped
        );
    }
    write_artifact("report", &out_path, &md);
    eprintln!("wrote {out_path} ({} tables)", tables.len());
}

/// Streams the journal snapshot to `path` as JSONL via
/// `journal::write_jsonl` — one buffered line at a time, so a
/// ring-capacity-sized journal never needs a second in-memory copy of
/// its serialization. IO failures exit 1 like every other artifact.
fn write_journal_artifact(path: &str, snap: &locert_trace::journal::JournalSnapshot) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail_io("journal", path, &e);
            }
        }
    }
    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        locert_trace::journal::write_jsonl(snap, &mut out)?;
        std::io::Write::flush(&mut out)
    };
    if let Err(e) = write() {
        fail_io("journal", path, &e);
    }
}

/// The optional `journal` section of the metrics dump: ring
/// configuration and outcome, so regression tooling can tell a
/// truncated journal from a complete one without parsing the JSONL.
fn journal_meta_json(snap: &locert_trace::journal::JournalSnapshot) -> Value {
    Value::obj([
        (
            "capacity".to_string(),
            Value::from(locert_trace::journal::capacity() as u64),
        ),
        ("dropped".to_string(), Value::from(snap.dropped)),
        (
            "entries".to_string(),
            Value::from(snap.entries.len() as u64),
        ),
    ])
}

/// Serializes per-experiment telemetry as the `locert-trace/v2` document
/// checked by `trace-check` (see `crates/trace/src/bin/trace_check.rs`).
///
/// Each snapshot is split (`export::split_deterministic`) into the
/// seed-deterministic half (counters and value histograms — byte-stable
/// at any thread count, under `experiments`) and the run-varying half
/// (`wall_s`, `par.*` scheduling counters, `.ns` histograms, span trees —
/// under `timings`). Baseline regeneration commits the whole file, but
/// regression tooling (`trace-check --compare`, `bench_diff`, the CI
/// `cmp`) reads only the deterministic section.
fn write_metrics_json(
    path: &str,
    quick: bool,
    telemetry: &[(String, f64, locert_trace::Snapshot)],
    journal_snap: Option<&locert_trace::journal::JournalSnapshot>,
) {
    let mut experiments: Vec<Value> = Vec::new();
    let mut timing_entries: Vec<Value> = Vec::new();
    for (id, secs, snap) in telemetry {
        let (deterministic, timing) = locert_trace::export::split_deterministic(snap);
        experiments.push(Value::obj([
            ("id".to_string(), Value::from(id.as_str())),
            (
                "telemetry".to_string(),
                locert_trace::export::snapshot_to_json(&deterministic),
            ),
        ]));
        timing_entries.push(Value::obj([
            ("id".to_string(), Value::from(id.as_str())),
            ("wall_s".to_string(), Value::Num(*secs)),
            (
                "telemetry".to_string(),
                locert_trace::export::snapshot_to_json(&timing),
            ),
        ]));
    }
    let mut fields = vec![
        ("schema".to_string(), Value::from("locert-trace/v2")),
        ("quick".to_string(), Value::Bool(quick)),
        ("experiments".to_string(), Value::Arr(experiments)),
        ("timings".to_string(), Value::Arr(timing_entries)),
    ];
    if let Some(snap) = journal_snap {
        fields.push(("journal".to_string(), journal_meta_json(snap)));
    }
    write_artifact("metrics", path, &format!("{}\n", Value::obj(fields)));
}
