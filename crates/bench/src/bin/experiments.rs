//! Regenerates `EXPERIMENTS.md`: runs every experiment of the DESIGN.md
//! index and writes the paper-vs-measured report.
//!
//! Usage:
//!
//! ```text
//! experiments [--out PATH] [--quick] [--metrics [PATH]] [only-ids…]
//! ```
//!
//! `--quick` shrinks the size grids (used by CI-style smoke runs);
//! `--metrics` enables the locert-trace subscriber and writes a
//! machine-readable telemetry dump (default `metrics.json`) plus a
//! Telemetry appendix in the report; trailing arguments select
//! experiment ids (`e1`, `e4`, `f1`, …). Unknown `--` flags and unknown
//! ids are usage errors.

use locert_bench::*;
use locert_trace::json::Value;
use std::fmt::Write as _;

/// Every experiment id the binary knows how to run, in report order.
const KNOWN_IDS: [&str; 14] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "f1", "f4", "p34", "a1", "s1", "s2",
];

const USAGE: &str = "\
usage: experiments [--out PATH] [--quick] [--metrics [PATH]] [only-ids…]

  --out PATH        report destination (default EXPERIMENTS.md)
  --quick           shrink size grids for a fast smoke run
  --metrics [PATH]  record spans/counters/histograms via locert-trace and
                    write them as JSON (default metrics.json); also appends
                    a Telemetry appendix to the report
  --help            print this message
  only-ids…         run only the listed experiments (e1 e2 e3 e4 e5 e6 e7
                    e8 f1 f4 p34 a1 s1 s2)";

fn fail_usage(msg: &str) -> ! {
    eprintln!("experiments: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "EXPERIMENTS.md".to_string();
    let mut quick = false;
    let mut metrics_path: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => fail_usage("--out needs a path"),
                }
            }
            "--quick" => quick = true,
            "--metrics" => {
                // The path operand is optional: consume the next argument
                // unless it is a flag or an experiment id.
                let next = args.get(i + 1);
                let takes_path = next.is_some_and(|a| {
                    !a.starts_with("--") && !KNOWN_IDS.contains(&a.to_ascii_lowercase().as_str())
                });
                if takes_path {
                    i += 1;
                    metrics_path = Some(args[i].clone());
                } else {
                    metrics_path = Some("metrics.json".to_string());
                }
            }
            flag if flag.starts_with("--") => {
                fail_usage(&format!("unknown flag {flag}"));
            }
            id => {
                let id = id.to_ascii_lowercase();
                if !KNOWN_IDS.contains(&id.as_str()) {
                    fail_usage(&format!("unknown experiment id {id:?}"));
                }
                only.push(id);
            }
        }
        i += 1;
    }
    let want = |id: &str| only.is_empty() || only.iter().any(|o| o == id);
    if metrics_path.is_some() {
        locert_trace::enable();
    }

    let (small, medium, large): (Vec<usize>, Vec<usize>, Vec<usize>) = if quick {
        (vec![16, 64], vec![32, 128], vec![64, 256])
    } else {
        (
            vec![16, 64, 256, 1024, 4096],
            vec![64, 256, 1024, 4096],
            vec![256, 1024, 4096, 16384, 32768],
        )
    };

    let mut tables: Vec<Table> = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut telemetry: Vec<(String, f64, locert_trace::Snapshot)> = Vec::new();
    macro_rules! run_exp {
        ($id:expr, $body:expr) => {
            if want($id) {
                eprintln!("running {} …", $id);
                if metrics_path.is_some() {
                    locert_trace::reset();
                }
                let start = std::time::Instant::now();
                let produced: Vec<Table> = {
                    let _span = locert_trace::span($id);
                    $body
                };
                let secs = start.elapsed().as_secs_f64();
                if metrics_path.is_some() {
                    telemetry.push(($id.to_string(), secs, locert_trace::snapshot()));
                }
                timings.push(($id.to_string(), secs));
                for t in produced {
                    println!("{}", t.markdown());
                    tables.push(t);
                }
            }
        };
    }

    run_exp!(
        "e1",
        vec![
            e1_mso_trees::run(&small),
            e1_mso_trees::run_compiled(&small)
        ]
    );
    run_exp!("e2", {
        let count_sizes: Vec<usize> = if quick {
            vec![16, 64]
        } else {
            vec![16, 64, 256, 512]
        };
        vec![
            e2_automorphism::run_counting(&count_sizes),
            e2_automorphism::run_depth2(&[8, 16, 32, 64]),
            e2_automorphism::run_upper_vs_lower(if quick { &[2, 4] } else { &[2, 4, 8, 12] }),
            e2_automorphism::run_dichotomy(if quick { 2 } else { 4 }),
        ]
    });
    run_exp!("e3", {
        let ts = [2usize, 3, 4, 6, 8];
        vec![e3_treedepth::run(&ts, &large, 0xE3)]
    });
    run_exp!("e4", {
        let rate_sizes: Vec<usize> = if quick {
            vec![8, 64]
        } else {
            vec![8, 32, 128, 512, 2048]
        };
        vec![
            e4_treedepth_lb::run_dichotomy(),
            e4_treedepth_lb::run_rates(&rate_sizes),
        ]
    });
    run_exp!("e5", {
        vec![
            e5_kernel::run(&medium, 0xE5),
            e5_kernel::run_global_split(&medium),
            e5_kernel::run_ef_validation(if quick { 2 } else { 5 }, 0x5E),
        ]
    });
    run_exp!("e6", {
        vec![
            e6_minor_free::run_paths(&[4, 6], &medium),
            e6_minor_free::run_cycles(&[4, 16, 64, 256]),
        ]
    });
    run_exp!("e7", {
        vec![
            e7_fo_fragments::run_existential(&medium),
            e7_fo_fragments::run_depth2(&medium),
        ]
    });
    run_exp!("e8", vec![e8_words::run(&small)]);
    run_exp!("f1", vec![f1_figure1::run(if quick { 6 } else { 12 })]);
    run_exp!("f4", vec![f4_cops::run()]);
    run_exp!("p34", vec![p34_spanning_tree::run(&medium, 0x34)]);
    run_exp!("a1", vec![a1_radius::run(&small)]);
    run_exp!("s1", {
        let rounds = if quick { 60 } else { 300 };
        vec![s1_soundness::run(12, rounds, 0x51)]
    });
    run_exp!("s2", {
        let runs = if quick { 40 } else { 200 };
        vec![s2_faults::run(12, runs, 0x52)]
    });

    // Assemble the report.
    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Regenerated by `cargo run -p locert-bench --release --bin experiments`. \
         Each section records the paper claim, the shape criterion we check \
         (absolute constants are ours — the substrate is a simulator, not the \
         authors' model — but who wins, the growth rates, and the dichotomies \
         must match), and the measured table."
    );
    let _ = writeln!(md);
    let _ = writeln!(md, "## Experiment index");
    let _ = writeln!(md);
    let _ = writeln!(md, "| id | title | wall time [s] |");
    let _ = writeln!(md, "|---|---|---|");
    for (id, secs) in &timings {
        let title = tables
            .iter()
            .find(|t| t.id.to_ascii_lowercase().starts_with(id.as_str()))
            .map(|t| t.title.clone())
            .unwrap_or_default();
        let _ = writeln!(md, "| {id} | {title} | {secs:.2} |");
    }
    let _ = writeln!(md);
    if metrics_path.is_some() {
        let _ = writeln!(
            md,
            "Telemetry for this run (spans, counters, histograms) is in the \
             [appendix](#telemetry-appendix) and, machine-readable, in \
             `{}`.",
            metrics_path.as_deref().unwrap_or("metrics.json")
        );
        let _ = writeln!(md);
    }
    for t in &tables {
        let _ = writeln!(md, "{}", t.markdown());
    }
    if let Some(path) = &metrics_path {
        let _ = writeln!(md, "## Telemetry appendix");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Recorded by the `locert-trace` subscriber (`--metrics`). Metric \
             names follow `layer.component.metric` (DESIGN.md §Observability); \
             `.ns` histograms are wall-time and vary between runs, counters \
             are deterministic for fixed seeds."
        );
        for (id, secs, snap) in &telemetry {
            let _ = writeln!(md);
            let _ = writeln!(md, "### {id} ({secs:.2} s)");
            let _ = writeln!(md);
            let _ = writeln!(md, "{}", locert_trace::export::snapshot_markdown(snap));
        }
        write_metrics_json(path, quick, &telemetry);
        eprintln!("wrote {path} ({} experiments)", telemetry.len());
    }
    std::fs::write(&out_path, md).expect("write report");
    eprintln!("wrote {out_path} ({} tables)", tables.len());
}

/// Serializes per-experiment telemetry as the `locert-trace/v1` document
/// checked by `trace-check` (see `crates/trace/src/bin/trace_check.rs`).
fn write_metrics_json(
    path: &str,
    quick: bool,
    telemetry: &[(String, f64, locert_trace::Snapshot)],
) {
    let experiments: Vec<Value> = telemetry
        .iter()
        .map(|(id, secs, snap)| {
            Value::obj([
                ("id".to_string(), Value::from(id.as_str())),
                ("wall_s".to_string(), Value::Num(*secs)),
                (
                    "telemetry".to_string(),
                    locert_trace::export::snapshot_to_json(snap),
                ),
            ])
        })
        .collect();
    let doc = Value::obj([
        ("schema".to_string(), Value::from("locert-trace/v1")),
        ("quick".to_string(), Value::Bool(quick)),
        ("experiments".to_string(), Value::Arr(experiments)),
    ]);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create metrics dir");
        }
    }
    std::fs::write(path, format!("{doc}\n")).expect("write metrics");
}
