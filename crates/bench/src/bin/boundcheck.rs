//! `boundcheck` — the asymptotic-bound conformance gate.
//!
//! Sweeps every catalogue scheme over its growing instance family under
//! a bit-ledger capture (see `locert_bench::e9_bounds`) and fails when
//!
//! 1. any certificate bit is unattributed (the ledger must tile),
//! 2. the measured size curve grows faster than the scheme's declared
//!    asymptotic bound (least-squares slope tolerance), or
//! 3. the numbers drift off the committed `BOUNDS_baseline.json` —
//!    per-point sizes and declared families exactly, component shares
//!    within half a percentage point.
//!
//! Usage:
//!
//! ```text
//! boundcheck [--baseline [PATH]] [--compare PATH] [--tolerance X]
//!            [--threads N] [--quick] [--mutants] [--list]
//! ```
//!
//! `--baseline` regenerates the committed baseline instead of gating;
//! `--mutants` (requires the `mutants` feature) self-tests the gate by
//! poisoning catalogue targets with known size bugs and demanding every
//! one is caught. Exit codes: 0 conforming, 1 violations (or IO
//! failure), 2 usage error.

use locert_bench::e9_bounds::{self, baseline, fit_sweep, DEFAULT_TOLERANCE};
use locert_trace::json;

const DEFAULT_BASELINE: &str = "BOUNDS_baseline.json";

const USAGE: &str = "\
usage: boundcheck [--baseline [PATH]] [--compare PATH] [--tolerance X]
                  [--threads N] [--quick] [--mutants] [--list]

  --baseline [PATH]  write the bounds baseline (default BOUNDS_baseline.json)
                     instead of gating against it
  --compare PATH     gate against PATH instead of BOUNDS_baseline.json
  --tolerance X      least-squares slope tolerance for the conformance
                     fit (default 0.15)
  --threads N        worker count for the locert-par pool (default:
                     LOCERT_THREADS env, then available parallelism)
  --quick            shrink the size grids (smoke mode; skips the
                     baseline compare, whose grids are full-size)
  --mutants          self-test: poison targets with known size bugs and
                     verify the gate catches every one (needs the
                     `mutants` build feature)
  --list             list sweep targets with grids and declared bounds
  --help             print this message";

fn fail_usage(msg: &str) -> ! {
    eprintln!("boundcheck: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn fail_io(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("boundcheck: {context}: {err}");
    std::process::exit(1);
}

struct Options {
    write_baseline: Option<String>,
    compare_path: String,
    tolerance: f64,
    threads: Option<usize>,
    quick: bool,
    mutants: bool,
    list: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        write_baseline: None,
        compare_path: DEFAULT_BASELINE.to_string(),
        tolerance: DEFAULT_TOLERANCE,
        threads: None,
        quick: false,
        mutants: false,
        list: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    let optional_path = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                         default: &str| {
        match args.peek() {
            Some(a) if !a.starts_with("--") => args.next().unwrap(),
            _ => default.to_string(),
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => opts.write_baseline = Some(optional_path(&mut args, DEFAULT_BASELINE)),
            "--compare" => {
                opts.compare_path = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--compare needs a path"));
            }
            "--tolerance" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--tolerance needs a value"));
                opts.tolerance = raw
                    .parse()
                    .unwrap_or_else(|_| fail_usage(&format!("bad tolerance {raw:?}")));
            }
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--threads needs a count"));
                let n: usize = raw
                    .parse()
                    .unwrap_or_else(|_| fail_usage(&format!("bad thread count {raw:?}")));
                if n == 0 {
                    fail_usage("thread count must be at least 1");
                }
                opts.threads = Some(n);
            }
            "--quick" => opts.quick = true,
            "--mutants" => opts.mutants = true,
            "--list" => opts.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

fn list_targets() {
    for target in e9_bounds::targets() {
        let (point, declared) = e9_bounds::measure(&target, 16, false);
        println!(
            "{:24} declared {:14} components at n=16: {}",
            target.name,
            declared.family(),
            point
                .components
                .keys()
                .copied()
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}

/// Gates one sweep set: attribution + fit (+ optional baseline
/// compare). Returns violations.
fn gate(
    results: &[e9_bounds::SweepResult],
    tolerance: f64,
    committed: Option<&json::Value>,
) -> Vec<String> {
    let mut violations = Vec::new();
    for r in results {
        for p in &r.points {
            if !p.fully_attributed {
                violations.push(format!(
                    "{}: unattributed certificate bits at n = {}",
                    r.name, p.n_actual
                ));
            }
        }
        let fit = fit_sweep(r, tolerance);
        if !fit.conforms {
            violations.push(format!(
                "{}: measured growth exceeds declared {} (rel slope {:+.3} > {:.3})",
                r.name,
                r.declared.family(),
                fit.rel_slope,
                tolerance
            ));
        }
    }
    if let Some(committed) = committed {
        violations.extend(baseline::compare(results, committed));
    }
    violations
}

#[cfg(feature = "mutants")]
fn run_mutants(tolerance: f64, committed: &json::Value) -> ! {
    let mut escaped = 0usize;
    for mutant in e9_bounds::mutants::mutants() {
        let targets = e9_bounds::mutants::apply(&mutant);
        // Mutant verifiers are vacuous; sweep provers only.
        let results: Vec<_> = targets
            .iter()
            .map(|t| e9_bounds::sweep(t, false, false))
            .collect();
        // The honest sweep verifies read amplification; the mutant sweep
        // does not, so exempt read-amp from the compare by gating the
        // poisoned case's size data only.
        let violations: Vec<String> = gate(&results, tolerance, Some(committed))
            .into_iter()
            .filter(|v| v.starts_with(mutant.case) && !v.contains("read amplification"))
            .collect();
        let caught = !violations.is_empty();
        let fit_failed = violations.iter().any(|v| v.contains("exceeds declared"));
        println!(
            "mutant {:16} on {:16} {} ({})",
            mutant.name,
            mutant.case,
            if caught { "caught" } else { "ESCAPED" },
            violations
                .first()
                .map_or_else(|| "no violation".to_string(), Clone::clone)
        );
        if !caught || (mutant.caught_by_fit && !fit_failed) {
            escaped += 1;
        }
    }
    if escaped > 0 {
        eprintln!("boundcheck: {escaped} mutant(s) escaped the gate");
        std::process::exit(1);
    }
    println!("all mutants caught");
    std::process::exit(0);
}

#[cfg(not(feature = "mutants"))]
fn run_mutants(_tolerance: f64, _committed: &json::Value) -> ! {
    fail_usage("--mutants needs a build with `--features mutants`");
}

fn read_committed(path: &str) -> json::Value {
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail_io(&format!("reading {path}"), &e));
    json::parse(&raw).unwrap_or_else(|e| fail_io(&format!("parsing {path}"), &e))
}

fn main() {
    let opts = parse_args();
    if opts.list {
        list_targets();
        return;
    }
    if let Some(n) = opts.threads {
        locert_par::configure_threads(n);
    }
    if opts.mutants {
        let committed = read_committed(&opts.compare_path);
        run_mutants(opts.tolerance, &committed);
    }
    let results = e9_bounds::sweep_all(opts.quick, true);
    if let Some(path) = opts.write_baseline {
        let doc = baseline::to_json(&results);
        std::fs::write(&path, format!("{doc}\n"))
            .unwrap_or_else(|e| fail_io(&format!("writing {path}"), &e));
        println!(
            "wrote {path} ({} schemes, {} points)",
            results.len(),
            results.iter().map(|r| r.points.len()).sum::<usize>()
        );
        return;
    }
    let committed = if opts.quick {
        // Quick grids don't match the committed full-size baseline.
        None
    } else {
        Some(read_committed(&opts.compare_path))
    };
    let violations = gate(&results, opts.tolerance, committed.as_ref());
    for v in &violations {
        eprintln!("boundcheck: {v}");
    }
    if violations.is_empty() {
        println!(
            "bounds conform: {} schemes, tolerance {}, baseline {}",
            results.len(),
            opts.tolerance,
            if opts.quick {
                "skipped (quick)"
            } else {
                &opts.compare_path
            }
        );
    } else {
        eprintln!("boundcheck: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
