//! E4 — Theorem 2.5: certifying treedepth ≤ 5 needs Ω(log n) bits.
//!
//! Two tables: the exact gadget dichotomy (treedepth 5 iff matchings
//! equal — checked by the exact solver *and* the cops-and-robber engine),
//! and the `Ω(ℓ/r) = Ω(log n)` rate across matching sizes.

use crate::report::{f2, Table};
use locert_lb::bounds::treedepth_rate;
use locert_lb::cc::all_strings;
use locert_lb::treedepth_gadget::{build_gadget, matching_bits, matching_from_string};
use locert_treedepth::cops::cop_number;
use locert_treedepth::treedepth_exact;

/// The exact dichotomy over all string pairs at matching size `n = 2`.
pub fn run_dichotomy() -> Table {
    let mut table = Table::new(
        "E4a",
        "Matching-gadget dichotomy (Lemma 7.3)",
        "If the matchings are equal the gadget has treedepth 5; otherwise at least 6.",
        "every equal pair measures exactly 5 (both solvers agree), every unequal pair ≥ 6",
        &[
            "s_A",
            "s_B",
            "matchings equal",
            "treedepth (exact)",
            "cop number",
        ],
    );
    let n = 2;
    let l = matching_bits(n);
    for s_a in all_strings(l) {
        for s_b in all_strings(l) {
            let m_a = matching_from_string(n, &s_a);
            let m_b = matching_from_string(n, &s_b);
            let (g, _) = build_gadget(n, &m_a, &m_b);
            let td = treedepth_exact(&g);
            let cops = cop_number(&g);
            assert_eq!(td, cops, "solvers disagree");
            let eq = m_a == m_b;
            assert_eq!(td == 5, eq, "dichotomy violated");
            table.push([
                format!("{s_a:?}"),
                format!("{s_b:?}"),
                eq.to_string(),
                td.to_string(),
                cops.to_string(),
            ]);
        }
    }
    table
}

/// The Ω(log n) rate across matching sizes.
pub fn run_rates(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E4b",
        "Reduction rate Ω(ℓ/r) = Ω(log n) (Theorem 2.5)",
        "Certifying treedepth ≤ 5 requires Ω(log n)-bit certificates: \
         ℓ = ⌊log₂ n!⌋ input bits against r = 4n + 1 interface vertices.",
        "rate / log₂ n approaches 1/4 from below as n grows",
        &[
            "n (matching size)",
            "gadget vertices",
            "ℓ = ⌊log2 n!⌋",
            "r",
            "rate [bits]",
            "rate / log2 n",
        ],
    );
    for &n in ns {
        let l = matching_bits(n);
        let r = 4 * n + 1;
        let rate = treedepth_rate(n);
        table.push([
            n.to_string(),
            (8 * n + 1).to_string(),
            l.to_string(),
            r.to_string(),
            f2(rate),
            f2(rate / (n as f64).log2()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dichotomy_holds() {
        let t = run_dichotomy();
        assert_eq!(t.rows.len(), 4); // ℓ = 1 at n = 2.
        for row in &t.rows {
            let eq: bool = row[2].parse().unwrap();
            let td: usize = row[3].parse().unwrap();
            assert_eq!(td == 5, eq);
        }
    }

    #[test]
    fn rates_logarithmic() {
        let t = run_rates(&[8, 64, 512]);
        let last: f64 = t.rows[2][5].parse().unwrap();
        assert!((0.15..0.3).contains(&last), "rate/log n = {last}");
    }
}
