//! F1 — Figure 1: the binary elimination tree of a path;
//! `td(P_{2^k − 1}) = k`.

use crate::report::Table;
use locert_treedepth::bounds::{path_elimination_tree, treedepth_of_path};
use locert_treedepth::treedepth_exact;

/// Runs F1 for `k = 1..=max_k` (exact cross-check up to the solver limit).
pub fn run(max_k: usize) -> Table {
    let mut table = Table::new(
        "F1",
        "Figure 1: elimination trees of paths",
        "P_7 (and generally P_{2^k − 1}) admits an elimination tree of height k; \
         the binary middle-split construction is optimal and coherent.",
        "constructed height = closed form = exact solver (where applicable), \
         coherent at every size",
        &[
            "k",
            "n = 2^k − 1",
            "constructed height",
            "closed form",
            "exact",
            "coherent",
        ],
    );
    for k in 1..=max_k {
        let n = (1usize << k) - 1;
        let (g, model) = path_elimination_tree(n);
        let exact = if n <= locert_treedepth::exact::EXACT_LIMIT {
            treedepth_exact(&g).to_string()
        } else {
            "-".to_string()
        };
        table.push([
            k.to_string(),
            n.to_string(),
            model.height().to_string(),
            treedepth_of_path(n).to_string(),
            exact,
            model.is_coherent(&g).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_exactness() {
        let t = run(8);
        for (i, row) in t.rows.iter().enumerate() {
            let k = i + 1;
            assert_eq!(row[2], k.to_string());
            assert_eq!(row[3], k.to_string());
            assert_eq!(row[5], "true");
            if row[4] != "-" {
                assert_eq!(row[4], k.to_string());
            }
        }
    }
}
