//! E1 — Theorem 2.2: MSO on trees with O(1)-bit certificates.
//!
//! For several MSO tree properties and growing `n`, run the full
//! prover/verifier pipeline and record the maximum certificate size: the
//! columns must be **flat in n**.

use crate::report::Table;
use locert_automata::library;
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::mso_tree::MsoTreeScheme;
use locert_graph::{generators, Graph, IdAssignment};

/// Yes-instance families per property.
fn instance_for(property: &str, n: usize) -> Graph {
    match property {
        // Even paths have perfect matchings.
        "perfect-matching" => generators::path(if n.is_multiple_of(2) { n } else { n + 1 }),
        // Stars have height 2.
        "height<=2" => generators::star(n),
        // Paths have max 2 children when rooted at an end.
        "max-children<=2" => generators::path(n),
        // Spiders with legs of length 3 have leaves at depth 3.
        "leaf-at-depth-3" => generators::spider((n.saturating_sub(1)) / 3, 3),
        // Complete binary trees are leaf-uniform.
        "uniform-leaves" => {
            let mut depth = 0;
            while (1usize << (depth + 2)) - 1 <= n {
                depth += 1;
            }
            generators::complete_kary_tree(2, depth)
        }
        other => panic!("unknown property {other}"),
    }
}

fn scheme_for(property: &str) -> MsoTreeScheme {
    match property {
        "perfect-matching" => MsoTreeScheme::new(library::has_perfect_matching()),
        "height<=2" => MsoTreeScheme::new(library::height_at_most(2)),
        "max-children<=2" => MsoTreeScheme::new(library::max_children_at_most(2)),
        "leaf-at-depth-3" => MsoTreeScheme::new(library::some_leaf_at_depth(3)),
        "uniform-leaves" => MsoTreeScheme::new(library::uniform_leaf_depth(16)),
        other => panic!("unknown property {other}"),
    }
}

/// Properties exercised by E1.
pub const PROPERTIES: [&str; 5] = [
    "perfect-matching",
    "height<=2",
    "max-children<=2",
    "leaf-at-depth-3",
    "uniform-leaves",
];

/// Runs E1 over the given sizes.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E1",
        "MSO on trees via tree-automata runs (Theorem 2.2)",
        "Any MSO formula can be certified on trees with certificates of size O(1).",
        "every property's certificate size is constant across all n",
        &[
            "n",
            "perfect-matching [bits]",
            "height<=2 [bits]",
            "max-children<=2 [bits]",
            "leaf-at-depth-3 [bits]",
            "uniform-leaves [bits]",
        ],
    );
    for &n in sizes {
        let mut row = vec![n.to_string()];
        for prop in PROPERTIES {
            let g = instance_for(prop, n);
            let ids = IdAssignment::contiguous(g.num_nodes());
            let inst = Instance::new(&g, &ids);
            let scheme = scheme_for(prop);
            let out = run_scheme(&scheme, &inst).expect("yes-instance by construction");
            assert!(out.accepted(), "E1 verifier rejected {prop} at n = {n}");
            row.push(out.max_bits().to_string());
        }
        t.push(row);
    }
    t
}

/// E1b: the budgeted FO → automaton compiler feeding the same scheme.
pub fn run_compiled(sizes: &[usize]) -> Table {
    use locert_automata::synthesis::fo_tree_automaton;
    use locert_logic::props;

    let mut t = Table::new(
        "E1b",
        "Theorem 2.2 from a formula: the budgeted rank-k compiler",
        "The FO → tree-automaton translation behind Theorem 2.2 is effective but \
         non-elementary [29]; the budgeted compiler discovers rank-k types with \
         EF games and certifies with the same O(1)-bit scheme (sound always, \
         complete on covered inputs).",
        "sizes constant in n; all workload instances covered",
        &["n", "φ = has dominating vertex [bits]", "#types", "covered"],
    );
    let compiled =
        fo_tree_automaton(&props::has_dominating_vertex(), 9, 63).expect("rank-2 compilation");
    let scheme = MsoTreeScheme::new(compiled.automaton().clone());
    for &n in sizes {
        let g = generators::star(n);
        let rooted = locert_graph::RootedTree::from_tree(&g, locert_graph::NodeId(0)).unwrap();
        let covered = compiled.covers(&rooted);
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let out = run_scheme(&scheme, &inst).expect("dominated star");
        assert!(out.accepted());
        t.push([
            n.to_string(),
            out.max_bits().to_string(),
            compiled.num_types().to_string(),
            covered.to_string(),
        ]);
    }
    t
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize) -> usize {
    let g = instance_for("perfect-matching", n);
    let ids = IdAssignment::contiguous(g.num_nodes());
    let inst = Instance::new(&g, &ids);
    let scheme = scheme_for("perfect-matching");
    run_scheme(&scheme, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_flat() {
        let t = run(&[16, 64, 256]);
        assert_eq!(t.rows.len(), 3);
        for col in 1..t.columns.len() {
            let first = &t.rows[0][col];
            assert!(
                t.rows.iter().all(|r| &r[col] == first),
                "column {col} not constant"
            );
        }
    }
}
