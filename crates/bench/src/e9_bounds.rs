//! E9 — the bound-conformance observatory: per-component certificate
//! size curves, measured against every scheme's [`DeclaredBound`].
//!
//! One sweep target per shared-catalogue scheme family (the sixteen
//! stable ids of [`locert_core::catalogue`]), over **growing** seeded
//! instance families with identifier widths that track `n`
//! (`id_bits_for`), so `O(log n)` growth is actually observable. Every
//! point runs the prover under a [`locert_trace::ledger`] capture: the
//! certificate tiles into named component spans, and the sweep records
//!
//! 1. the certificate size (max bits per vertex — the paper's measure),
//! 2. per-component maxima (where the bits went),
//! 3. verifier read amplification (bits examined across radius-1 views
//!    over bits stored, in percent).
//!
//! The curves are then fit against the scheme's machine-readable
//! [`DeclaredBound`] by normalized least squares (see [`fit_points`]):
//! measured growth exceeding the declared asymptotic family fails the
//! fit. `boundcheck` turns that into a CI gate; the `experiments` binary
//! emits the same numbers as deterministic `ledger.*` counters in the
//! `locert-trace/v2` metrics schema.

use crate::report::{f2, Table};
use locert_core::framework::{run_verification, DeclaredBound, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_core::Scheme;
use locert_graph::{Graph, IdAssignment};
use std::collections::BTreeMap;

/// Default slope tolerance for the least-squares conformance fit: the
/// normalized ratio drift per doubling of `n` must stay below this.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// The default size grid (most targets).
const GRID: &[usize] = &[16, 32, 64, 128, 256];
/// Quick-mode grid.
const GRID_QUICK: &[usize] = &[16, 64];
/// The universal scheme broadcasts the n² map; keep its grid small.
const GRID_UNIVERSAL: &[usize] = &[8, 12, 16, 24];
const GRID_UNIVERSAL_QUICK: &[usize] = &[8, 16];

/// One sweep target: a named scheme constructor over a growing family.
pub struct SweepTarget {
    /// Stable target name (mirrors the `locert-net` catalogue).
    pub name: &'static str,
    grid: &'static [usize],
    quick_grid: &'static [usize],
    /// Builds the scheme for identifier width `id_bits` at size `n`.
    build: fn(u32, usize) -> Box<dyn Scheme>,
    /// The instance family: graph plus optional vertex inputs.
    family: fn(usize) -> (Graph, Option<Vec<usize>>),
}

/// The sixteen sweep targets, in catalogue order: the shared
/// [`locert_core::catalogue`] entries with this observatory's grid
/// policy applied.
pub fn targets() -> Vec<SweepTarget> {
    locert_core::catalogue::entries()
        .into_iter()
        .map(|e| {
            // The universal scheme broadcasts the n² map; keep its grid
            // small.
            let (grid, quick_grid) = if e.id == "universal-connected" {
                (GRID_UNIVERSAL, GRID_UNIVERSAL_QUICK)
            } else {
                (GRID, GRID_QUICK)
            };
            SweepTarget {
                name: e.id,
                grid,
                quick_grid,
                build: e.build,
                family: e.family,
            }
        })
        .collect()
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Requested family size (the actual graph may round up, e.g. to an
    /// even vertex count).
    pub n: usize,
    /// Actual vertex count of the generated instance.
    pub n_actual: usize,
    /// Certificate size: max bits over vertices (the paper's measure).
    pub max_bits: usize,
    /// Per-component maxima from the [`locert_trace::ledger`] capture.
    pub components: BTreeMap<&'static str, usize>,
    /// Whether every certificate was fully attributed (no
    /// `unattributed` span).
    pub fully_attributed: bool,
    /// Read amplification: `100 · bits read / bits stored` during
    /// verification (`None` when verification was skipped).
    pub read_amp_pct: Option<u64>,
}

/// A full per-scheme sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Target name.
    pub name: &'static str,
    /// The scheme's declared asymptotic bound (at the largest size).
    pub declared: DeclaredBound,
    /// Measured points, in grid order.
    pub points: Vec<SweepPoint>,
}

/// Runs one target's prover at size `n` under a ledger capture and
/// (optionally) the verifier, returning the measured point and the
/// declared bound.
///
/// # Panics
///
/// Panics when the honest prover fails or (with `verify`) any vertex
/// rejects — sweep families are yes-instances by construction.
pub fn measure(target: &SweepTarget, n: usize, verify: bool) -> (SweepPoint, DeclaredBound) {
    let (g, inputs) = (target.family)(n);
    let n_actual = g.num_nodes();
    let ids = IdAssignment::contiguous(n_actual);
    let inst = match &inputs {
        Some(inp) => Instance::with_inputs(&g, &ids, inp),
        None => Instance::new(&g, &ids),
    };
    let scheme = (target.build)(id_bits_for(&inst), n_actual);
    let (asg, ledger) = locert_trace::ledger::capture(|| scheme.assign(&inst));
    let asg = asg.unwrap_or_else(|e| {
        panic!(
            "sweep family for {} is a yes-instance at n = {n}: {e}",
            target.name
        )
    });
    debug_assert_eq!(ledger.max_bits(), asg.max_bits());
    let read_amp_pct = if verify {
        let out = run_verification(scheme.as_ref(), &inst, &asg);
        assert!(
            out.accepted(),
            "honest verification rejected for {} at n = {n}",
            target.name
        );
        let stored = asg.total_bits();
        let read: usize = out.verdicts().iter().map(|v| v.bits_read).sum();
        (stored > 0).then(|| (read * 100 / stored) as u64)
    } else {
        None
    };
    (
        SweepPoint {
            n,
            n_actual,
            max_bits: asg.max_bits(),
            components: ledger.component_max_bits(),
            fully_attributed: ledger.fully_attributed(),
            read_amp_pct,
        },
        scheme.declared_bound(),
    )
}

/// Sweeps one target over its grid.
pub fn sweep(target: &SweepTarget, quick: bool, verify: bool) -> SweepResult {
    let grid = if quick {
        target.quick_grid
    } else {
        target.grid
    };
    let mut points = Vec::with_capacity(grid.len());
    let mut declared = DeclaredBound::Constant;
    for &n in grid {
        let (point, bound) = measure(target, n, verify);
        points.push(point);
        declared = bound;
    }
    SweepResult {
        name: target.name,
        declared,
        points,
    }
}

/// Sweeps every catalogue target.
pub fn sweep_all(quick: bool, verify: bool) -> Vec<SweepResult> {
    targets().iter().map(|t| sweep(t, quick, verify)).collect()
}

/// The conformance fit of one sweep against its declared bound.
#[derive(Debug, Clone, Copy)]
pub struct Fit {
    /// Normalized ratio drift per doubling of `n`: the least-squares
    /// slope of `max_bits / growth(n)` over `log₂ n`, divided by the
    /// mean ratio. Positive means measured growth exceeds the declared
    /// family.
    pub rel_slope: f64,
    /// Whether the drift stays within tolerance (one-sided: shrinking
    /// ratios always conform).
    pub conforms: bool,
}

/// Fits measured sizes against a declared bound.
///
/// For each point the ratio `r_i = max_bits_i / g(n_i)` is formed, where
/// `g` is the declared growth function ([`DeclaredBound::growth`]); a
/// least-squares line `r = a + b·log₂ n` is fit and `b` normalized by
/// the mean ratio. If the certificates truly live in the declared
/// family the ratios flatten and the normalized slope tends to 0; a
/// scheme growing a family faster (linear declared logarithmic, say)
/// drifts upward at a rate no tolerance below ~1 accepts.
pub fn fit_points(declared: DeclaredBound, points: &[(usize, usize)], tolerance: f64) -> Fit {
    if points.len() < 2 {
        return Fit {
            rel_slope: 0.0,
            conforms: true,
        };
    }
    let xy: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, bits)| {
            let x = (n.max(2) as f64).log2();
            let y = bits as f64 / declared.growth(n);
            (x, y)
        })
        .collect();
    let k = xy.len() as f64;
    let mean_x = xy.iter().map(|(x, _)| x).sum::<f64>() / k;
    let mean_y = xy.iter().map(|(_, y)| y).sum::<f64>() / k;
    let var_x = xy.iter().map(|(x, _)| (x - mean_x).powi(2)).sum::<f64>();
    let cov = xy
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum::<f64>();
    let slope = if var_x > 0.0 { cov / var_x } else { 0.0 };
    let rel_slope = if mean_y.abs() > f64::EPSILON {
        slope / mean_y
    } else {
        0.0
    };
    Fit {
        rel_slope,
        conforms: rel_slope <= tolerance,
    }
}

/// Fits one sweep result with the default tolerance extraction.
pub fn fit_sweep(result: &SweepResult, tolerance: f64) -> Fit {
    let pts: Vec<(usize, usize)> = result
        .points
        .iter()
        .map(|p| (p.n_actual, p.max_bits))
        .collect();
    fit_points(result.declared, &pts, tolerance)
}

/// Emits one sweep's numbers as deterministic `ledger.*` counters (the
/// `locert-trace/v2` deterministic section: not `par.*`, not `.ns`).
pub fn emit_counters(result: &SweepResult) {
    for p in &result.points {
        let base = format!("ledger.{}.n{}", result.name, p.n_actual);
        locert_trace::add(&format!("{base}.max_bits"), p.max_bits as u64);
        for (component, bits) in &p.components {
            locert_trace::add(&format!("{base}.{component}"), *bits as u64);
        }
        if let Some(amp) = p.read_amp_pct {
            locert_trace::add(&format!("{base}.read_amp_pct"), amp);
        }
    }
}

/// E9a: the size curves, one row per (scheme, n).
pub fn curves_table(results: &[SweepResult]) -> Table {
    let mut table = Table::new(
        "E9a",
        "Certificate size curves vs. declared bounds (bit ledger)",
        "Every catalogue scheme carries a machine-readable DeclaredBound; measured \
         max-bits-per-vertex curves over growing seeded families must stay within \
         the declared asymptotic family.",
        "bits / g(n) flattens (or shrinks) as n grows, for each scheme's declared g",
        &["scheme", "declared", "n", "max cert [bits]", "bits / g(n)"],
    );
    for r in results {
        for p in &r.points {
            table.push([
                r.name.to_string(),
                r.declared.family().to_string(),
                p.n_actual.to_string(),
                p.max_bits.to_string(),
                f2(p.max_bits as f64 / r.declared.growth(p.n_actual)),
            ]);
        }
    }
    table
}

/// E9b: the conformance fit verdicts plus attribution/read-amp summary.
pub fn fit_table(results: &[SweepResult], tolerance: f64) -> Table {
    let mut table = Table::new(
        "E9b",
        "Bound conformance fits and read amplification",
        "Least-squares drift of max_bits/g(n) over log₂ n stays within tolerance \
         for every scheme; every certificate bit is attributed to a named \
         component; read amplification is the bits-examined/bits-stored ratio of \
         the radius-1 verifier.",
        "rel slope ≤ tolerance for all 16 schemes; all ledgers fully attributed",
        &[
            "scheme",
            "declared",
            "rel slope",
            "verdict",
            "attributed",
            "read amp [%]",
        ],
    );
    for r in results {
        let fit = fit_sweep(r, tolerance);
        let attributed = r.points.iter().all(|p| p.fully_attributed);
        let amp = r
            .points
            .last()
            .and_then(|p| p.read_amp_pct)
            .map_or_else(|| "-".to_string(), |a| a.to_string());
        table.push([
            r.name.to_string(),
            r.declared.family().to_string(),
            format!("{:+.3}", fit.rel_slope),
            if fit.conforms { "ok" } else { "EXCEEDS" }.to_string(),
            if attributed { "full" } else { "PARTIAL" }.to_string(),
            amp,
        ]);
    }
    table
}

/// E9c: where the bits go — per-component shares at the largest size.
pub fn components_table(results: &[SweepResult]) -> Table {
    let mut table = Table::new(
        "E9c",
        "Per-component certificate attribution (largest size)",
        "The BitLedger tiles every certificate into named witness components; \
         shares show which field dominates each scheme's footprint.",
        "component spans partition every certificate exactly (shares sum to 100%)",
        &["scheme", "component", "max bits", "share [%]"],
    );
    for r in results {
        let Some(p) = r.points.last() else { continue };
        let total: usize = p.components.values().sum();
        for (component, bits) in &p.components {
            let share = if total > 0 {
                *bits as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            table.push([
                r.name.to_string(),
                component.to_string(),
                bits.to_string(),
                f2(share),
            ]);
        }
    }
    table
}

/// The full E9 experiment: sweep, emit counters, build tables.
pub fn run(quick: bool) -> Vec<Table> {
    let results = sweep_all(quick, true);
    for r in &results {
        emit_counters(r);
    }
    vec![
        curves_table(&results),
        fit_table(&results, DEFAULT_TOLERANCE),
        components_table(&results),
    ]
}

/// Committed-baseline serialization and drift comparison
/// (`locert-bounds/v1`, the file `boundcheck` gates on).
pub mod baseline {
    use super::SweepResult;
    use locert_trace::json::Value;

    /// Schema tag of the committed bounds baseline.
    pub const SCHEMA: &str = "locert-bounds/v1";
    /// Allowed per-component share drift against the baseline, in
    /// percentage points.
    pub const SHARE_TOLERANCE_PP: f64 = 0.5;

    fn num(x: f64) -> Value {
        Value::Num(x)
    }

    fn shares(result: &SweepResult) -> Vec<(String, f64, usize)> {
        let Some(p) = result.points.last() else {
            return Vec::new();
        };
        let total: usize = p.components.values().sum();
        p.components
            .iter()
            .map(|(name, bits)| {
                let share = if total > 0 {
                    // Round to 2 decimals so the serialized baseline is
                    // short and byte-stable.
                    (*bits as f64 * 10_000.0 / total as f64).round() / 100.0
                } else {
                    0.0
                };
                ((*name).to_string(), share, *bits)
            })
            .collect()
    }

    /// Serializes sweep results as the baseline document.
    pub fn to_json(results: &[SweepResult]) -> Value {
        let schemes: Vec<Value> = results
            .iter()
            .map(|r| {
                let points: Vec<Value> = r
                    .points
                    .iter()
                    .map(|p| {
                        Value::obj([
                            ("n".to_string(), num(p.n_actual as f64)),
                            ("max_bits".to_string(), num(p.max_bits as f64)),
                        ])
                    })
                    .collect();
                let components: Vec<Value> = shares(r)
                    .into_iter()
                    .map(|(name, share, bits)| {
                        Value::obj([
                            ("name".to_string(), Value::Str(name)),
                            ("max_bits".to_string(), num(bits as f64)),
                            ("share_pct".to_string(), num(share)),
                        ])
                    })
                    .collect();
                let mut fields = vec![
                    ("name".to_string(), Value::Str(r.name.to_string())),
                    (
                        "declared".to_string(),
                        Value::Str(r.declared.family().to_string()),
                    ),
                    ("points".to_string(), Value::Arr(points)),
                    ("components".to_string(), Value::Arr(components)),
                ];
                if let Some(amp) = r.points.last().and_then(|p| p.read_amp_pct) {
                    fields.push(("read_amp_pct".to_string(), num(amp as f64)));
                }
                Value::obj(fields)
            })
            .collect();
        Value::obj([
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("schemes".to_string(), Value::Arr(schemes)),
        ])
    }

    /// Compares fresh sweep results against a committed baseline.
    /// Returns human-readable violations (empty = conforming): declared
    /// families and per-point sizes must match exactly, component
    /// shares within [`SHARE_TOLERANCE_PP`], read amplification exactly.
    pub fn compare(results: &[SweepResult], committed: &Value) -> Vec<String> {
        let mut violations = Vec::new();
        if committed.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            violations.push(format!("baseline schema is not {SCHEMA}"));
            return violations;
        }
        let empty = Vec::new();
        let schemes = committed
            .get("schemes")
            .and_then(Value::as_arr)
            .unwrap_or(&empty);
        for r in results {
            let Some(base) = schemes
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(r.name))
            else {
                violations.push(format!("{}: missing from baseline", r.name));
                continue;
            };
            let declared = base.get("declared").and_then(Value::as_str);
            if declared != Some(r.declared.family()) {
                violations.push(format!(
                    "{}: declared family changed: baseline {:?}, measured {}",
                    r.name,
                    declared.unwrap_or("?"),
                    r.declared.family()
                ));
            }
            let base_points = base.get("points").and_then(Value::as_arr).unwrap_or(&empty);
            if base_points.len() != r.points.len() {
                violations.push(format!(
                    "{}: grid changed: baseline {} points, measured {}",
                    r.name,
                    base_points.len(),
                    r.points.len()
                ));
            }
            for (bp, p) in base_points.iter().zip(&r.points) {
                let bn = bp.get("n").and_then(Value::as_num).unwrap_or(-1.0) as i64;
                let bbits = bp.get("max_bits").and_then(Value::as_num).unwrap_or(-1.0) as i64;
                if bn != p.n_actual as i64 || bbits != p.max_bits as i64 {
                    violations.push(format!(
                        "{}: point drift at n = {}: baseline ({bn}, {bbits} bits), \
                         measured ({}, {} bits)",
                        r.name, p.n_actual, p.n_actual, p.max_bits
                    ));
                }
            }
            let base_comps = base
                .get("components")
                .and_then(Value::as_arr)
                .unwrap_or(&empty);
            let measured = shares(r);
            if base_comps.len() != measured.len() {
                violations.push(format!(
                    "{}: component set changed: baseline {}, measured {}",
                    r.name,
                    base_comps.len(),
                    measured.len()
                ));
            }
            for (name, share, _) in &measured {
                let Some(bc) = base_comps
                    .iter()
                    .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
                else {
                    violations.push(format!("{}: new component {name}", r.name));
                    continue;
                };
                let bshare = bc.get("share_pct").and_then(Value::as_num).unwrap_or(-1.0);
                if (bshare - share).abs() > SHARE_TOLERANCE_PP {
                    violations.push(format!(
                        "{}: component {name} share drift: baseline {bshare:.2}%, \
                         measured {share:.2}% (tolerance {SHARE_TOLERANCE_PP}pp)",
                        r.name
                    ));
                }
            }
            let base_amp = base.get("read_amp_pct").and_then(Value::as_num);
            let amp = r
                .points
                .last()
                .and_then(|p| p.read_amp_pct)
                .map(|a| a as f64);
            if base_amp != amp {
                violations.push(format!(
                    "{}: read amplification drift: baseline {base_amp:?}, measured {amp:?}",
                    r.name
                ));
            }
        }
        for s in schemes {
            if let Some(name) = s.get("name").and_then(Value::as_str) {
                if !results.iter().any(|r| r.name == name) {
                    violations.push(format!("{name}: in baseline but no longer swept"));
                }
            }
        }
        violations
    }
}

/// Known-bad scheme variants for `boundcheck --mutants`: each injects a
/// realistic size bug and the gate must catch every one. Feature-gated
/// (`mutants`) so they can never leak into a production sweep.
#[cfg(feature = "mutants")]
pub mod mutants {
    use super::*;
    use locert_core::bits::BitWriter;
    use locert_core::framework::{
        Assignment, LocalView, Prover, ProverError, RejectReason, Verifier,
    };
    use locert_core::schemes::common::write_ident;
    use locert_core::schemes::spanning_tree::try_honest_tree_fields;
    use locert_graph::NodeId;

    /// Writes the spanning-tree distance field in **unary** — the classic
    /// `O(log n)` scheme blown up to `Θ(n)` bits while still declaring
    /// `O(log n)`. Caught by the conformance fit.
    #[derive(Debug)]
    struct UnaryDistance {
        id_bits: u32,
    }

    impl Prover for UnaryDistance {
        fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
            let fields =
                try_honest_tree_fields(instance, NodeId(0)).ok_or(ProverError::NotAYesInstance)?;
            Ok(Assignment::new(
                fields
                    .iter()
                    .enumerate()
                    .map(|(v, f)| {
                        let mut w = BitWriter::new();
                        w.component("root-id");
                        write_ident(&mut w, f.root, self.id_bits);
                        w.component("distance");
                        for _ in 0..f.dist {
                            w.write_bit(true);
                        }
                        w.write_bit(false);
                        w.component("parent-id");
                        write_ident(&mut w, f.parent, self.id_bits);
                        w.finish_for(v)
                    })
                    .collect(),
            ))
        }
    }

    impl Verifier for UnaryDistance {
        fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
            Ok(())
        }
    }

    impl Scheme for UnaryDistance {
        fn name(&self) -> String {
            "spanning-tree+unary-distance".into()
        }

        fn declared_bound(&self) -> DeclaredBound {
            // The lie under test: unary distances are Θ(n), not O(log n).
            DeclaredBound::LogN
        }
    }

    /// Pads every MSO-on-trees certificate with `n / 8` filler bits while
    /// declaring `O(1)`. Caught by the conformance fit.
    #[derive(Debug)]
    struct PaddedConstant;

    impl Prover for PaddedConstant {
        fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
            let g = instance.graph();
            let pad = g.num_nodes() / 8;
            Ok(Assignment::new(
                g.nodes()
                    .map(|v| {
                        let mut w = BitWriter::new();
                        w.component("automaton-state");
                        w.write(0, 4);
                        w.component("padding");
                        for _ in 0..pad {
                            w.write_bit(false);
                        }
                        w.finish_for(v.0)
                    })
                    .collect(),
            ))
        }
    }

    impl Verifier for PaddedConstant {
        fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
            Ok(())
        }
    }

    impl Scheme for PaddedConstant {
        fn name(&self) -> String {
            "mso+padded-constant".into()
        }

        fn declared_bound(&self) -> DeclaredBound {
            DeclaredBound::Constant
        }
    }

    /// Writes the spanning-tree root id **twice** — still `O(log n)`, so
    /// the fit passes, but every point's size and the component shares
    /// drift off the committed baseline. Caught by the baseline compare.
    #[derive(Debug)]
    struct DoubleRoot {
        id_bits: u32,
    }

    impl Prover for DoubleRoot {
        fn assign(&self, instance: &Instance<'_>) -> Result<Assignment, ProverError> {
            let fields =
                try_honest_tree_fields(instance, NodeId(0)).ok_or(ProverError::NotAYesInstance)?;
            Ok(Assignment::new(
                fields
                    .iter()
                    .enumerate()
                    .map(|(v, f)| {
                        let mut w = BitWriter::new();
                        w.component("root-id");
                        write_ident(&mut w, f.root, self.id_bits);
                        write_ident(&mut w, f.root, self.id_bits);
                        w.component("distance");
                        w.write(f.dist, self.id_bits);
                        w.component("parent-id");
                        write_ident(&mut w, f.parent, self.id_bits);
                        w.finish_for(v)
                    })
                    .collect(),
            ))
        }
    }

    impl Verifier for DoubleRoot {
        fn decide(&self, _view: &LocalView<'_>) -> Result<(), RejectReason> {
            Ok(())
        }
    }

    impl Scheme for DoubleRoot {
        fn name(&self) -> String {
            "spanning-tree+double-root".into()
        }

        fn declared_bound(&self) -> DeclaredBound {
            DeclaredBound::LogN
        }
    }

    /// One injected size bug: the poisoned target and how the gate must
    /// catch it.
    pub struct BoundMutant {
        /// Stable mutant name (shown by `boundcheck --mutants`).
        pub name: &'static str,
        /// The sweep target whose scheme is replaced.
        pub case: &'static str,
        /// `true` when the conformance *fit* must fail; `false` when the
        /// fit passes and only the baseline compare may catch it.
        pub caught_by_fit: bool,
        build: fn(u32, usize) -> Box<dyn Scheme>,
    }

    /// The mutant battery.
    pub fn mutants() -> Vec<BoundMutant> {
        vec![
            BoundMutant {
                name: "unary-distance",
                case: "spanning-tree",
                caught_by_fit: true,
                build: |b, _| Box::new(UnaryDistance { id_bits: b }),
            },
            BoundMutant {
                name: "padded-constant",
                case: "mso-perfect-matching",
                caught_by_fit: true,
                build: |_, _| Box::new(PaddedConstant),
            },
            BoundMutant {
                name: "double-root",
                case: "spanning-tree",
                caught_by_fit: false,
                build: |b, _| Box::new(DoubleRoot { id_bits: b }),
            },
        ]
    }

    /// The target list with `mutant`'s case poisoned.
    pub fn apply(mutant: &BoundMutant) -> Vec<SweepTarget> {
        let mut all = targets();
        let target = all
            .iter_mut()
            .find(|t| t.name == mutant.case)
            .expect("mutant poisons a catalogued target");
        target.build = mutant.build;
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_fully_attributed_and_conform_quick() {
        let results = sweep_all(true, false);
        assert_eq!(results.len(), 16);
        for r in &results {
            for p in &r.points {
                assert!(
                    p.fully_attributed,
                    "{}: n = {} has unattributed bits: {:?}",
                    r.name, p.n_actual, p.components
                );
                let total: usize = p.components.values().sum();
                assert_eq!(
                    total, p.max_bits,
                    "{}: component maxima at n = {} do not reach max_bits \
                     (uniform certificates expected on sweep families)",
                    r.name, p.n_actual
                );
            }
        }
    }

    #[test]
    fn fit_flags_linear_growth_declared_logarithmic() {
        // A Θ(n) curve declared O(log n) must fail any sane tolerance.
        let points: Vec<(usize, usize)> = [16usize, 32, 64, 128, 256]
            .iter()
            .map(|&n| (n, 8 + n))
            .collect();
        let fit = fit_points(DeclaredBound::LogN, &points, DEFAULT_TOLERANCE);
        assert!(!fit.conforms, "rel slope {}", fit.rel_slope);
        // The same curve declared quadratic conforms (ratios shrink).
        let fit2 = fit_points(DeclaredBound::QuadraticN, &points, DEFAULT_TOLERANCE);
        assert!(fit2.conforms, "rel slope {}", fit2.rel_slope);
    }

    #[test]
    fn fit_accepts_honest_logarithmic_growth() {
        let points: Vec<(usize, usize)> = [16usize, 32, 64, 128, 256]
            .iter()
            .map(|&n| (n, 3 * ((n as f64).log2().ceil() as usize) + 4))
            .collect();
        let fit = fit_points(DeclaredBound::LogN, &points, DEFAULT_TOLERANCE);
        assert!(fit.conforms, "rel slope {}", fit.rel_slope);
    }

    #[test]
    fn read_amplification_is_exactly_300_on_cycles() {
        // Uniform certificates on a 2-regular graph: every stored bit is
        // read three times (once by the owner, once per neighbor).
        let target = targets()
            .into_iter()
            .find(|t| t.name == "spanning-tree")
            .unwrap();
        let (point, _) = measure(&target, 16, true);
        assert_eq!(point.read_amp_pct, Some(300));
    }
}
