//! E3 — Theorem 2.4: treedepth ≤ t certified with O(t log n) bits.
//!
//! Random bounded-treedepth graphs (generator witness) across `t` and
//! `n`; measured max certificate bits against the `t · log₂ n` reference.
//! Soundness spot-checks (corrupted certificates rejected) run alongside.

use crate::report::{f2, Table};
use locert_core::framework::{run_scheme, run_verification, Instance, Prover};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::treedepth::{ModelStrategy, TreedepthScheme};
use locert_graph::{generators, IdAssignment, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E3 over a (t, n) grid.
pub fn run(ts: &[usize], ns: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E3",
        "Treedepth certification via ancestor lists (Theorem 2.4)",
        "We can certify that a graph has treedepth at most t with O(t log n) bits.",
        "measured bits / (t·log₂ n) stays bounded by a small constant across the grid",
        &[
            "t",
            "n",
            "max cert [bits]",
            "t·log2(n)",
            "ratio",
            "prover [ms]",
            "verify [µs/vertex]",
            "corruption rejected",
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for &t in ts {
        for &n in ns {
            let (g, parents) = generators::random_bounded_treedepth(n, t, 0.3, &mut rng);
            let ids = IdAssignment::shuffled(n, &mut rng);
            let inst = Instance::new(&g, &ids);
            let scheme = TreedepthScheme::new(id_bits_for(&inst), t)
                .with_strategy(ModelStrategy::Explicit(parents));
            let t_prover = std::time::Instant::now();
            let asg = scheme
                .assign(&inst)
                .expect("generator witness always certifies");
            let prover_ms = t_prover.elapsed().as_secs_f64() * 1e3;
            let t_verify = std::time::Instant::now();
            let out = run_verification(&scheme, &inst, &asg);
            let verify_us = t_verify.elapsed().as_secs_f64() * 1e6 / n as f64;
            assert!(out.accepted(), "E3 rejected honest prover at t={t}, n={n}");
            // Soundness spot-check: flip one bit in a random certificate.
            let victim = NodeId(n / 2);
            let mut bad = asg.clone();
            let c = bad.cert(victim).clone();
            let rejected = if c.len_bits() > 0 {
                *bad.cert_mut(victim) = c.with_bit_flipped(c.len_bits() / 2);
                !run_verification(&scheme, &inst, &bad).accepted()
            } else {
                true
            };
            let reference = t as f64 * (n as f64).log2();
            table.push([
                t.to_string(),
                n.to_string(),
                out.max_bits().to_string(),
                f2(reference),
                f2(out.max_bits() as f64 / reference),
                f2(prover_ms),
                f2(verify_us),
                rejected.to_string(),
            ]);
        }
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize, t: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, parents) = generators::random_bounded_treedepth(n, t, 0.3, &mut rng);
    let ids = IdAssignment::contiguous(n);
    let inst = Instance::new(&g, &ids);
    let scheme =
        TreedepthScheme::new(id_bits_for(&inst), t).with_strategy(ModelStrategy::Explicit(parents));
    run_scheme(&scheme, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_bounded() {
        let t = run(&[3, 5], &[64, 512], 7);
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio < 4.0, "ratio {ratio} too large");
            assert_eq!(row[7], "true");
        }
    }
}
