//! S4 — Network fault-grid campaign over the message-passing simulator.
//!
//! The paper's schemes are defined for a distributed network with
//! transient faults (Section 3.3, Appendix A.1): certificates are
//! stored state that an adversary — or a crash — can corrupt, and the
//! radius-1 verifier must catch any corruption some neighbor can see.
//! `locert-net` replaces the synchronous reliable transport of
//! `run_verification` with a seeded discrete-event network (loss,
//! duplication, reordering delay, in-transit corruption, crash-restart,
//! healing partitions) in which every vertex retransmits with
//! exponential backoff and degrades to an inconclusive verdict rather
//! than falsely rejecting when a neighborhood never completes.
//!
//! The table aggregates each grid point over all sixteen catalogue
//! targets. Stored-certificate corruption (bit flip, zeroing, crash
//! loss) must always be detected; benign transport faults must never
//! produce a reject on a yes-instance; per-link transit corruption is
//! measured but not asserted, since a flipped field can be locally
//! consistent at the single vertex that sees it.

use crate::report::Table;
use locert_net::campaign::{fault_grid, run_net_campaign, CampaignConfig, CampaignRow};

/// Runs the campaign and tabulates one row per fault-grid point,
/// aggregated over every catalogue target.
pub fn run(quick: bool, seed: u64) -> Table {
    let cfg = if quick {
        CampaignConfig::quick(seed)
    } else {
        CampaignConfig::new(seed)
    };
    let rows = run_net_campaign(&cfg);
    let mut t = Table::new(
        "S4",
        "Message-passing simulation under network faults (netstorm)",
        "Proof-labeling schemes self-stabilize: any corruption of stored \
         certificates is detected by some vertex once its radius-1 view \
         completes, and honest yes-instances are never rejected however \
         unreliable the transport (App. A.1).",
        "detect-rate is 1.00 on every certificate-corrupting point, \
         false-rejects is 0 on every benign point, and inconclusives \
         appear only under unbounded loss",
        &[
            "fault point",
            "class",
            "runs",
            "effective",
            "detect-rate",
            "false-rejects",
            "inconcl-rate",
            "mean-ttd",
            "msgs/run",
            "retries/run",
        ],
    );
    for point in fault_grid() {
        let cells: Vec<&CampaignRow> = rows.iter().filter(|r| r.point == point.name).collect();
        let runs: usize = cells.iter().map(|r| r.runs).sum();
        let effective: usize = cells.iter().map(|r| r.effective).sum();
        let detected: usize = cells.iter().map(|r| r.detected).sum();
        let inconclusive: usize = cells.iter().map(|r| r.inconclusive).sum();
        let messages: u64 = cells.iter().map(|r| r.messages).sum();
        let retries: u64 = cells.iter().map(|r| r.retries).sum();
        let ttd_sum: u64 = cells.iter().map(|r| r.detection_time_sum).sum();
        let class = if point.corrupting {
            "corrupting"
        } else if point.benign {
            "benign"
        } else {
            "measured"
        };
        // False rejects only count against benign points; on corrupting
        // (and measured) points a rejection is the scheme working.
        let false_rejects = if point.benign { detected } else { 0 };
        let detect_rate = if effective == 0 {
            "-".to_string()
        } else if point.benign {
            // Benign points have no corruption to detect.
            "-".to_string()
        } else {
            format!("{:.2}", detected as f64 / effective as f64)
        };
        let mean_ttd = if detected > 0 && !point.benign {
            format!("{:.1}", ttd_sum as f64 / detected as f64)
        } else {
            "-".to_string()
        };
        t.push([
            point.name.to_string(),
            class.to_string(),
            runs.to_string(),
            effective.to_string(),
            detect_rate,
            false_rejects.to_string(),
            format!("{:.2}", inconclusive as f64 / runs.max(1) as f64),
            mean_ttd,
            format!("{:.1}", messages as f64 / runs.max(1) as f64),
            format!("{:.1}", retries as f64 / runs.max(1) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s4_table_meets_the_acceptance_grid() {
        let t = run(true, 0x54);
        assert_eq!(t.rows.len(), fault_grid().len());
        for row in &t.rows {
            match row[1].as_str() {
                "corrupting" => {
                    assert_eq!(row[4], "1.00", "{}: detection below 1.0", row[0]);
                }
                "benign" => {
                    assert_eq!(row[5], "0", "{}: false reject", row[0]);
                }
                _ => {}
            }
        }
    }
}
