//! S2 — Fault-injection campaign: detection rate and rejection locality.
//!
//! Soundness is a statement about *no*-instances; a deployed scheme must
//! also notice corruption of an accepted *yes*-instance. This experiment
//! starts from a matched yes-instance per scheme (the same nine schemes as
//! the S1 soundness campaign), injects each adversarial fault model of
//! [`locert_core::faults`] many times at seeded random sites, and reports:
//!
//! - **detection rate** — the fraction of effective faulty runs where at
//!   least one honest vertex rejects (runs where the fault was a no-op on
//!   this instance, e.g. a bit flip into an empty certificate, are counted
//!   separately and excluded);
//! - **rejection locality** — the mean BFS distance from the fault site to
//!   the nearest rejecting vertex (0 = the faulted vertex itself rejects).
//!
//! The paper's radius-1 verification model makes a sharp prediction: every
//! certificate fault at a vertex can only be noticed at distance ≤ 1 —
//! locality must never exceed 1 for certificate-level models.

use crate::report::{f2, Table};
use locert_automata::library;
use locert_core::faults::{run_campaign, FaultModel};
use locert_core::framework::{Instance, Scheme};
use locert_core::schemes::acyclicity::AcyclicityScheme;
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::depth2_fo::Depth2FoScheme;
use locert_core::schemes::existential_fo::ExistentialFoScheme;
use locert_core::schemes::minor_free::PathMinorFreeScheme;
use locert_core::schemes::mso_tree::MsoTreeScheme;
use locert_core::schemes::spanning_tree::VertexCountScheme;
use locert_core::schemes::tree_depth_bound::TreeDepthBoundScheme;
use locert_core::schemes::tree_diameter::TreeDiameterScheme;
use locert_core::schemes::treedepth::TreedepthScheme;
use locert_graph::{generators, Graph, IdAssignment};
use locert_logic::props;

/// One fault campaign row: a scheme and a yes-instance it accepts.
struct Target {
    scheme: Box<dyn Scheme>,
    yes_instance: Graph,
}

/// A connected graph containing a triangle: a 3-clique with a path tail
/// (yes-instance for ∃-FO "has a 3-clique").
fn lollipop(n: usize) -> Graph {
    let n = n.max(4);
    let mut edges = vec![(0, 1), (1, 2), (2, 0)];
    for v in 3..n {
        edges.push((v - 1, v));
    }
    Graph::from_edges(n, edges).expect("lollipop is simple and connected")
}

fn targets(b: u32, n: usize) -> Vec<Target> {
    let even = if n.is_multiple_of(2) { n } else { n + 1 };
    vec![
        Target {
            scheme: Box::new(AcyclicityScheme::new(b)),
            yes_instance: generators::path(n),
        },
        Target {
            scheme: Box::new(VertexCountScheme::new(b, n as u64)),
            yes_instance: generators::path(n),
        },
        Target {
            scheme: Box::new(TreeDiameterScheme::new(b, 3)),
            yes_instance: generators::star(n),
        },
        Target {
            scheme: Box::new(TreedepthScheme::new(b, 3)),
            yes_instance: generators::path(7),
        },
        Target {
            scheme: Box::new(TreeDepthBoundScheme::new(2)),
            yes_instance: generators::star(n),
        },
        Target {
            scheme: Box::new(MsoTreeScheme::new(library::has_perfect_matching())),
            yes_instance: generators::path(even),
        },
        Target {
            scheme: Box::new(
                ExistentialFoScheme::new(b, &props::has_clique(3)).expect("existential"),
            ),
            yes_instance: lollipop(n),
        },
        Target {
            scheme: Box::new(
                Depth2FoScheme::from_formula(b, &props::has_dominating_vertex()).expect("depth 2"),
            ),
            yes_instance: generators::star(n.max(5)),
        },
        Target {
            scheme: Box::new(PathMinorFreeScheme::new(b, 4)),
            yes_instance: generators::star(n),
        },
    ]
}

/// Runs the fault campaign: every scheme × every fault model, `runs`
/// seeded injections each. Returns only the detection-rate table; use
/// [`run_with_provenance`] for the rejection-locality provenance table
/// produced by the same sweep.
pub fn run(n: usize, runs: usize, seed: u64) -> Table {
    run_with_provenance(n, runs, seed).0
}

/// Runs the fault campaign once and reports it twice: the detection-rate
/// table and the rejection-locality provenance table (per-detection
/// rejection reasons and fault-site-to-detector distances).
pub fn run_with_provenance(n: usize, runs: usize, seed: u64) -> (Table, Table) {
    let mut table = Table::new(
        "S2",
        "Fault-injection campaign",
        "Radius-1 verification (Appendix A.1) localizes certificate faults: \
         a corrupted certificate is visible only to its owner and the \
         owner's neighbors, so whenever a fault is detected at all, the \
         nearest rejecting vertex lies within BFS distance 1 of the fault \
         site. Detection itself is scheme-dependent: load-bearing fields \
         (counters, distances, automaton states) must catch every single-bit \
         flip on tree instances. Fault models (locert-core::faults, seeded \
         and deterministic): bit-flip = flip one certificate bit; truncate \
         = drop a suffix; extend = append 1–8 random bits; replay = copy \
         another vertex's certificate; swap = exchange two certificates; \
         zero-cert = zero all bits; byzantine = the vertex accepts \
         unconditionally and shows random bits to neighbors; dup-id = \
         present another vertex's identifier; drop-nbr / dup-nbr = lose or \
         duplicate one neighbor entry in the radius-1 view. Detection rate \
         = detected / effective runs (no-op injections, e.g. a bit flip \
         into an empty certificate, are excluded); mean locality = average \
         BFS distance from fault site to nearest rejecting vertex. \
         Reproduce with: cargo run --release -p locert-bench --bin \
         experiments -- s2",
        "bit-flip detection 1.00 on tree targets; locality ≤ 1 for \
         certificate-level fault models",
        &[
            "scheme",
            "fault model",
            "runs",
            "no-op",
            "effective",
            "detected",
            "detection rate",
            "mean locality",
        ],
    );
    let mut provenance = Table::new(
        "S2b",
        "Rejection-locality provenance",
        "Every rejection in the S2 campaign carries provenance: the \
         verifier's RejectReason at the rejecting vertex and the BFS \
         distance from the injected fault site to that detector \
         (locert_core::faults::Detection). The distance histogram splits \
         detections into d=0 (the faulted vertex itself rejects), d=1 (a \
         neighbor rejects), and d≥2 (only possible for fault models that \
         corrupt state beyond one certificate, e.g. swap's second site or \
         view-level faults). The dominant reason names the certificate \
         field the fault actually broke. Reproduce with: cargo run \
         --release -p locert-bench --bin experiments -- s2",
        "d≥2 = 0 for single-certificate fault models (radius-1 \
         verification); dominant reasons name load-bearing fields, not \
         generic failures",
        &[
            "scheme",
            "fault model",
            "detections",
            "d=0",
            "d=1",
            "d>=2",
            "dominant reason",
        ],
    );
    for (ti, t) in targets(6, n).into_iter().enumerate() {
        let g = &t.yes_instance;
        let ids = IdAssignment::contiguous(g.num_nodes());
        let inst = Instance::new(g, &ids);
        assert!(6 >= id_bits_for(&inst), "id width too small for n");
        let honest = t.scheme.assign(&inst).unwrap_or_else(|e| {
            panic!("{}: yes-instance rejected by prover: {e}", t.scheme.name())
        });
        for (mi, model) in FaultModel::ALL.into_iter().enumerate() {
            let base_seed = seed
                .wrapping_add((ti as u64) << 32)
                .wrapping_add((mi as u64) << 16);
            let stats = run_campaign(t.scheme.as_ref(), &inst, &honest, model, runs, base_seed);
            table.push([
                t.scheme.name(),
                model.name().to_string(),
                runs.to_string(),
                stats.noop_runs.to_string(),
                stats.effective_runs.to_string(),
                stats.detected.to_string(),
                f2(stats.detection_rate()),
                stats.mean_locality().map_or_else(|| "—".to_string(), f2),
            ]);
            let total: usize = stats.reasons.values().sum();
            let at = |d: usize| stats.distances.get(&d).copied().unwrap_or(0);
            let far: usize = stats
                .distances
                .iter()
                .filter(|&(&d, _)| d >= 2)
                .map(|(_, &c)| c)
                .sum();
            provenance.push([
                t.scheme.name(),
                model.name().to_string(),
                total.to_string(),
                at(0).to_string(),
                at(1).to_string(),
                far.to_string(),
                stats
                    .dominant_reason()
                    .map_or_else(|| "—".to_string(), |(r, c)| format!("{r} (×{c})")),
            ]);
        }
    }
    (table, provenance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flips_on_trees_are_always_detected_locally() {
        let t = run(12, 40, 0x52);
        assert_eq!(t.rows.len(), 9 * FaultModel::ALL.len());
        for row in &t.rows {
            if row[1] == FaultModel::BitFlip.name() {
                assert_eq!(
                    row[6], "1.00",
                    "scheme {} missed a bit flip: {row:?}",
                    row[0]
                );
            }
            // Certificate-level faults are visible only at radius 1.
            let cert_level = matches!(
                row[1].as_str(),
                "bit-flip" | "truncate" | "extend" | "zero-cert"
            );
            if cert_level && row[7] != "—" {
                let loc: f64 = row[7].parse().expect("locality cell");
                assert!(
                    loc <= 1.0,
                    "scheme {} rejected {}-far from a {} fault",
                    row[0],
                    row[7],
                    row[1]
                );
            }
        }
    }

    #[test]
    fn provenance_table_localizes_certificate_faults() {
        let (_, p) = run_with_provenance(12, 40, 0x52);
        assert_eq!(p.rows.len(), 9 * FaultModel::ALL.len());
        for row in &p.rows {
            let detections: usize = row[2].parse().expect("detections cell");
            let d0: usize = row[3].parse().expect("d=0 cell");
            let d1: usize = row[4].parse().expect("d=1 cell");
            let far: usize = row[5].parse().expect("d>=2 cell");
            // Every detection on these connected instances is reachable
            // from the fault site, so the histogram is exhaustive.
            assert_eq!(d0 + d1 + far, detections, "histogram mismatch: {row:?}");
            // Radius-1 verification: a single corrupted certificate is
            // invisible beyond the owner's neighbors.
            let cert_level = matches!(
                row[1].as_str(),
                "bit-flip" | "truncate" | "extend" | "zero-cert" | "replay"
            );
            if cert_level {
                assert_eq!(far, 0, "far detection of a {} fault: {row:?}", row[1]);
            }
            // The dominant reason is present exactly when something was
            // detected.
            assert_eq!(detections > 0, row[6] != "—", "reason cell: {row:?}");
        }
    }

    #[test]
    fn lollipop_has_a_triangle_and_a_tail() {
        let g = lollipop(8);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 8); // 3 triangle edges + 5 tail edges.
    }
}
