//! E8 — Section 4 warm-up: MSO on words certified on path graphs with
//! O(1) bits, via the Büchi–Elgot–Trakhtenbrot compiler.

use crate::report::Table;
use locert_automata::mso_words::{compile, PosVar, WordFormula};
use locert_automata::words::Nfa;
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::word_path::WordPathScheme;
use locert_graph::{generators, IdAssignment};

/// "No two consecutive 1s", compiled from MSO.
pub fn no_11_nfa() -> Nfa {
    let f = WordFormula::Not(Box::new(WordFormula::Exists(
        PosVar(0),
        Box::new(WordFormula::Exists(
            PosVar(1),
            Box::new(WordFormula::And(
                Box::new(WordFormula::Succ(PosVar(0), PosVar(1))),
                Box::new(WordFormula::And(
                    Box::new(WordFormula::Letter(PosVar(0), 1)),
                    Box::new(WordFormula::Letter(PosVar(1), 1)),
                )),
            )),
        )),
    )));
    compile(&f, 2).expect("compiles")
}

/// "Every 1 is eventually followed by a 0".
pub fn one_then_zero_nfa() -> Nfa {
    // ∀x (1(x) → ∃y (x < y ∧ 0(y))), rewritten with ¬∃¬.
    let f = WordFormula::Forall(
        PosVar(0),
        Box::new(WordFormula::Or(
            Box::new(WordFormula::Not(Box::new(WordFormula::Letter(
                PosVar(0),
                1,
            )))),
            Box::new(WordFormula::Exists(
                PosVar(1),
                Box::new(WordFormula::And(
                    Box::new(WordFormula::Less(PosVar(0), PosVar(1))),
                    Box::new(WordFormula::Letter(PosVar(1), 0)),
                )),
            )),
        )),
    );
    compile(&f, 2).expect("compiles")
}

/// Runs E8 over path lengths.
pub fn run(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E8",
        "MSO-on-words certification on paths (Section 4 warm-up)",
        "MSO word properties (= regular languages, Büchi–Elgot–Trakhtenbrot) are \
         certified on labeled paths by state-labeling an accepting run: O(1) bits.",
        "certificate size constant across all n, per property",
        &["n", "no-11 [bits]", "1-then-0 [bits]"],
    );
    let s1 = WordPathScheme::new(no_11_nfa());
    let s2 = WordPathScheme::new(one_then_zero_nfa());
    for &n in ns {
        let g = generators::path(n);
        let ids = IdAssignment::contiguous(n);
        // Alternating 0 1 0 1 … with a forced trailing 0 satisfies both
        // properties at every length.
        let letters: Vec<usize> = (0..n)
            .map(|i| usize::from(i % 2 == 1 && i + 1 < n))
            .collect();
        let inst = Instance::with_inputs(&g, &ids, &letters);
        let b1 = run_scheme(&s1, &inst).expect("yes").max_bits();
        let b2 = run_scheme(&s2, &inst).expect("yes").max_bits();
        table.push([n.to_string(), b1.to_string(), b2.to_string()]);
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize) -> usize {
    let g = generators::path(n);
    let ids = IdAssignment::contiguous(n);
    let letters: Vec<usize> = (0..n)
        .map(|i| usize::from(i % 2 == 1 && i + 1 < n))
        .collect();
    let inst = Instance::with_inputs(&g, &ids, &letters);
    let s = WordPathScheme::new(no_11_nfa());
    run_scheme(&s, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_across_sizes() {
        let t = run(&[8, 64, 512]);
        for col in 1..=2 {
            let first = &t.rows[0][col];
            assert!(t.rows.iter().all(|r| &r[col] == first));
        }
    }
}
