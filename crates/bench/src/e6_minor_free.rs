//! E6 — Corollary 2.7: P_t- and C_t-minor-freeness with O(log n) bits.

use crate::report::{f2, Table};
use locert_core::framework::{run_scheme, Instance};
use locert_core::schemes::common::id_bits_for;
use locert_core::schemes::minor_free::{CtMinorFreeScheme, PathMinorFreeScheme};
use locert_graph::{generators, Graph, GraphBuilder, IdAssignment};

/// A caterpillar-free workload: spiders with legs of length `t − 2`
/// rooted at the hub contain `P_{2t−3}` but we keep legs short enough to
/// be `P_t`-minor-free: legs of length `⌊(t−2)/2⌋`.
fn pt_free_instance(t: usize, n: usize) -> Graph {
    let leg = ((t - 2) / 2).max(1);
    let legs = (n.saturating_sub(1)) / leg;
    generators::spider(legs.max(1), leg)
}

/// A cactus of triangles in a star arrangement: C_4-minor-free at any
/// size.
fn triangle_cactus(k: usize) -> Graph {
    let mut b = GraphBuilder::new(1 + 2 * k);
    for i in 0..k {
        let x = 1 + 2 * i;
        let y = x + 1;
        b.add_edge(0, x).unwrap();
        b.add_edge(0, y).unwrap();
        b.add_edge(x, y).unwrap();
    }
    b.build()
}

/// P_t sizes over t × n.
pub fn run_paths(ts: &[usize], ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E6a",
        "P_t-minor-free certification (Corollary 2.7)",
        "For all t, P_t-minor-free graphs can be certified with O(log n)-bit \
         certificates.",
        "bits / log₂ n bounded per fixed t; growth between doublings is O(1) bits",
        &["t", "n", "max cert [bits]", "bits / log2 n"],
    );
    for &t in ts {
        for &n in ns {
            let g = pt_free_instance(t, n);
            let n_actual = g.num_nodes();
            let ids = IdAssignment::contiguous(n_actual);
            let inst = Instance::new(&g, &ids);
            let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), t);
            let out = run_scheme(&scheme, &inst)
                .expect("spider instance is P_t-minor-free by construction");
            assert!(out.accepted());
            table.push([
                t.to_string(),
                n_actual.to_string(),
                out.max_bits().to_string(),
                f2(out.max_bits() as f64 / (n_actual as f64).log2()),
            ]);
        }
    }
    table
}

/// C_t sizes on triangle cacti.
pub fn run_cycles(ks: &[usize]) -> Table {
    let mut table = Table::new(
        "E6b",
        "C_t-minor-free certification (Corollary 2.7, via blocks)",
        "C_t-minor-free graphs can be certified with O(log n) bits by certifying \
         each 2-connected component (decomposition layer delegated to [8], see \
         DESIGN.md).",
        "bits / log₂ n bounded as the cactus grows",
        &["blocks", "n", "max cert [bits]", "bits / log2 n"],
    );
    for &k in ks {
        let g = triangle_cactus(k);
        let n = g.num_nodes();
        let ids = IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = CtMinorFreeScheme::new(id_bits_for(&inst), 4);
        let out = run_scheme(&scheme, &inst).expect("cactus is C_4-minor-free");
        assert!(out.accepted());
        table.push([
            k.to_string(),
            n.to_string(),
            out.max_bits().to_string(),
            f2(out.max_bits() as f64 / (n as f64).log2()),
        ]);
    }
    table
}

/// One pipeline run, for Criterion.
pub fn bench_once(n: usize) -> usize {
    let g = pt_free_instance(4, n);
    let ids = IdAssignment::contiguous(g.num_nodes());
    let inst = Instance::new(&g, &ids);
    let scheme = PathMinorFreeScheme::new(id_bits_for(&inst), 4);
    run_scheme(&scheme, &inst).expect("yes").max_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::minors;

    #[test]
    fn instances_are_actually_minor_free() {
        for t in [4usize, 6] {
            let g = pt_free_instance(t, 40);
            assert!(!minors::has_path_minor(&g, t), "t = {t}");
        }
        let c = triangle_cactus(5);
        assert!(!minors::has_cycle_minor(&c, 4));
        assert!(minors::has_cycle_minor(&c, 3));
    }

    #[test]
    fn path_table_runs() {
        let t = run_paths(&[4], &[32, 128]);
        assert_eq!(t.rows.len(), 2);
        let r0: f64 = t.rows[0][3].parse().unwrap();
        assert!(r0 > 0.0);
    }

    #[test]
    fn cycle_table_runs() {
        let t = run_cycles(&[3, 6]);
        assert_eq!(t.rows.len(), 2);
    }
}
