//! E2 — Theorem 2.3: fixed-point-free automorphism needs Ω̃(n) bits.
//!
//! Three measurable facets:
//!
//! 1. the tree-counting table (Pach et al. \[42]): `log₂ #trees(n, depth)`
//!    grows almost linearly in `n` for depth ≥ 3 — this is the `ℓ` of the
//!    reduction;
//! 2. the reduction rates `Ω(ℓ/r)` with `r = 2`: almost-linear per-vertex
//!    lower bounds, versus the `O(log n)` upper bounds of E3/E6/E7;
//! 3. the constructive gadget dichotomy (FPF automorphism ⇔ equal
//!    strings), exhaustively verified at small ℓ.

use crate::report::{f2, Table};
use locert_graph::enumerate::count_trees_log2;
use locert_lb::automorphism::gadget_has_fpf;
use locert_lb::bounds::{automorphism_rate, automorphism_rate_depth2};
use locert_lb::cc::all_strings;

/// The tree-counting and rate table.
pub fn run_counting(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E2a",
        "Tree counting and reduction rates (Theorem 2.3)",
        "Certifying fixed-point-free automorphism requires Ω̃(n)-bit certificates, \
         even on bounded-depth trees; the reduction encodes ℓ = log₂ #trees bits \
         into trees hung on a 2-vertex interface (rate ℓ/2).",
        "log₂ #trees (depth 3) grows ≈ linearly in n (ratio column ≈ constant · n/log log n), \
         so the per-vertex rate dwarfs the O(log n) upper bounds of E3/E6/E7",
        &[
            "n (tree size)",
            "log2 #trees depth2",
            "log2 #trees depth3",
            "log2 #trees depth4",
            "rate depth3 [bits/vertex]",
            "rate / (n/lnln n)",
            "O(log n) reference",
        ],
    );
    for &n in sizes {
        let l2 = count_trees_log2(n, 2);
        let l3 = count_trees_log2(n, 3);
        let l4 = count_trees_log2(n, 4);
        let rate = automorphism_rate(n, 3);
        let lnln = (n as f64).ln().ln().max(0.1);
        t.push([
            n.to_string(),
            f2(l2),
            f2(l3),
            f2(l4),
            f2(rate),
            f2(rate / (n as f64 / lnln)),
            f2((n as f64).log2()),
        ]);
    }
    t
}

/// The depth-2 (√n) regime of the paper's final remark.
pub fn run_depth2(lengths: &[usize]) -> Table {
    let mut t = Table::new(
        "E2b",
        "Depth-2 injection: the Ω(√n) regime",
        "For depth-2 trees the count is 2^Θ(√n) (integer partitions), giving an \
         Ω(√n) bound — the paper's k = 2 extension.",
        "rate ≈ √n/2 (ratio column ≈ 0.5)",
        &[
            "ℓ (bits)",
            "n (gadget size)",
            "rate [bits/vertex]",
            "rate/√n",
        ],
    );
    for &l in lengths {
        let (n, q) = automorphism_rate_depth2(l);
        t.push([
            l.to_string(),
            n.to_string(),
            f2(q),
            f2(q / (n as f64).sqrt()),
        ]);
    }
    t
}

/// Upper bound vs. lower bound: the universal (broadcast-the-graph)
/// scheme certifies the FPF-automorphism gadget with Θ(n²) bits, while
/// the reduction forbids going below Ω̃(√n) (depth-2 injection) /
/// Ω̃(n) (rank injection) — and MSO properties sit at O(1) (E1).
pub fn run_upper_vs_lower(lengths: &[usize]) -> Table {
    use locert_core::framework::{run_scheme, Instance};
    use locert_core::schemes::universal::fpf_automorphism_scheme;
    use locert_lb::automorphism::{build_gadget, AutomorphismFamily};
    use locert_lb::framework::GadgetFamily;

    let mut t = Table::new(
        "E2d",
        "FPF automorphism: universal upper bound vs. reduction lower bound",
        "Any property is certifiable by broadcasting the graph (Section 1.2): \
         O(n²) bits in general, Õ(n) on trees with the sparse edge-list \
         encoding — matching Theorem 2.3's Ω̃(n) lower bound for FPF \
         automorphism. Every MSO property sits at O(1) (E1).",
        "upper bound quasilinear in n (tight against Ω̃(n)), lower-bound rate \
         ~√n for the depth-2 injection, MSO column constant: the separation \
         the paper is about",
        &[
            "ℓ",
            "n (gadget)",
            "universal scheme (sparse) [bits]",
            "lower bound rate [bits]",
            "MSO reference [bits] (E1)",
        ],
    );
    for &l in lengths {
        let fam = AutomorphismFamily { l };
        let s: Vec<bool> = (0..l).map(|i| i % 2 == 0).collect();
        let tree = AutomorphismFamily::tree_for(&s);
        let (g, _) = build_gadget(&tree, &tree);
        let n = g.num_nodes();
        let ids = locert_graph::IdAssignment::contiguous(n);
        let inst = Instance::new(&g, &ids);
        let scheme = fpf_automorphism_scheme(locert_core::schemes::common::id_bits_for(&inst));
        let out = run_scheme(&scheme, &inst).expect("mirrored gadget has an FPF");
        assert!(out.accepted());
        let _ = fam.input_bits();
        t.push([
            l.to_string(),
            n.to_string(),
            out.max_bits().to_string(),
            f2(l as f64 / 2.0),
            "20".to_string(), // the constant measured in E1.
        ]);
    }
    t
}

/// The exhaustive gadget dichotomy at small ℓ.
pub fn run_dichotomy(max_l: usize) -> Table {
    let mut t = Table::new(
        "E2c",
        "Gadget dichotomy (Appendix E.2)",
        "G(s_A, s_B) has a fixed-point-free automorphism iff s_A = s_B.",
        "zero violations over all pairs",
        &["ℓ", "pairs checked", "violations"],
    );
    for l in 1..=max_l {
        let mut checked = 0u64;
        let mut violations = 0u64;
        for s_a in all_strings(l) {
            for s_b in all_strings(l) {
                checked += 1;
                if gadget_has_fpf(&s_a, &s_b) != (s_a == s_b) {
                    violations += 1;
                }
            }
        }
        t.push([l.to_string(), checked.to_string(), violations.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_superlogarithmic() {
        let t = run_counting(&[16, 64, 256]);
        // Depth-3 log-count at n = 256 must dwarf log2(256) = 8.
        let l3: f64 = t.rows[2][2].parse().unwrap();
        assert!(l3 > 50.0, "log2 count = {l3}");
    }

    #[test]
    fn dichotomy_clean() {
        let t = run_dichotomy(3);
        for row in &t.rows {
            assert_eq!(row[2], "0");
        }
    }

    #[test]
    fn depth2_ratio_near_half() {
        let t = run_depth2(&[16, 32]);
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!((0.3..0.7).contains(&ratio));
        }
    }
}

#[cfg(test)]
mod upper_lower_tests {
    use super::*;

    #[test]
    fn universal_upper_bound_grows_near_linearly() {
        let t = run_upper_vs_lower(&[2, 6]);
        let b0: f64 = t.rows[0][2].parse().unwrap();
        let b1: f64 = t.rows[1][2].parse().unwrap();
        let n0: f64 = t.rows[0][1].parse().unwrap();
        let n1: f64 = t.rows[1][1].parse().unwrap();
        // Quasilinear: within log factors of linear growth.
        let growth = (b1 / b0) / (n1 / n0);
        assert!((0.8..4.0).contains(&growth), "growth factor {growth}");
    }
}
