//! S3 — Differential oracle cross-check across every scheme.
//!
//! The `locert-oracle` harness runs every catalogued scheme against
//! independent ground truth (exact treedepth, the FO/MSO model checker,
//! direct automaton runs), sibling schemes in the same group, the
//! adversarial attack battery on no-instances, and the metamorphic
//! relations (relabel, disjoint self-union, leaf-append). A sound and
//! complete implementation shows 0 in the disagreements column
//! everywhere; any nonzero entry comes with a shrunk minimal repro from
//! `diffhunt`.

use crate::report::Table;
use locert_oracle::{cases, harness};

/// Runs the oracle sweep and tabulates per-case tallies.
pub fn run(quick: bool, seed: u64) -> Table {
    let catalogue = cases::catalogue();
    let graphs = harness::family(quick, seed);
    let rounds = if quick { 20 } else { 60 };
    let report = harness::run_oracle(&catalogue, &graphs, seed, rounds);
    let mut t = Table::new(
        "S3",
        "Oracle cross-check (differential + metamorphic)",
        "Every scheme's honest verdict matches independent ground truth and \
         its sibling constructions; no adversarial assignment fools a \
         verifier on a no-instance (Thm. 1–4 implementations agree with \
         exact oracles).",
        "the disagreements column is 0 for every case",
        &[
            "case",
            "group",
            "graphs checked",
            "out of domain",
            "disagreements",
        ],
    );
    for stat in &report.stats {
        t.push([
            stat.name.clone(),
            stat.group.clone(),
            stat.checked.to_string(),
            stat.skipped.to_string(),
            stat.disagreements.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s3_table_is_clean_and_covers_the_catalogue() {
        let t = run(true, 0x53);
        assert_eq!(t.rows.len(), cases::catalogue().len());
        for row in &t.rows {
            assert_eq!(row[4], "0", "disagreement in case {}", row[0]);
            assert_ne!(row[2], "0", "case {} never checked", row[0]);
        }
    }
}
