//! S5 — Certification as a service: daemon throughput and cache curve.
//!
//! The schemes' prover/verifier split maps naturally onto a service
//! boundary: proving is centralized and expensive, verification is the
//! cheap distributed act (Section 2). `locert-serve` makes that split
//! operational — this experiment drives a live in-process daemon with
//! the seeded loadgen workload over a real TCP socket.
//!
//! S5a measures end-to-end throughput and latency for the cold phase
//! (every request certifies a fresh instance) against the repeated
//! phase (a small pool cycled until the content-addressed certificate
//! cache serves almost everything). S5b sweeps the cache capacity
//! against a fixed repeated pool: LRU under a cyclic access pattern is
//! all-or-nothing — one slot short of the pool size thrashes to zero
//! hits, pool-sized capacity converges to the compulsory-miss optimum.
//! The S5b counters are seed-deterministic; wall-clock columns in S5a
//! are not (and stay out of the committed metrics baseline).

use crate::report::{f2, Table};
use locert_serve::loadgen::{run_loadgen, LoadgenConfig};
use locert_serve::{ServeConfig, Server};

fn start_server(cache_capacity: usize) -> Server {
    Server::start(&ServeConfig {
        cache_capacity,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port for the S5 daemon")
}

/// Nearest-rank quantile over one phase's samples, in microseconds.
fn quantile_us(report: &locert_serve::loadgen::Report, phase: Option<u8>, q: f64) -> String {
    match report.latency_quantile_ns(phase, q) {
        Some(ns) => format!("{:.1}", ns as f64 / 1_000.0),
        None => "-".to_string(),
    }
}

/// Sequential per-phase throughput: samples over their summed latency.
fn throughput_rps(report: &locert_serve::loadgen::Report, phase: Option<u8>) -> String {
    let samples: Vec<u64> = report
        .latency_ns
        .iter()
        .filter(|(p, _)| phase.is_none_or(|want| want == *p))
        .map(|&(_, ns)| ns)
        .collect();
    let total_ns: u64 = samples.iter().sum();
    if total_ns == 0 {
        return "-".to_string();
    }
    format!(
        "{:.0}",
        samples.len() as f64 * 1_000_000_000.0 / total_ns as f64
    )
}

/// S5a: one seeded mixed workload against a live daemon, tabulated per
/// phase. Wall-clock columns vary run to run; the request, verdict, and
/// cache-disposition counts do not.
pub fn run_throughput(quick: bool) -> Table {
    let (unique, repeats) = if quick { (12, 60) } else { (30, 90) };
    let server = start_server(256);
    let config = LoadgenConfig {
        addr: server.addr(),
        unique,
        repeats,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&config).expect("S5a workload completes");
    assert_eq!(report.mismatches, 0, "S5a verdict cross-check failed");
    assert_eq!(report.unexpected, 0, "S5a saw unexpected error codes");
    let mut t = Table::new(
        "S5a",
        "Certification service: throughput and latency by phase (locert-serve)",
        "Centralized proving with distributed radius-1 verification is a \
         service: certificates are content-addressed by instance digest, \
         so re-certifying a known instance costs a cache lookup instead \
         of a prover run (Sec. 2 prover/verifier split).",
        "every verdict matches a direct run_verification, and the \
         repeated phase is served from the cache at a higher request \
         rate than the cold phase",
        &[
            "phase",
            "requests",
            "hit",
            "miss",
            "hit-rate",
            "throughput [req/s]",
            "p50 [us]",
            "p99 [us]",
        ],
    );
    let phase1 = (report.requests - report.phase2_requests, 0u64);
    let phase2 = (report.phase2_requests, report.phase2_hits);
    for (label, phase, (requests, hits)) in [
        ("cold (fresh instances)", Some(1u8), phase1),
        ("repeated (cached pool)", Some(2u8), phase2),
    ] {
        let misses = requests - hits;
        t.push([
            label.to_string(),
            requests.to_string(),
            hits.to_string(),
            misses.to_string(),
            f2(hits as f64 / requests.max(1) as f64),
            throughput_rps(&report, phase),
            quantile_us(&report, phase, 0.5),
            quantile_us(&report, phase, 0.99),
        ]);
    }
    t
}

/// S5b: repeated-pool hit rate as a function of cache capacity. Fully
/// deterministic: the workload is seeded and the daemon serves it on
/// one connection in order.
pub fn run_hit_curve(quick: bool) -> Table {
    let pool = 8usize;
    let repeats = if quick { 40 } else { 120 };
    let mut t = Table::new(
        "S5b",
        "Certificate-cache hit rate vs. capacity (LRU, cyclic pool)",
        "A content-addressed certificate cache turns repeat certification \
         into O(1) service; LRU under a cyclic request pattern is \
         all-or-nothing around the working-set size.",
        "zero hits at every capacity below the pool size, and exactly \
         (repeats - pool) hits at or above it",
        &[
            "capacity", "pool", "requests", "hit", "miss", "evict", "hit-rate",
        ],
    );
    for capacity in [pool / 2, pool - 1, pool, 2 * pool] {
        let server = start_server(capacity);
        let config = LoadgenConfig {
            addr: server.addr(),
            unique: 0,
            distinct: pool,
            repeats,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(&config).expect("S5b workload completes");
        assert_eq!(report.mismatches, 0, "S5b verdict cross-check failed");
        let (hits, misses, evictions) = server.cache_stats();
        t.push([
            capacity.to_string(),
            pool.to_string(),
            repeats.to_string(),
            hits.to_string(),
            misses.to_string(),
            evictions.to_string(),
            f2(hits as f64 / repeats.max(1) as f64),
        ]);
    }
    t
}

/// Runs both S5 tables.
pub fn run(quick: bool) -> Vec<Table> {
    vec![run_throughput(quick), run_hit_curve(quick)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s5b_hit_curve_is_all_or_nothing_around_the_pool_size() {
        let t = run_hit_curve(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let capacity: usize = row[0].parse().unwrap();
            let pool: usize = row[1].parse().unwrap();
            let repeats: u64 = row[2].parse().unwrap();
            let hits: u64 = row[3].parse().unwrap();
            if capacity < pool {
                assert_eq!(hits, 0, "cyclic LRU below the pool size must thrash");
            } else {
                assert_eq!(
                    hits,
                    repeats - pool as u64,
                    "pool-sized capacity must reach the compulsory-miss optimum"
                );
            }
        }
    }

    #[test]
    fn s5a_phases_tabulate_and_the_repeated_phase_hits() {
        let t = run_throughput(true);
        assert_eq!(t.rows.len(), 2);
        let cold_rate: f64 = t.rows[0][4].parse().unwrap();
        let repeated_rate: f64 = t.rows[1][4].parse().unwrap();
        assert_eq!(cold_rate, 0.0, "fresh instances never hit");
        assert!(repeated_rate >= 0.9, "repeated phase must be cache-hot");
    }
}
