//! Effective Theorem 2.2 (within a budget): compiling an FO sentence into
//! a tree automaton by rank-`k` type discovery.
//!
//! The proof of Theorem 2.2 invokes the logic–automata correspondence as
//! a black box. Making it *effective* runs into the non-elementary cost
//! the paper cites (Frick–Grohe \[29]): the number of rank-`k` types of
//! rooted trees — the automaton's states — explodes, and the transition
//! function over all capped children-count vectors explodes again. This
//! module therefore ships a **budgeted compiler**:
//!
//! - the **rank-`k` type** of a rooted tree `(T, r)` is its class under
//!   `≃_k` with the root pinned (decided by the pinned
//!   Ehrenfeucht–Fraïssé game); it is a congruence — determined by the
//!   multiset of the children's types **capped at multiplicity `k`**
//!   (the same absorption argument as Proposition 6.3's pruning);
//! - [`TrainedAutomaton::train`] discovers types *driven by a corpus of
//!   training trees*: every subtree of the corpus is classified bottom-up
//!   (cheap invariants, then EF against small, minimized
//!   representatives), and only the children-count vectors actually
//!   observed become transitions;
//! - unobserved vectors fall into a reject **sink**, so the resulting
//!   [`TreeAutomaton`] is total and deterministic, and:
//!
//!   * **soundness is unconditional** — every accepted tree satisfies
//!     `φ` (its type was certified by a representative that models `φ`);
//!   * **completeness holds on covered inputs** — trees all of whose
//!     children-vectors were observed in training
//!     ([`TrainedAutomaton::covers`]); an uncovered yes-instance is
//!     rejected, never wrongly accepted.
//!
//! The certified pipeline (compile `φ`, then run the Theorem 2.2 scheme)
//! therefore degrades gracefully exactly where the non-elementary bound
//! says it must.

use crate::trees::{CountAtom, Guard, LabeledTree, TreeAutomaton};
use locert_graph::{Graph, GraphBuilder, NodeId, RootedTree};
use locert_logic::ef::duplicator_wins_pinned;
use locert_logic::eval::models;
use locert_logic::Formula;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`TrainedAutomaton::train`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The sentence is not closed FO.
    NotAnFoSentence,
    /// More rank-`k` types were discovered than the state budget allows.
    TooManyTypes {
        /// The exceeded budget.
        cap: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NotAnFoSentence => {
                write!(f, "synthesis requires a closed FO sentence")
            }
            SynthesisError::TooManyTypes { cap } => {
                write!(f, "more than {cap} rank-k types; lower the rank or budget")
            }
        }
    }
}

impl Error for SynthesisError {}

/// A rooted tree kept as (graph, root) — representatives of types.
#[derive(Debug, Clone)]
struct Rep {
    graph: Graph,
    root: NodeId,
}

impl Rep {
    /// A cheap rank-`k` invariant (implied by `≃_k`): capped root degree
    /// and capped vertex count — both expressible at rank ≤ `k`, so
    /// distinct invariants imply distinct types. Prefilters the EF games.
    fn invariant(&self, k: usize) -> (usize, usize) {
        (
            self.graph.degree(self.root).min(k),
            self.graph.num_nodes().min(k),
        )
    }

    /// Replaces the representative by the smallest equivalent rooted tree
    /// with fewer than `size_cap` vertices, keeping later EF games tiny.
    fn minimized(self, k: usize, size_cap: usize) -> Rep {
        use locert_graph::enumerate::{enumerate_trees, parent_vec_to_rooted};
        for n in 1..size_cap.min(self.graph.num_nodes()) {
            for pv in enumerate_trees(n, n) {
                let rt = parent_vec_to_rooted(&pv);
                let mut b = GraphBuilder::new(rt.num_nodes());
                for v in 0..rt.num_nodes() {
                    if let Some(parent) = rt.parent(NodeId(v)) {
                        b.add_edge(v, parent.0).expect("valid");
                    }
                }
                let cand = Rep {
                    graph: b.build(),
                    root: rt.root(),
                };
                if cand.invariant(k) == self.invariant(k) && cand.same_type(&self, k) {
                    return cand;
                }
            }
        }
        self
    }

    /// Assembles a fresh root with `counts[s]` copies of state `s`'s
    /// representative hanging below it.
    fn assemble(reps: &[Rep], counts: &[usize]) -> Rep {
        let mut b = GraphBuilder::new(1);
        for (s, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                let offset = b.num_nodes();
                for _ in 0..reps[s].graph.num_nodes() {
                    b.add_node();
                }
                for (u, v) in reps[s].graph.edges() {
                    b.add_edge(offset + u.0, offset + v.0).expect("valid copy");
                }
                b.add_edge(0, offset + reps[s].root.0).expect("valid graft");
            }
        }
        Rep {
            graph: b.build(),
            root: NodeId(0),
        }
    }

    /// Whether two representatives have the same rank-`k` type.
    fn same_type(&self, other: &Rep, k: usize) -> bool {
        duplicator_wins_pinned(&self.graph, &other.graph, &[(self.root, other.root)], k)
    }
}

/// A trained, budgeted rank-`k` tree-automaton compiler for one sentence.
pub struct TrainedAutomaton {
    automaton: TreeAutomaton,
    /// Observed capped children-count vectors → state.
    transitions: HashMap<Vec<usize>, usize>,
    /// Number of genuine type states (the sink is state `num_types`).
    num_types: usize,
    k: usize,
}

impl fmt::Debug for TrainedAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrainedAutomaton")
            .field("k", &self.k)
            .field("num_types", &self.num_types)
            .field("observed_vectors", &self.transitions.len())
            .finish()
    }
}

impl TrainedAutomaton {
    /// Compiles `phi` (a closed FO sentence) against a training corpus.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::NotAnFoSentence`] on non-FO/open input;
    /// [`SynthesisError::TooManyTypes`] when the discovered type count
    /// exceeds `max_states` (at most 63 — one automaton slot is reserved
    /// for the sink).
    pub fn train(
        phi: &Formula,
        corpus: &[RootedTree],
        max_states: usize,
    ) -> Result<TrainedAutomaton, SynthesisError> {
        let _span = locert_trace::span!("automata.synthesis.train");
        if !locert_logic::depth::is_fo(phi) || !phi.is_sentence() {
            return Err(SynthesisError::NotAnFoSentence);
        }
        let k = locert_logic::depth::quantifier_depth(phi).max(1);
        let cap = k; // multiplicities beyond k are absorbed at rank k.
        let budget = max_states.min(63);
        let mut reps: Vec<Rep> = Vec::new();
        let mut transitions: HashMap<Vec<usize>, usize> = HashMap::new();
        for tree in corpus {
            // Classify every subtree bottom-up.
            let mut state = vec![usize::MAX; tree.num_nodes()];
            for v in tree.postorder() {
                let mut counts = vec![0usize; reps.len()];
                for &c in tree.children(v) {
                    counts[state[c.0]] = (counts[state[c.0]] + 1).min(cap);
                }
                let s = match transitions.get(&counts) {
                    Some(&s) => s,
                    None => {
                        let rep = Rep::assemble(&reps, &counts);
                        let inv = rep.invariant(k);
                        let found = reps
                            .iter()
                            .position(|r| r.invariant(k) == inv && r.same_type(&rep, k));
                        let s = match found {
                            Some(s) => s,
                            None => {
                                if reps.len() >= budget {
                                    return Err(SynthesisError::TooManyTypes { cap: budget });
                                }
                                reps.push(rep.minimized(k, 7));
                                // Pad existing transition keys to the new
                                // state count.
                                let old: Vec<(Vec<usize>, usize)> = transitions.drain().collect();
                                for (mut kk, vv) in old {
                                    kk.resize(reps.len(), 0);
                                    transitions.insert(kk, vv);
                                }
                                reps.len() - 1
                            }
                        };
                        let mut padded = counts.clone();
                        padded.resize(reps.len(), 0);
                        transitions.insert(padded, s);
                        s
                    }
                };
                state[v.0] = s;
            }
        }
        // Normalize all keys to the final width.
        let num_types = reps.len();
        let final_transitions: HashMap<Vec<usize>, usize> = transitions
            .into_iter()
            .map(|(mut kk, vv)| {
                kk.resize(num_types, 0);
                (kk, vv)
            })
            .collect();
        // Build the automaton: states 0..num_types are types, state
        // num_types is the reject sink.
        let sink = num_types;
        let num_states = num_types + 1;
        let mut any_clause = Guard::False;
        let mut guards: Vec<Guard> = vec![Guard::False; num_states];
        for (veck, &s) in &final_transitions {
            let mut clause = Guard::True;
            for (st, &c) in veck.iter().enumerate() {
                let atom = if c == cap {
                    Guard::AtLeast(CountAtom {
                        states: 1u64 << st,
                        count: cap,
                    })
                } else {
                    Guard::exactly(1u64 << st, c)
                };
                clause = Guard::And(Box::new(clause), Box::new(atom));
            }
            // Any child in the sink keeps us in the sink.
            let no_sink = Guard::AtMost(CountAtom {
                states: 1u64 << sink,
                count: 0,
            });
            let full = Guard::And(Box::new(clause), Box::new(no_sink));
            guards[s] = Guard::Or(Box::new(guards[s].clone()), Box::new(full.clone()));
            any_clause = Guard::Or(Box::new(any_clause), Box::new(full));
        }
        guards[sink] = Guard::Not(Box::new(any_clause));
        let accepting: Vec<bool> = (0..num_types)
            .map(|s| models(&reps[s].graph, phi))
            .chain([false]) // the sink rejects.
            .collect();
        let automaton = TreeAutomaton::new(
            num_states,
            1,
            guards.into_iter().map(|g| vec![g]).collect(),
            accepting,
        )
        .expect("well-formed");
        if locert_trace::enabled() {
            locert_trace::add("automata.synthesis.runs", 1);
            locert_trace::add("automata.synthesis.types", num_types as u64);
            locert_trace::add(
                "automata.synthesis.transitions",
                final_transitions.len() as u64,
            );
            locert_trace::record("automata.synthesis.states", num_states as u64);
            locert_trace::record("automata.synthesis.rank", k as u64);
        }
        Ok(TrainedAutomaton {
            automaton,
            transitions: final_transitions,
            num_types,
            k,
        })
    }

    /// The compiled automaton (deterministic and complete; unobserved
    /// configurations land in a rejecting sink).
    pub fn automaton(&self) -> &TreeAutomaton {
        &self.automaton
    }

    /// Number of discovered rank-`k` types (excluding the sink).
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The quantifier rank the compiler ran at.
    pub fn rank(&self) -> usize {
        self.k
    }

    /// Whether every children-count vector of `tree` was observed during
    /// training — i.e. whether the automaton's verdict on `tree` is
    /// *complete* (accept ⇔ `φ`), not merely sound.
    pub fn covers(&self, tree: &RootedTree) -> bool {
        let mut state = vec![usize::MAX; tree.num_nodes()];
        for v in tree.postorder() {
            let mut counts = vec![0usize; self.num_types];
            for &c in tree.children(v) {
                if state[c.0] == usize::MAX {
                    return false;
                }
                counts[state[c.0]] = (counts[state[c.0]] + 1).min(self.k);
            }
            match self.transitions.get(&counts) {
                Some(&s) => state[v.0] = s,
                None => return false,
            }
        }
        true
    }
}

/// Convenience: trains on all rooted trees with up to `train_size`
/// vertices (exhaustive corpus via the enumeration module).
///
/// # Errors
///
/// See [`TrainedAutomaton::train`].
///
/// # Panics
///
/// Panics if `train_size > 12` (corpus explosion guard).
pub fn fo_tree_automaton(
    phi: &Formula,
    train_size: usize,
    max_states: usize,
) -> Result<TrainedAutomaton, SynthesisError> {
    use locert_graph::enumerate::{enumerate_trees, parent_vec_to_rooted};
    assert!(train_size <= 12, "training corpus would explode");
    let mut corpus = Vec::new();
    for n in 1..=train_size {
        for pv in enumerate_trees(n, n) {
            corpus.push(parent_vec_to_rooted(&pv));
        }
    }
    TrainedAutomaton::train(phi, &corpus, max_states)
}

/// Pairs the compiler with the acceptance check on a tree (sound always,
/// complete when [`TrainedAutomaton::covers`] holds).
pub fn accepts(t: &TrainedAutomaton, tree: &RootedTree) -> bool {
    t.automaton().accepts(&LabeledTree::unlabeled(tree.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::{generators, RootedTree};
    use locert_logic::ast::{self, Var};
    use locert_logic::props;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rooted(g: &Graph) -> RootedTree {
        RootedTree::from_tree(g, NodeId(0)).unwrap()
    }

    /// Soundness everywhere + completeness on covered trees, against the
    /// brute-force evaluator.
    fn check(phi: &Formula, train_size: usize, trials: usize, seed: u64) {
        let compiled = fo_tree_automaton(phi, train_size, 63).expect("trains");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut covered = 0;
        for _ in 0..trials {
            let n = 1 + rand::RngExt::random_range(&mut rng, 0..8usize);
            let g = generators::random_tree(n, &mut rng);
            let t = rooted(&g);
            let verdict = accepts(&compiled, &t);
            let truth = models(&g, phi);
            // Soundness: accept ⇒ φ.
            assert!(!verdict || truth, "unsound accept on {g:?} for {phi}");
            if compiled.covers(&t) {
                covered += 1;
                assert_eq!(verdict, truth, "covered tree misjudged: {g:?} for {phi}");
            }
        }
        assert!(
            covered >= trials * 3 / 4,
            "training coverage too low: {covered}/{trials}"
        );
    }

    #[test]
    fn dominating_vertex_compiled() {
        check(&props::has_dominating_vertex(), 9, 30, 1);
    }

    #[test]
    fn min_degree_compiled() {
        check(&props::min_degree_1(), 9, 30, 2);
    }

    #[test]
    fn at_most_one_vertex_compiled() {
        check(&props::at_most_one_vertex(), 9, 30, 3);
    }

    #[test]
    fn exists_edge_compiled() {
        let (x, y) = (Var(0), Var(1));
        check(&ast::exists_all([x, y], ast::adj(x, y)), 9, 30, 4);
    }

    #[test]
    fn compiled_automaton_is_certifiable() {
        let compiled = fo_tree_automaton(&props::has_dominating_vertex(), 8, 63).unwrap();
        // Runs extract for the Theorem 2.2 certificates.
        let star = rooted(&generators::star(12));
        let t = LabeledTree::unlabeled(star.clone());
        assert!(compiled.covers(&star));
        let a = compiled.automaton();
        assert!(a.accepts(&t));
        let run = a.accepting_run(&t).unwrap();
        assert!(a.is_accepting_run(&t, &run));
    }

    #[test]
    fn uncovered_trees_are_rejected_not_misjudged() {
        // Train on tiny trees only; probe with shapes outside the corpus.
        let compiled = fo_tree_automaton(&props::min_degree_1(), 3, 63).unwrap();
        let big_star = rooted(&generators::star(12));
        let truth = models(&generators::star(12), &props::min_degree_1());
        // Sound either way: any accept implies the property.
        assert!(!accepts(&compiled, &big_star) || truth);
    }

    #[test]
    fn rejects_mso_and_open_formulas() {
        let x = Var(0);
        let s = locert_logic::ast::SetVar(0);
        assert!(matches!(
            TrainedAutomaton::train(&ast::exists_set(s, ast::forall(x, ast::mem(x, s))), &[], 63),
            Err(SynthesisError::NotAnFoSentence)
        ));
        assert!(matches!(
            TrainedAutomaton::train(&ast::adj(Var(0), Var(1)), &[], 63),
            Err(SynthesisError::NotAnFoSentence)
        ));
    }

    #[test]
    fn state_budget_enforced() {
        assert!(matches!(
            fo_tree_automaton(&props::has_dominating_vertex(), 9, 2),
            Err(SynthesisError::TooManyTypes { cap: 2 })
        ));
    }
}
