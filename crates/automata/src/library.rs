//! Ready-made tree automata for MSO properties of rooted trees.
//!
//! Theorem 2.2's proof needs, for each MSO property, *an* automaton
//! recognizing it; the certification scheme then labels nodes with an
//! accepting run. This library supplies the automata used as workloads in
//! experiment E1, each a handful of states with threshold guards, each
//! cross-validated against a direct combinatorial ground truth:
//!
//! | automaton | property (of the rooted tree) | deterministic |
//! |---|---|---|
//! | [`height_at_most`] | height ≤ `c` (vertices on a root-leaf path) | yes |
//! | [`has_perfect_matching`] | the tree has a perfect matching | yes |
//! | [`max_children_at_most`] | every node has ≤ `d` children | yes |
//! | [`all_internal_at_least`] | every internal node has ≥ `k` children | yes |
//! | [`some_leaf_at_depth`] | some leaf sits at depth exactly `c` | no |
//!
//! All automata are over a single label (`num_labels = 1`).

use crate::trees::{CountAtom, Guard, TreeAutomaton};

fn mask(states: &[usize]) -> u64 {
    states.iter().fold(0u64, |m, &q| m | (1u64 << q))
}

fn at_least(states: u64, count: usize) -> Guard {
    Guard::AtLeast(CountAtom { states, count })
}

fn at_most(states: u64, count: usize) -> Guard {
    Guard::AtMost(CountAtom { states, count })
}

fn and(a: Guard, b: Guard) -> Guard {
    Guard::And(Box::new(a), Box::new(b))
}

/// "The tree has height at most `c`" (height = number of vertices on the
/// longest root-to-leaf path; a single vertex has height 1).
///
/// States: `0..c` = "subtree height is `state + 1`", state `c` = reject
/// sink. Deterministic and complete.
///
/// # Panics
///
/// Panics if `c == 0`.
pub fn height_at_most(c: usize) -> TreeAutomaton {
    assert!(c >= 1, "height bound must be positive");
    let num_states = c + 1;
    let reject = c;
    let all = mask(&(0..num_states).collect::<Vec<_>>());
    let mut guards = Vec::with_capacity(num_states);
    for h in 0..c {
        // Subtree height h+1: no child of height ≥ h+1 (state ≥ h) nor
        // reject, and (for h ≥ 1) at least one child of height exactly h
        // (state h-1).
        let too_tall = mask(&(h..=reject).collect::<Vec<_>>());
        let g = if h == 0 {
            at_most(all, 0)
        } else {
            and(at_most(too_tall, 0), at_least(mask(&[h - 1]), 1))
        };
        guards.push(vec![g]);
    }
    // Reject: some child is reject or has height ≥ c (state ≥ c-1 gives
    // height ≥ c, so this node's height would exceed c).
    let overflow = mask(&[c - 1, reject]);
    guards.push(vec![at_least(overflow, 1)]);
    let mut accepting = vec![true; num_states];
    accepting[reject] = false;
    TreeAutomaton::new(num_states, 1, guards, accepting).expect("well-formed")
}

/// "The tree has a perfect matching."
///
/// Classic greedy DP: state 0 = `U` (subtree minus its root is perfectly
/// matched; the root needs its parent), state 1 = `M` (subtree is
/// perfectly matched), state 2 = reject sink. A node is `M` iff exactly
/// one child is `U` (the root matches it); `U` iff all children are `M`.
/// Deterministic and complete; accept `{M}`.
pub fn has_perfect_matching() -> TreeAutomaton {
    let u = 0usize;
    let _m = 1usize; // M state index, for reference.
    let r = 2usize;
    let guards = vec![
        // U: no U child, no reject child.
        vec![at_most(mask(&[u, r]), 0)],
        // M: exactly one U child, no reject child.
        vec![and(
            and(at_least(mask(&[u]), 1), at_most(mask(&[u]), 1)),
            at_most(mask(&[r]), 0),
        )],
        // Reject: two or more U children, or any reject child.
        vec![Guard::Or(
            Box::new(at_least(mask(&[u]), 2)),
            Box::new(at_least(mask(&[r]), 1)),
        )],
    ];
    TreeAutomaton::new(3, 1, guards, vec![false, true, false]).expect("well-formed")
}

/// "Every node has at most `d` children."
///
/// States: 0 = ok, 1 = reject sink. Deterministic and complete.
pub fn max_children_at_most(d: usize) -> TreeAutomaton {
    let all = mask(&[0, 1]);
    let guards = vec![
        vec![and(at_most(all, d), at_most(mask(&[1]), 0))],
        vec![Guard::Or(
            Box::new(at_least(all, d + 1)),
            Box::new(at_least(mask(&[1]), 1)),
        )],
    ];
    TreeAutomaton::new(2, 1, guards, vec![true, false]).expect("well-formed")
}

/// "Every internal (non-leaf) node has at least `k` children."
///
/// States: 0 = ok, 1 = reject sink. Deterministic and complete.
///
/// # Panics
///
/// Panics if `k == 0` (trivially true; use a constant automaton).
pub fn all_internal_at_least(k: usize) -> TreeAutomaton {
    assert!(k >= 1, "use k >= 1");
    let all = mask(&[0, 1]);
    // Ok: leaf, or (≥ k children and no reject child).
    let ok = Guard::Or(
        Box::new(at_most(all, 0)),
        Box::new(and(at_least(all, k), at_most(mask(&[1]), 0))),
    );
    // Reject: between 1 and k-1 children, or a reject child.
    let bad = Guard::Or(
        Box::new(and(at_least(all, 1), at_most(all, k - 1))),
        Box::new(at_least(mask(&[1]), 1)),
    );
    TreeAutomaton::new(2, 1, vec![vec![ok], vec![bad]], vec![true, false]).expect("well-formed")
}

/// "All leaves sit at the same depth ≤ `c`" (the tree is *leaf-uniform*,
/// e.g. a perfect k-ary tree).
///
/// States: `0..c` = "every leaf of this subtree is exactly `state` levels
/// below me (state + 1 ≤ c levels of vertices)", state `c` = reject sink.
/// Deterministic and complete.
///
/// # Panics
///
/// Panics if `c == 0`.
pub fn uniform_leaf_depth(c: usize) -> TreeAutomaton {
    assert!(c >= 1, "depth budget must be positive");
    let num_states = c + 1;
    let reject = c;
    let all = mask(&(0..num_states).collect::<Vec<_>>());
    let mut guards = Vec::with_capacity(num_states);
    for h in 0..c {
        let g = if h == 0 {
            // A leaf.
            at_most(all, 0)
        } else {
            // Every child is uniform at h − 1: at least one child, and no
            // child in any other state.
            let other = all & !mask(&[h - 1]);
            and(at_least(mask(&[h - 1]), 1), at_most(other, 0))
        };
        guards.push(vec![g]);
    }
    // Reject: children exist but are not all in one state h − 1 < c − 1…
    // complement of the accepting guards: some child rejected, or
    // children in ≥ 2 distinct states, or depth exhausted. Expressed as:
    // NOT(leaf) and NOT(uniform at any level).
    let mut accept_any = Guard::False;
    for h in 0..c {
        let g = if h == 0 {
            at_most(all, 0)
        } else {
            let other = all & !mask(&[h - 1]);
            and(at_least(mask(&[h - 1]), 1), at_most(other, 0))
        };
        accept_any = Guard::Or(Box::new(accept_any), Box::new(g));
    }
    guards.push(vec![Guard::Not(Box::new(accept_any))]);
    let mut accepting = vec![true; num_states];
    accepting[reject] = false;
    TreeAutomaton::new(num_states, 1, guards, accepting).expect("well-formed")
}

/// "Some leaf sits at depth exactly `c`" (root depth 0) — a genuinely
/// nondeterministic automaton: it guesses the witnessing leaf and threads
/// a marked path to the root.
///
/// States: 0 = off-path, `1..=c+1` = "on the marked path, `state - 1`
/// levels above the chosen leaf". Accepts when the root carries state
/// `c + 1`.
///
/// # Panics
///
/// Panics if `c == 0` (the root itself; test `height == 1` instead) or
/// `c > 62`.
pub fn some_leaf_at_depth(c: usize) -> TreeAutomaton {
    assert!((1..=62).contains(&c), "depth out of supported range");
    let num_states = c + 2;
    let on_states = mask(&(1..num_states).collect::<Vec<_>>());
    let mut guards = Vec::with_capacity(num_states);
    // Off: no on-path child (off subtrees contain no mark).
    guards.push(vec![at_most(on_states, 0)]);
    // On_0 (state 1): the chosen leaf.
    guards.push(vec![Guard::leaf(num_states)]);
    // On_i (state i+1, i >= 1): exactly one child On_{i-1}, no other
    // on-path child.
    for i in 1..=c {
        let below = mask(&[i]); // state carrying On_{i-1}.
        let others = on_states & !below;
        guards.push(vec![and(Guard::exactly(below, 1), at_most(others, 0))]);
    }
    let mut accepting = vec![false; num_states];
    accepting[c + 1] = true;
    TreeAutomaton::new(num_states, 1, guards, accepting).expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::LabeledTree;
    use locert_graph::{generators, Graph, NodeId, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unlabeled(g: &Graph, root: usize) -> LabeledTree {
        LabeledTree::unlabeled(RootedTree::from_tree(g, NodeId(root)).unwrap())
    }

    /// Ground truth: greedy perfect matching on rooted trees.
    fn tree_has_pm(t: &LabeledTree) -> bool {
        // Bottom-up: returns Some(unmatched?) or None if impossible.
        let tree = t.tree();
        let mut state = vec![false; tree.num_nodes()]; // true = unmatched (U)
        for v in tree.postorder() {
            let unmatched_children = tree.children(v).iter().filter(|c| state[c.0]).count();
            match unmatched_children {
                0 => state[v.0] = true,
                1 => state[v.0] = false,
                _ => return false,
            }
        }
        !state[tree.root().0]
    }

    #[test]
    fn height_automaton_matches_tree_height() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..20 {
            let g = generators::random_tree(
                1 + rand::RngExt::random_range(&mut rng, 0..12usize),
                &mut rng,
            );
            let t = unlabeled(&g, 0);
            let h = t.tree().height() + 1;
            for c in 1..=6 {
                assert_eq!(
                    height_at_most(c).accepts(&t),
                    h <= c,
                    "height {h} vs bound {c}"
                );
            }
        }
    }

    #[test]
    fn height_automaton_is_deterministic() {
        for c in 1..=4 {
            assert!(height_at_most(c).is_deterministic(), "c = {c}");
        }
    }

    #[test]
    fn perfect_matching_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = has_perfect_matching();
        assert!(a.is_deterministic());
        let mut seen_both = (false, false);
        for _ in 0..60 {
            let n = 1 + rand::RngExt::random_range(&mut rng, 0..10usize);
            let g = generators::random_tree(n, &mut rng);
            let t = unlabeled(&g, 0);
            let expected = tree_has_pm(&t);
            assert_eq!(a.accepts(&t), expected, "tree {g:?}");
            if expected {
                seen_both.0 = true;
            } else {
                seen_both.1 = true;
            }
        }
        assert!(
            seen_both.0 && seen_both.1,
            "workload should cover both answers"
        );
    }

    #[test]
    fn perfect_matching_on_paths() {
        let a = has_perfect_matching();
        for n in 1..=8 {
            let t = unlabeled(&generators::path(n), 0);
            assert_eq!(a.accepts(&t), n % 2 == 0, "P_{n}");
        }
    }

    #[test]
    fn max_children_thresholds() {
        let star = unlabeled(&generators::star(6), 0); // root has 5 children
        assert!(!max_children_at_most(4).accepts(&star));
        assert!(max_children_at_most(5).accepts(&star));
        assert!(max_children_at_most(2).is_deterministic());
        // Rerooting the star at a leaf: hub now has 4 children + parent.
        let releaf = unlabeled(&generators::star(6), 1);
        assert!(releaf.tree().children(NodeId(0)).len() == 4);
        assert!(max_children_at_most(4).accepts(&releaf));
    }

    #[test]
    fn internal_arity_lower_bound() {
        let a = all_internal_at_least(2);
        assert!(a.is_deterministic());
        let bintree = unlabeled(&generators::complete_kary_tree(2, 3), 0);
        assert!(a.accepts(&bintree));
        let path = unlabeled(&generators::path(4), 0);
        assert!(!a.accepts(&path));
        let single = unlabeled(&Graph::empty(1), 0);
        assert!(a.accepts(&single));
    }

    #[test]
    fn leaf_depth_witness() {
        let a = some_leaf_at_depth(2);
        let star = unlabeled(&generators::star(5), 0);
        assert!(!a.accepts(&star));
        let spider = unlabeled(&generators::spider(3, 2), 0);
        assert!(a.accepts(&spider));
        let p4 = unlabeled(&generators::path(4), 0);
        assert!(!a.accepts(&p4)); // only leaf at depth 3.
                                  // Mixed: root 0 with leaves 1, 5 (depth 1) and chain 2-3-4 whose
                                  // leaf 4 sits at depth 3 — no leaf at depth 2.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (0, 5)]).unwrap();
        let t = unlabeled(&g, 0);
        assert!(!some_leaf_at_depth(1).is_deterministic());
        assert!(some_leaf_at_depth(1).accepts(&t));
        assert!(!some_leaf_at_depth(2).accepts(&t));
        assert!(some_leaf_at_depth(3).accepts(&t));
    }

    #[test]
    fn leaf_depth_exact_semantics() {
        // Tree: root 0 with leaf 1 (depth 1) and chain 0-2-3-4 (leaf 4 at
        // depth 3).
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (3, 4)]).unwrap();
        let t = unlabeled(&g, 0);
        assert!(some_leaf_at_depth(1).accepts(&t));
        assert!(!some_leaf_at_depth(2).accepts(&t));
        assert!(some_leaf_at_depth(3).accepts(&t));
        assert!(!some_leaf_at_depth(4).accepts(&t));
    }

    #[test]
    fn boolean_combinations_via_products() {
        // height ≤ 3 AND perfect matching, on paths rooted at ends:
        // P_2 (height 2, PM) yes; P_4 (height 4) no; P_3 (no PM) no.
        let combo = height_at_most(3).intersect(&has_perfect_matching());
        let yes = unlabeled(&generators::path(2), 0);
        assert!(combo.accepts(&yes));
        let no_height = unlabeled(&generators::path(4), 0);
        assert!(!combo.accepts(&no_height));
        let no_pm = unlabeled(&generators::path(3), 0);
        assert!(!combo.accepts(&no_pm));
        // Union: P_4 rooted at an end has height 4 ≤ 4... use P_5 instead.
        let union = height_at_most(2).union_complete(&has_perfect_matching());
        let p4 = unlabeled(&generators::path(4), 0); // height 4, has PM.
        assert!(union.accepts(&p4));
        let p5 = unlabeled(&generators::path(5), 0); // height 5, no PM.
        assert!(!union.accepts(&p5));
        let star = unlabeled(&generators::star(5), 0); // height 2, no PM.
        assert!(union.accepts(&star));
    }

    #[test]
    fn complement_of_height() {
        let c = height_at_most(2).complement_deterministic();
        let star = unlabeled(&generators::star(7), 0);
        assert!(!c.accepts(&star));
        let p3 = unlabeled(&generators::path(3), 0);
        assert!(c.accepts(&p3));
    }

    #[test]
    fn uniform_leaf_depth_recognizes_perfect_trees() {
        let a = uniform_leaf_depth(5);
        assert!(a.is_deterministic());
        // Perfect binary trees: uniform.
        for d in 0..=3 {
            let t = unlabeled(&generators::complete_kary_tree(2, d), 0);
            assert!(a.accepts(&t), "depth {d}");
        }
        // Stars: uniform (all leaves at depth 1).
        assert!(a.accepts(&unlabeled(&generators::star(7), 0)));
        // A path rooted at an end: uniform (single leaf).
        assert!(a.accepts(&unlabeled(&generators::path(4), 0)));
        // A path rooted at an inner vertex: leaves at depths 1 and 2.
        assert!(!a.accepts(&unlabeled(&generators::path(4), 1)));
        // Mixed depths.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        assert!(!a.accepts(&unlabeled(&g, 0)));
        // Depth budget exceeded.
        let tight = uniform_leaf_depth(2);
        assert!(!tight.accepts(&unlabeled(&generators::path(4), 0)));
        assert!(tight.accepts(&unlabeled(&generators::path(2), 0)));
    }

    #[test]
    fn uniform_leaf_depth_ground_truth_random() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = uniform_leaf_depth(6);
        for _ in 0..30 {
            let n = 1 + rand::RngExt::random_range(&mut rng, 0..12usize);
            let g = generators::random_tree(n, &mut rng);
            let t = unlabeled(&g, 0);
            let tree = t.tree();
            let depths: std::collections::BTreeSet<usize> = g
                .nodes()
                .filter(|&v| tree.children(v).is_empty())
                .map(|v| tree.depth(v))
                .collect();
            let expected = depths.len() == 1 && *depths.iter().next().unwrap() < 6 || (n == 1);
            assert_eq!(a.accepts(&t), expected, "tree {g:?}");
        }
    }

    #[test]
    fn runs_extracted_for_all_library_automata() {
        let g = generators::spider(2, 2);
        let t = unlabeled(&g, 0);
        for (name, a) in [
            ("height", height_at_most(4)),
            ("pm", has_perfect_matching()),
            ("arity", max_children_at_most(3)),
            ("internal", all_internal_at_least(1)),
            ("leafdepth", some_leaf_at_depth(2)),
        ] {
            if a.accepts(&t) {
                let run = a.accepting_run(&t).expect(name);
                assert!(a.is_accepting_run(&t, &run), "{name}");
            }
        }
    }
}
