//! The Büchi–Elgot–Trakhtenbrot compiler: MSO on words → NFA.
//!
//! Section 4 of the paper warms up with word automata: an MSO property of
//! words is certified by labeling every position with the state of an
//! accepting run. This module supplies the missing half of that argument —
//! the *effective* translation from MSO sentences on words to finite
//! automata — via the classical inductive construction:
//!
//! - the expanded alphabet is `Σ × 2^T` where `T` carries one *track* per
//!   variable of the sentence (first-order tracks mark a single position,
//!   set tracks mark any subset);
//! - atoms compile to 2–4-state NFAs over the expanded alphabet;
//! - `∧`/`∨` compile to product/union;
//! - `¬` compiles to complement-after-determinization, re-intersected with
//!   the *validity* automata of the free first-order tracks (exactly one
//!   mark each);
//! - `∃` (of either kind) makes its track "don't care" — the automaton
//!   nondeterministically re-guesses the erased bit at every step.
//!
//! Every compiled automaton is cross-validated in the tests against
//! [`eval_word_formula`], a brute-force semantic evaluator.

use crate::words::Nfa;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A first-order position variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PosVar(pub u32);

/// A monadic second-order position-set variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PosSetVar(pub u32);

/// MSO formulas over words: positions ordered by `<` and successor, letter
/// tests, and set membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// `x < y` (strict position order).
    Less(PosVar, PosVar),
    /// `y = x + 1`.
    Succ(PosVar, PosVar),
    /// `x = y`.
    PosEq(PosVar, PosVar),
    /// The letter at `x` is `a`.
    Letter(PosVar, usize),
    /// `x ∈ X`.
    InSet(PosVar, PosSetVar),
    /// Negation.
    Not(Box<WordFormula>),
    /// Conjunction.
    And(Box<WordFormula>, Box<WordFormula>),
    /// Disjunction.
    Or(Box<WordFormula>, Box<WordFormula>),
    /// `∃x. φ`.
    Exists(PosVar, Box<WordFormula>),
    /// `∀x. φ`.
    Forall(PosVar, Box<WordFormula>),
    /// `∃X. φ`.
    ExistsSet(PosSetVar, Box<WordFormula>),
    /// `∀X. φ`.
    ForallSet(PosSetVar, Box<WordFormula>),
}

impl WordFormula {
    /// All first-order variables syntactically present.
    fn pos_vars(&self, out: &mut BTreeSet<PosVar>) {
        use WordFormula::*;
        match self {
            True | False => {}
            Less(x, y) | Succ(x, y) | PosEq(x, y) => {
                out.insert(*x);
                out.insert(*y);
            }
            Letter(x, _) => {
                out.insert(*x);
            }
            InSet(x, _) => {
                out.insert(*x);
            }
            Not(f) => f.pos_vars(out),
            And(a, b) | Or(a, b) => {
                a.pos_vars(out);
                b.pos_vars(out);
            }
            Exists(x, f) | Forall(x, f) => {
                out.insert(*x);
                f.pos_vars(out);
            }
            ExistsSet(_, f) | ForallSet(_, f) => f.pos_vars(out),
        }
    }

    /// All set variables syntactically present.
    fn set_vars(&self, out: &mut BTreeSet<PosSetVar>) {
        use WordFormula::*;
        match self {
            True | False | Less(..) | Succ(..) | PosEq(..) | Letter(..) => {}
            InSet(_, s) => {
                out.insert(*s);
            }
            Not(f) => f.set_vars(out),
            And(a, b) | Or(a, b) => {
                a.set_vars(out);
                b.set_vars(out);
            }
            Exists(_, f) | Forall(_, f) => f.set_vars(out),
            ExistsSet(s, f) | ForallSet(s, f) => {
                out.insert(*s);
                f.set_vars(out);
            }
        }
    }

    /// Free first-order variables.
    fn free_pos_vars(&self, bound: &mut Vec<PosVar>, out: &mut BTreeSet<PosVar>) {
        use WordFormula::*;
        match self {
            True | False => {}
            Less(x, y) | Succ(x, y) | PosEq(x, y) => {
                for v in [x, y] {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            Letter(x, _) | InSet(x, _) => {
                if !bound.contains(x) {
                    out.insert(*x);
                }
            }
            Not(f) => f.free_pos_vars(bound, out),
            And(a, b) | Or(a, b) => {
                a.free_pos_vars(bound, out);
                b.free_pos_vars(bound, out);
            }
            Exists(x, f) | Forall(x, f) => {
                bound.push(*x);
                f.free_pos_vars(bound, out);
                bound.pop();
            }
            ExistsSet(_, f) | ForallSet(_, f) => f.free_pos_vars(bound, out),
        }
    }

    /// Whether each variable is bound at most once and never both free and
    /// bound (the compiler's precondition).
    fn has_distinct_bindings(&self) -> bool {
        fn walk(
            f: &WordFormula,
            seen_pos: &mut BTreeSet<PosVar>,
            seen_set: &mut BTreeSet<PosSetVar>,
        ) -> bool {
            use WordFormula::*;
            match f {
                True | False | Less(..) | Succ(..) | PosEq(..) | Letter(..) | InSet(..) => true,
                Not(g) => walk(g, seen_pos, seen_set),
                And(a, b) | Or(a, b) => walk(a, seen_pos, seen_set) && walk(b, seen_pos, seen_set),
                Exists(x, g) | Forall(x, g) => seen_pos.insert(*x) && walk(g, seen_pos, seen_set),
                ExistsSet(s, g) | ForallSet(s, g) => {
                    seen_set.insert(*s) && walk(g, seen_pos, seen_set)
                }
            }
        }
        walk(self, &mut BTreeSet::new(), &mut BTreeSet::new())
    }
}

/// Error produced by [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The formula has free variables (only sentences compile).
    NotASentence,
    /// A variable is quantified twice (rename apart first).
    RebindsVariable,
    /// A letter test references a letter `>= alphabet`.
    LetterOutOfRange {
        /// The offending letter.
        letter: usize,
        /// The alphabet size.
        alphabet: usize,
    },
    /// Too many variables for the expanded-alphabet representation.
    TooManyTracks {
        /// Number of tracks requested.
        tracks: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotASentence => write!(f, "formula has free variables"),
            CompileError::RebindsVariable => {
                write!(f, "a variable is quantified more than once; rename apart")
            }
            CompileError::LetterOutOfRange { letter, alphabet } => {
                write!(f, "letter {letter} out of range for alphabet {alphabet}")
            }
            CompileError::TooManyTracks { tracks } => {
                write!(f, "{tracks} variable tracks exceed the supported maximum")
            }
        }
    }
}

impl Error for CompileError {}

/// A track in the expanded alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Track {
    Pos(PosVar),
    Set(PosSetVar),
}

struct Compiler {
    alphabet: usize,
    tracks: Vec<Track>,
}

impl Compiler {
    fn track_index(&self, t: Track) -> usize {
        self.tracks
            .iter()
            .position(|&u| u == t)
            .expect("all variables were registered as tracks")
    }

    fn expanded(&self) -> usize {
        self.alphabet << self.tracks.len()
    }

    fn bit(&self, symbol: usize, track: usize) -> bool {
        symbol & (1 << track) != 0
    }

    /// NFA accepting all expanded words (any content on every track).
    fn all(&self) -> Nfa {
        let sigma = self.expanded();
        Nfa::new(
            1,
            sigma,
            BTreeSet::from([0]),
            vec![true],
            vec![vec![BTreeSet::from([0]); sigma]],
        )
        .expect("trivially valid")
    }

    /// NFA rejecting everything.
    fn none(&self) -> Nfa {
        let sigma = self.expanded();
        Nfa::new(
            1,
            sigma,
            BTreeSet::from([0]),
            vec![false],
            vec![vec![BTreeSet::new(); sigma]],
        )
        .expect("trivially valid")
    }

    /// "Track `x` carries exactly one mark" (validity of an FO track).
    fn exactly_one(&self, x: PosVar) -> Nfa {
        let sigma = self.expanded();
        let tx = self.track_index(Track::Pos(x));
        // States: 0 = not yet marked, 1 = marked once.
        let mut t = vec![vec![BTreeSet::new(); sigma]; 2];
        for s in 0..sigma {
            if self.bit(s, tx) {
                t[0][s] = BTreeSet::from([1]);
            } else {
                t[0][s] = BTreeSet::from([0]);
                t[1][s] = BTreeSet::from([1]);
            }
        }
        Nfa::new(2, sigma, BTreeSet::from([0]), vec![false, true], t).expect("valid")
    }

    /// Runs `pred` on every expanded symbol, keeping transitions
    /// state-by-state; helper for 3-state "before / between / after"
    /// automata.
    fn order_automaton(
        &self,
        classify: impl Fn(usize) -> SymbolClass,
        require_adjacent: bool,
    ) -> Nfa {
        let sigma = self.expanded();
        // States: 0 = before first mark, 1 = after first mark, 2 = after
        // second mark.
        let mut t = vec![vec![BTreeSet::new(); sigma]; 3];
        for s in 0..sigma {
            match classify(s) {
                SymbolClass::Neither => {
                    t[0][s] = BTreeSet::from([0]);
                    if !require_adjacent {
                        t[1][s] = BTreeSet::from([1]);
                    }
                    t[2][s] = BTreeSet::from([2]);
                }
                SymbolClass::First => {
                    t[0][s] = BTreeSet::from([1]);
                }
                SymbolClass::Second => {
                    t[1][s] = BTreeSet::from([2]);
                }
                SymbolClass::Both => {}
            }
        }
        Nfa::new(3, sigma, BTreeSet::from([0]), vec![false, false, true], t).expect("valid")
    }

    fn compile(&self, f: &WordFormula) -> Result<Nfa, CompileError> {
        use WordFormula::*;
        Ok(match f {
            True => self.all(),
            False => self.none(),
            Less(x, y) => {
                let (tx, ty) = (
                    self.track_index(Track::Pos(*x)),
                    self.track_index(Track::Pos(*y)),
                );
                self.order_automaton(
                    |s| match (s & (1 << tx) != 0, s & (1 << ty) != 0) {
                        (false, false) => SymbolClass::Neither,
                        (true, false) => SymbolClass::First,
                        (false, true) => SymbolClass::Second,
                        (true, true) => SymbolClass::Both,
                    },
                    false,
                )
            }
            Succ(x, y) => {
                let (tx, ty) = (
                    self.track_index(Track::Pos(*x)),
                    self.track_index(Track::Pos(*y)),
                );
                self.order_automaton(
                    |s| match (s & (1 << tx) != 0, s & (1 << ty) != 0) {
                        (false, false) => SymbolClass::Neither,
                        (true, false) => SymbolClass::First,
                        (false, true) => SymbolClass::Second,
                        (true, true) => SymbolClass::Both,
                    },
                    true,
                )
            }
            PosEq(x, y) => {
                let (tx, ty) = (
                    self.track_index(Track::Pos(*x)),
                    self.track_index(Track::Pos(*y)),
                );
                // Exactly one position carrying both marks.
                let sigma = self.expanded();
                let mut t = vec![vec![BTreeSet::new(); sigma]; 2];
                for s in 0..sigma {
                    let (bx, by) = (self.bit(s, tx), self.bit(s, ty));
                    match (bx, by) {
                        (false, false) => {
                            t[0][s] = BTreeSet::from([0]);
                            t[1][s] = BTreeSet::from([1]);
                        }
                        (true, true) => {
                            t[0][s] = BTreeSet::from([1]);
                        }
                        _ => {}
                    }
                }
                Nfa::new(2, sigma, BTreeSet::from([0]), vec![false, true], t).expect("valid")
            }
            Letter(x, a) => {
                if *a >= self.alphabet {
                    return Err(CompileError::LetterOutOfRange {
                        letter: *a,
                        alphabet: self.alphabet,
                    });
                }
                let tx = self.track_index(Track::Pos(*x));
                let sigma = self.expanded();
                let mut t = vec![vec![BTreeSet::new(); sigma]; 2];
                for s in 0..sigma {
                    let letter = s >> self.tracks.len();
                    if self.bit(s, tx) {
                        if letter == *a {
                            t[0][s] = BTreeSet::from([1]);
                        }
                    } else {
                        t[0][s] = BTreeSet::from([0]);
                        t[1][s] = BTreeSet::from([1]);
                    }
                }
                Nfa::new(2, sigma, BTreeSet::from([0]), vec![false, true], t).expect("valid")
            }
            InSet(x, set) => {
                let tx = self.track_index(Track::Pos(*x));
                let ts = self.track_index(Track::Set(*set));
                let sigma = self.expanded();
                let mut t = vec![vec![BTreeSet::new(); sigma]; 2];
                for s in 0..sigma {
                    if self.bit(s, tx) {
                        if self.bit(s, ts) {
                            t[0][s] = BTreeSet::from([1]);
                        }
                    } else {
                        t[0][s] = BTreeSet::from([0]);
                        t[1][s] = BTreeSet::from([1]);
                    }
                }
                Nfa::new(2, sigma, BTreeSet::from([0]), vec![false, true], t).expect("valid")
            }
            Not(g) => {
                let inner = self.compile(g)?;
                let mut result = inner.complement();
                // Re-impose validity of free FO tracks.
                let mut free = BTreeSet::new();
                g.free_pos_vars(&mut Vec::new(), &mut free);
                for x in free {
                    result = result.intersect(&Nfa::from_dfa(&self.exactly_one(x).determinize()));
                    // Keep sizes in check.
                    result = Nfa::from_dfa(&result.determinize().minimize());
                }
                result
            }
            And(a, b) => {
                let na = self.compile(a)?;
                let nb = self.compile(b)?;
                Nfa::from_dfa(&na.intersect(&nb).determinize().minimize())
            }
            Or(a, b) => {
                let na = self.compile(a)?;
                let nb = self.compile(b)?;
                Nfa::from_dfa(&na.union(&nb).determinize().minimize())
            }
            Exists(x, g) => {
                // Enforce the track's validity explicitly: atoms only
                // enforce "exactly one mark" for variables they mention,
                // so ∃x.φ with x not occurring in φ still needs it.
                let inner = self.compile(g)?.intersect(&self.exactly_one(*x));
                self.erase_track(&inner, self.track_index(Track::Pos(*x)))
            }
            ExistsSet(s, g) => {
                let inner = self.compile(g)?;
                self.erase_track(&inner, self.track_index(Track::Set(*s)))
            }
            Forall(x, g) => {
                let rewritten = Not(Box::new(Exists(*x, Box::new(Not(g.clone())))));
                self.compile(&rewritten)?
            }
            ForallSet(s, g) => {
                let rewritten = Not(Box::new(ExistsSet(*s, Box::new(Not(g.clone())))));
                self.compile(&rewritten)?
            }
        })
    }

    /// Makes a track "don't care": on reading any symbol the automaton may
    /// pretend the track bit was either value
    /// (`transitions'[q][s] = t[q][s & ~bit] ∪ t[q][s | bit]`).
    ///
    /// Realized as `project` onto the bit-cleared canonical symbols (which
    /// unions the two variants) followed by `pullback` along the same
    /// canonicalization (which copies the union back to both variants).
    fn erase_track(&self, nfa: &Nfa, track: usize) -> Nfa {
        let sigma = self.expanded();
        let bit = 1usize << track;
        let canonical: Vec<usize> = (0..sigma).map(|s| s & !bit).collect();
        nfa.project(sigma, &canonical).pullback(&canonical)
    }
}

/// Classification of an expanded symbol by two FO marks.
enum SymbolClass {
    Neither,
    First,
    Second,
    Both,
}

/// Evaluates a word formula by brute force (ground truth for the
/// compiler). `word` is a slice of letters.
///
/// # Panics
///
/// Panics if the formula has free variables.
pub fn eval_word_formula(word: &[usize], f: &WordFormula) -> bool {
    fn eval(
        word: &[usize],
        f: &WordFormula,
        pos: &mut std::collections::HashMap<PosVar, usize>,
        sets: &mut std::collections::HashMap<PosSetVar, u64>,
    ) -> bool {
        use WordFormula::*;
        match f {
            True => true,
            False => false,
            Less(x, y) => pos[x] < pos[y],
            Succ(x, y) => pos[y] == pos[x] + 1,
            PosEq(x, y) => pos[x] == pos[y],
            Letter(x, a) => word[pos[x]] == *a,
            InSet(x, s) => sets[s] & (1u64 << pos[x]) != 0,
            Not(g) => !eval(word, g, pos, sets),
            And(a, b) => eval(word, a, pos, sets) && eval(word, b, pos, sets),
            Or(a, b) => eval(word, a, pos, sets) || eval(word, b, pos, sets),
            Exists(x, g) => (0..word.len()).any(|p| {
                pos.insert(*x, p);
                let r = eval(word, g, pos, sets);
                pos.remove(x);
                r
            }),
            Forall(x, g) => (0..word.len()).all(|p| {
                pos.insert(*x, p);
                let r = eval(word, g, pos, sets);
                pos.remove(x);
                r
            }),
            ExistsSet(s, g) => (0..(1u64 << word.len())).any(|m| {
                sets.insert(*s, m);
                let r = eval(word, g, pos, sets);
                sets.remove(s);
                r
            }),
            ForallSet(s, g) => (0..(1u64 << word.len())).all(|m| {
                sets.insert(*s, m);
                let r = eval(word, g, pos, sets);
                sets.remove(s);
                r
            }),
        }
    }
    assert!(word.len() <= 63, "evaluator limited to 63 positions");
    let mut free = BTreeSet::new();
    f.free_pos_vars(&mut Vec::new(), &mut free);
    assert!(free.is_empty(), "evaluation requires a sentence");
    eval(
        word,
        f,
        &mut std::collections::HashMap::new(),
        &mut std::collections::HashMap::new(),
    )
}

/// Compiles an MSO-on-words sentence into an NFA over the plain alphabet
/// `0..alphabet`.
///
/// # Errors
///
/// Returns a [`CompileError`] if the formula is not a sentence, rebinds a
/// variable, tests an out-of-range letter, or uses too many variables.
pub fn compile(f: &WordFormula, alphabet: usize) -> Result<Nfa, CompileError> {
    let mut free = BTreeSet::new();
    f.free_pos_vars(&mut Vec::new(), &mut free);
    if !free.is_empty() {
        return Err(CompileError::NotASentence);
    }
    if !f.has_distinct_bindings() {
        return Err(CompileError::RebindsVariable);
    }
    let mut pos = BTreeSet::new();
    f.pos_vars(&mut pos);
    let mut sets = BTreeSet::new();
    f.set_vars(&mut sets);
    let tracks: Vec<Track> = pos
        .into_iter()
        .map(Track::Pos)
        .chain(sets.into_iter().map(Track::Set))
        .collect();
    if tracks.len() > 16 {
        return Err(CompileError::TooManyTracks {
            tracks: tracks.len(),
        });
    }
    let c = Compiler {
        alphabet,
        tracks: tracks.clone(),
    };
    let expanded = c.compile(f)?;
    // Project the expanded alphabet down to Σ (all track bits are
    // "don't care" at sentence level, so merging them is sound).
    let map: Vec<usize> = (0..c.expanded()).map(|s| s >> tracks.len()).collect();
    Ok(expanded.project(alphabet, &map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use WordFormula::*;

    fn x(i: u32) -> PosVar {
        PosVar(i)
    }

    fn set(i: u32) -> PosSetVar {
        PosSetVar(i)
    }

    fn not(f: WordFormula) -> WordFormula {
        Not(Box::new(f))
    }

    fn and(a: WordFormula, b: WordFormula) -> WordFormula {
        And(Box::new(a), Box::new(b))
    }

    fn or(a: WordFormula, b: WordFormula) -> WordFormula {
        Or(Box::new(a), Box::new(b))
    }

    fn implies(a: WordFormula, b: WordFormula) -> WordFormula {
        or(not(a), b)
    }

    fn iff(a: WordFormula, b: WordFormula) -> WordFormula {
        or(and(a.clone(), b.clone()), and(not(a), not(b)))
    }

    fn exists(v: PosVar, f: WordFormula) -> WordFormula {
        Exists(v, Box::new(f))
    }

    fn forall(v: PosVar, f: WordFormula) -> WordFormula {
        Forall(v, Box::new(f))
    }

    /// Checks the compiled automaton against brute-force evaluation on all
    /// binary words up to length `max_len`.
    fn check(f: &WordFormula, max_len: usize) {
        let nfa = compile(f, 2).expect("compiles");
        for len in 0..=max_len {
            for bits in 0..(1usize << len) {
                let word: Vec<usize> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(
                    nfa.accepts(&word),
                    eval_word_formula(&word, f),
                    "formula {f:?} disagrees on {word:?}"
                );
            }
        }
    }

    #[test]
    fn contains_a_one() {
        check(&exists(x(0), Letter(x(0), 1)), 6);
    }

    #[test]
    fn all_zeros() {
        check(&forall(x(0), Letter(x(0), 0)), 6);
    }

    #[test]
    fn one_followed_by_zero() {
        // Every 1 has a successor position carrying 0.
        let f = forall(
            x(0),
            implies(
                Letter(x(0), 1),
                exists(x(1), and(Succ(x(0), x(1)), Letter(x(1), 0))),
            ),
        );
        check(&f, 6);
    }

    #[test]
    fn no_two_consecutive_ones() {
        let f = not(exists(
            x(0),
            exists(
                x(1),
                and(Succ(x(0), x(1)), and(Letter(x(0), 1), Letter(x(1), 1))),
            ),
        ));
        check(&f, 6);
    }

    #[test]
    fn order_and_equality_atoms() {
        // There are two distinct positions with the same letter 1.
        let f = exists(
            x(0),
            exists(
                x(1),
                and(Less(x(0), x(1)), and(Letter(x(0), 1), Letter(x(1), 1))),
            ),
        );
        check(&f, 6);
        // x = y via PosEq interacts correctly with quantifiers.
        let g = forall(x(0), exists(x(1), PosEq(x(0), x(1))));
        check(&g, 4);
    }

    #[test]
    fn even_length_is_mso() {
        // X = the set of even (0-based) positions: first ∈ X, membership
        // alternates along Succ, and the last position is NOT in X
        // (0-based odd last index ⇔ even length).
        let first_in = forall(
            x(0),
            implies(not(exists(x(1), Succ(x(1), x(0)))), InSet(x(0), set(0))),
        );
        let alternate = forall(
            x(2),
            forall(
                x(3),
                implies(
                    Succ(x(2), x(3)),
                    iff(InSet(x(2), set(0)), not(InSet(x(3), set(0)))),
                ),
            ),
        );
        let last_out = forall(
            x(4),
            implies(
                not(exists(x(5), Succ(x(4), x(5)))),
                not(InSet(x(4), set(0))),
            ),
        );
        let f = ExistsSet(set(0), Box::new(and(first_in, and(alternate, last_out))));
        let nfa = compile(&f, 2).expect("compiles");
        for len in 0..=7 {
            let word = vec![0usize; len];
            assert_eq!(nfa.accepts(&word), len % 2 == 0, "length {len}");
        }
        // And against brute force on mixed words.
        check(&f, 5);
    }

    #[test]
    fn compile_errors() {
        // Free variable.
        assert_eq!(
            compile(&Letter(x(0), 1), 2),
            Err(CompileError::NotASentence)
        );
        // Rebinding.
        let f = exists(x(0), exists(x(0), Letter(x(0), 1)));
        assert_eq!(compile(&f, 2), Err(CompileError::RebindsVariable));
        // Letter out of range.
        let g = exists(x(0), Letter(x(0), 9));
        assert_eq!(
            compile(&g, 2),
            Err(CompileError::LetterOutOfRange {
                letter: 9,
                alphabet: 2
            })
        );
    }

    #[test]
    fn constants() {
        check(&True, 3);
        check(&False, 3);
    }

    #[test]
    fn empty_word_semantics() {
        // ∃x true is false on the empty word; ∀x false is true on it.
        let some = exists(x(0), PosEq(x(0), x(0)));
        let nfa = compile(&some, 2).unwrap();
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[0]));
        let none = forall(x(1), False);
        let nfa2 = compile(&none, 2).unwrap();
        assert!(nfa2.accepts(&[]));
        assert!(!nfa2.accepts(&[1]));
    }
}
