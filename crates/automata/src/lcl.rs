//! Locally checkable labelings (LCLs) via counting tree automata — the
//! Appendix C.2 generalization.
//!
//! Classic LCLs \[Naor–Stockmeyer] are defined on *bounded-degree* graphs
//! by a finite list of correct neighborhoods. The paper observes that the
//! threshold-counting guards of UOP tree automata give a natural way to
//! lift LCLs to **unbounded degrees**: a correctness condition like
//! "at least one child is in the independent set" or "no child shares my
//! color" is a counting guard, and the whole problem becomes a tree
//! automaton whose states refine the output labels.
//!
//! An [`LclProblem`] packages:
//!
//! - `outputs`: the output alphabet;
//! - `states`: automaton states, each *projecting* to an output (several
//!   states per output express context, e.g. "out of the MIS, already
//!   dominated" vs "…, not yet dominated");
//! - per-state counting guards over children states;
//! - which states are allowed at the root.
//!
//! From a problem one gets, via [`LclProblem::solution_automaton`], a
//! [`TreeAutomaton`] over trees *labeled by claimed outputs* that accepts
//! exactly the valid solutions — pluggable straight into the Theorem 2.2
//! certification scheme: a solution to an unbounded-degree LCL on a tree
//! is certifiable with O(1)-bit certificates.

use crate::trees::{CountAtom, Guard, LabeledTree, TreeAutomaton};

/// An LCL problem on rooted unbounded-degree trees.
#[derive(Debug, Clone)]
pub struct LclProblem {
    /// Number of output labels.
    pub num_outputs: usize,
    /// For each state: the output it projects to.
    pub state_output: Vec<usize>,
    /// For each state: the counting guard over children states.
    pub guards: Vec<Guard>,
    /// Which states may appear at the root.
    pub root_allowed: Vec<bool>,
}

impl LclProblem {
    /// Number of automaton states.
    pub fn num_states(&self) -> usize {
        self.state_output.len()
    }

    /// Validates internal shapes.
    pub fn is_well_formed(&self) -> bool {
        let q = self.num_states();
        self.guards.len() == q
            && self.root_allowed.len() == q
            && self.state_output.iter().all(|&o| o < self.num_outputs)
            && (1..=64).contains(&q)
    }

    /// The tree automaton over *output-labeled* trees accepting exactly
    /// the valid solutions: state `s` is permitted at a node labeled `o`
    /// only when `state_output[s] == o` and `s`'s guard holds on the
    /// children states.
    ///
    /// # Panics
    ///
    /// Panics if the problem is not well-formed.
    pub fn solution_automaton(&self) -> TreeAutomaton {
        assert!(self.is_well_formed(), "ill-formed LCL problem");
        let q = self.num_states();
        let guards = (0..q)
            .map(|s| {
                (0..self.num_outputs)
                    .map(|o| {
                        if self.state_output[s] == o {
                            self.guards[s].clone()
                        } else {
                            Guard::False
                        }
                    })
                    .collect()
            })
            .collect();
        TreeAutomaton::new(q, self.num_outputs, guards, self.root_allowed.clone())
            .expect("well-formed problem yields a well-formed automaton")
    }

    /// Whether `outputs` is a valid solution on the (structure of) `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` has the wrong length or an out-of-range label.
    pub fn is_valid_solution(&self, tree: &LabeledTree, outputs: &[usize]) -> bool {
        let labeled = LabeledTree::new(tree.tree().clone(), outputs.to_vec(), self.num_outputs)
            .expect("outputs must label every node");
        self.solution_automaton().accepts(&labeled)
    }

    /// Computes a valid solution on the tree, if one exists: run the
    /// automaton over the *unknown* labeling by treating the output as
    /// part of the guess — concretely, build an automaton over unlabeled
    /// trees whose runs carry the output in the state, and project.
    pub fn solve(&self, tree: &LabeledTree) -> Option<Vec<usize>> {
        assert!(self.is_well_formed(), "ill-formed LCL problem");
        // Same states, single input label, same guards: the run guesses
        // the state (hence the output).
        let q = self.num_states();
        let unlabeled_guards = (0..q).map(|s| vec![self.guards[s].clone()]).collect();
        let solver = TreeAutomaton::new(q, 1, unlabeled_guards, self.root_allowed.clone())
            .expect("well-formed");
        let plain = LabeledTree::unlabeled(tree.tree().clone());
        let run = solver.accepting_run(&plain)?;
        Some(run.into_iter().map(|s| self.state_output[s]).collect())
    }
}

fn mask(states: &[usize]) -> u64 {
    states.iter().fold(0u64, |m, &q| m | (1u64 << q))
}

/// Maximal independent set as an LCL: outputs {0 = out, 1 = in}; states
/// In, OutSat (some child in the set), OutUnsat (dominated only by its
/// parent — which must then be In).
pub fn maximal_independent_set() -> LclProblem {
    let in_ = 0usize;
    let _out_sat = 1usize; // state index 1, for reference.
    let out_unsat = 2usize;
    LclProblem {
        num_outputs: 2,
        state_output: vec![1, 0, 0],
        guards: vec![
            // In: no In child (independence); OutUnsat children are fine —
            // this node dominates them.
            Guard::AtMost(CountAtom {
                states: mask(&[in_]),
                count: 0,
            }),
            // OutSat: at least one In child, and no OutUnsat child (an
            // Out parent cannot dominate them).
            Guard::And(
                Box::new(Guard::AtLeast(CountAtom {
                    states: mask(&[in_]),
                    count: 1,
                })),
                Box::new(Guard::AtMost(CountAtom {
                    states: mask(&[out_unsat]),
                    count: 0,
                })),
            ),
            // OutUnsat: no In child and no OutUnsat child; needs its
            // parent In — so it may not be the root.
            Guard::And(
                Box::new(Guard::AtMost(CountAtom {
                    states: mask(&[in_]),
                    count: 0,
                })),
                Box::new(Guard::AtMost(CountAtom {
                    states: mask(&[out_unsat]),
                    count: 0,
                })),
            ),
        ],
        root_allowed: vec![true, true, false],
    }
}

/// Proper 2-coloring of the tree (always solvable): outputs/states
/// {color 0, color 1}; no child shares the node's color.
pub fn proper_two_coloring() -> LclProblem {
    LclProblem {
        num_outputs: 2,
        state_output: vec![0, 1],
        guards: vec![
            Guard::AtMost(CountAtom {
                states: mask(&[0]),
                count: 0,
            }),
            Guard::AtMost(CountAtom {
                states: mask(&[1]),
                count: 0,
            }),
        ],
        root_allowed: vec![true, true],
    }
}

/// "Exact domatic pair": partition into two dominating sets is too hard
/// for trees in general; instead provide *perfect matching as an LCL*
/// (outputs: matched-to-parent?), reusing the Theorem 2.2 machinery from
/// a different angle: outputs {0 = matched to parent, 1 = matched to a
/// child}; states track whether the node consumed a child.
pub fn perfect_matching_lcl() -> LclProblem {
    let up = 0usize; // matched to its parent.
    let _down = 1usize; // state index 1, for reference.
    LclProblem {
        num_outputs: 2,
        state_output: vec![0, 1],
        guards: vec![
            // Up: all children are Down (matched within their subtrees).
            Guard::AtMost(CountAtom {
                states: mask(&[up]),
                count: 0,
            }),
            // Down: exactly one Up child.
            Guard::exactly(mask(&[up]), 1),
        ],
        // The root has no parent: it must be matched to a child.
        root_allowed: vec![false, true],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::{generators, Graph, NodeId, RootedTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(g: &Graph, root: usize) -> LabeledTree {
        LabeledTree::unlabeled(RootedTree::from_tree(g, NodeId(root)).unwrap())
    }

    /// Ground truth MIS validity: independent + dominating.
    fn is_mis(g: &Graph, in_set: &[bool]) -> bool {
        for (u, v) in g.edges() {
            if in_set[u.0] && in_set[v.0] {
                return false;
            }
        }
        g.nodes()
            .all(|v| in_set[v.0] || g.neighbors(v).iter().any(|&u| in_set[u.0]))
    }

    #[test]
    fn mis_solve_produces_valid_sets() {
        let mut rng = StdRng::seed_from_u64(81);
        let problem = maximal_independent_set();
        for _ in 0..25 {
            let n = 1 + rand::RngExt::random_range(&mut rng, 0..14usize);
            let g = generators::random_tree(n, &mut rng);
            let t = tree_of(&g, 0);
            let sol = problem.solve(&t).expect("trees always admit an MIS");
            assert!(problem.is_valid_solution(&t, &sol));
            let in_set: Vec<bool> = sol.iter().map(|&o| o == 1).collect();
            assert!(is_mis(&g, &in_set), "not an MIS: {sol:?} on {g:?}");
        }
    }

    #[test]
    fn mis_rejects_invalid_labelings() {
        let problem = maximal_independent_set();
        let g = generators::path(4);
        let t = tree_of(&g, 0);
        // Adjacent ins.
        assert!(!problem.is_valid_solution(&t, &[1, 1, 0, 1]));
        // Undominated out (vertex 3 out, neighbor 2 out).
        assert!(!problem.is_valid_solution(&t, &[1, 0, 0, 0]));
        // A valid one: 1 0 1 0 (ends dominated).
        assert!(problem.is_valid_solution(&t, &[1, 0, 1, 0]));
    }

    #[test]
    fn two_coloring_always_solvable_and_proper() {
        let mut rng = StdRng::seed_from_u64(82);
        let problem = proper_two_coloring();
        for _ in 0..15 {
            let n = 1 + rand::RngExt::random_range(&mut rng, 0..12usize);
            let g = generators::random_tree(n, &mut rng);
            let t = tree_of(&g, 0);
            let sol = problem.solve(&t).expect("trees are bipartite");
            for (u, v) in g.edges() {
                assert_ne!(sol[u.0], sol[v.0]);
            }
        }
    }

    #[test]
    fn perfect_matching_lcl_matches_automaton() {
        let problem = perfect_matching_lcl();
        for n in 1..=9 {
            let g = generators::path(n);
            let t = tree_of(&g, 0);
            let solvable = problem.solve(&t).is_some();
            assert_eq!(solvable, n % 2 == 0, "P_{n}");
            if let Some(sol) = problem.solve(&t) {
                assert!(problem.is_valid_solution(&t, &sol));
                // Decode the matching: `up` nodes pair with their parents.
                let tree = t.tree();
                let mut matched = vec![false; n];
                for v in tree.postorder() {
                    if sol[v.0] == 0 {
                        let p = tree.parent(v).expect("root is never `up`");
                        assert!(!matched[v.0] && !matched[p.0], "overlap");
                        matched[v.0] = true;
                        matched[p.0] = true;
                    }
                }
                assert!(matched.iter().all(|&m| m), "not perfect");
            }
        }
    }

    #[test]
    fn solution_automaton_certifies_via_theorem_2_2() {
        // The full loop promised by Appendix C.2: distribute the solution
        // as node inputs, certify its validity with the Theorem 2.2
        // scheme (automaton = solution_automaton).
        let problem = maximal_independent_set();
        let automaton = problem.solution_automaton();
        let g = generators::spider(3, 2);
        let t = tree_of(&g, 0);
        let sol = problem.solve(&t).expect("solvable");
        let labeled = LabeledTree::new(t.tree().clone(), sol.clone(), 2).unwrap();
        assert!(automaton.accepts(&labeled));
        let run = automaton.accepting_run(&labeled).unwrap();
        assert!(automaton.is_accepting_run(&labeled, &run));
        // Corrupt the solution: some node flips out of the set.
        let mut bad = sol;
        let flip = bad.iter().position(|&o| o == 1).unwrap();
        bad[flip] = 0;
        let relabeled = LabeledTree::new(t.tree().clone(), bad, 2).unwrap();
        assert!(!automaton.accepts(&relabeled));
    }

    #[test]
    fn ill_formed_problems_detected() {
        let mut p = proper_two_coloring();
        p.state_output[0] = 9;
        assert!(!p.is_well_formed());
        let mut q = proper_two_coloring();
        q.guards.pop();
        assert!(!q.is_well_formed());
    }
}
