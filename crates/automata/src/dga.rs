//! Distributed graph automata (Appendix A.3) — the Reiter \[43] model the
//! paper contrasts with local certification.
//!
//! Nodes are **anonymous finite-state machines** updated in synchronous
//! rounds for a constant number of rounds; a transition reads the node's
//! state and the **set** (no counting!) of its neighbors' states; at the
//! end, the *set* of states present in the graph is looked up in a family
//! of accepting sets.
//!
//! The differences the paper lists against local certification are all
//! visible in this API: no identifiers, finite state (vs. unbounded local
//! computation), an arbitrary global acceptance function over the state
//! set (vs. conjunction of local verdicts), constant rounds (vs. one),
//! and — in the full model — alternating provers, of which we implement
//! the deterministic core (enough to exhibit the contrasts; the
//! alternation is a game on top of this semantics).

use locert_graph::Graph;
#[cfg(test)]
use locert_graph::NodeId;
use std::collections::BTreeSet;

/// A deterministic distributed graph automaton.
#[derive(Debug, Clone)]
pub struct GraphAutomaton {
    /// Number of states.
    pub num_states: usize,
    /// Initial state per input label (`init[label]`); anonymous nodes all
    /// start from their label's state.
    pub init: Vec<usize>,
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// `transition(state, neighbor-state set) -> state`.
    pub transition: fn(usize, &BTreeSet<usize>) -> usize,
    /// Accepting families: the run accepts iff the final set of states
    /// present in the graph is one of these.
    pub accepting_sets: Vec<BTreeSet<usize>>,
}

impl GraphAutomaton {
    /// Runs the automaton on `g` with per-node input labels, returning
    /// the final state of every node.
    ///
    /// # Panics
    ///
    /// Panics if a label has no initial state or a transition leaves the
    /// state range.
    pub fn run(&self, g: &Graph, labels: &[usize]) -> Vec<usize> {
        assert_eq!(labels.len(), g.num_nodes(), "one label per node");
        let mut states: Vec<usize> = labels.iter().map(|&l| self.init[l]).collect();
        assert!(states.iter().all(|&q| q < self.num_states));
        for _ in 0..self.rounds {
            let next: Vec<usize> = g
                .nodes()
                .map(|v| {
                    let nbr: BTreeSet<usize> =
                        g.neighbors(v).iter().map(|&u| states[u.0]).collect();
                    let q = (self.transition)(states[v.0], &nbr);
                    assert!(q < self.num_states, "transition out of range");
                    q
                })
                .collect();
            states = next;
        }
        states
    }

    /// Whether the automaton accepts `(g, labels)`.
    pub fn accepts(&self, g: &Graph, labels: &[usize]) -> bool {
        let states = self.run(g, labels);
        let present: BTreeSet<usize> = states.into_iter().collect();
        self.accepting_sets.contains(&present)
    }
}

/// "No vertex is isolated": one round; a node seeing an empty neighbor
/// set moves to a flag state; accept iff the flag is absent.
///
/// (With anonymity and set-based views this is about the strongest
/// degree-like property available — counting is impossible, which is
/// exactly why the paper's certification model is stronger locally.)
pub fn no_isolated_vertex() -> GraphAutomaton {
    fn step(q: usize, nbrs: &BTreeSet<usize>) -> usize {
        if q == 0 && nbrs.is_empty() {
            1
        } else {
            q
        }
    }
    GraphAutomaton {
        num_states: 2,
        init: vec![0],
        rounds: 1,
        transition: step,
        accepting_sets: vec![BTreeSet::from([0])],
    }
}

/// "Some `a`-labeled vertex is within distance `r` of a `b`-labeled one":
/// `b`-ness floods for `r` rounds; accept iff a *met* state appears.
/// Labels: 0 = plain, 1 = `a`, 2 = `b`.
pub fn labels_within_distance(r: usize) -> GraphAutomaton {
    // States: 0 plain, 1 a (not yet met), 2 b-flood, 3 met.
    fn step(q: usize, nbrs: &BTreeSet<usize>) -> usize {
        match q {
            1 if nbrs.contains(&2) || nbrs.contains(&3) => 3,
            0 if nbrs.contains(&2) => 2,
            _ => q,
        }
    }
    GraphAutomaton {
        num_states: 4,
        init: vec![0, 1, 2],
        rounds: r,
        transition: step,
        // Accept any final set containing the met state.
        accepting_sets: all_sets_containing(4, 3),
    }
}

fn all_sets_containing(num_states: usize, must: usize) -> Vec<BTreeSet<usize>> {
    let mut out = Vec::new();
    for mask in 0..(1u32 << num_states) {
        if mask & (1 << must) == 0 {
            continue;
        }
        out.push((0..num_states).filter(|&q| mask & (1 << q) != 0).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::generators;
    use locert_graph::traversal;

    #[test]
    fn isolated_vertex_detected() {
        let a = no_isolated_vertex();
        let g = generators::path(4);
        assert!(a.accepts(&g, &[0; 4]));
        let lonely = Graph::empty(3);
        assert!(!a.accepts(&lonely, &[0; 3]));
        let mixed = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(!a.accepts(&mixed, &[0; 3]));
    }

    #[test]
    fn flooding_measures_distance() {
        // Path with `a` at one end and `b` at the other: met iff
        // rounds >= distance.
        let n = 6;
        let g = generators::path(n);
        let mut labels = vec![0usize; n];
        labels[0] = 1; // a
        labels[n - 1] = 2; // b
        let d = traversal::bfs_distances(&g, NodeId(n - 1))[0].unwrap();
        for r in 1..=n {
            let a = labels_within_distance(r);
            assert_eq!(a.accepts(&g, &labels), r >= d, "r = {r}, d = {d}");
        }
    }

    #[test]
    fn anonymity_cannot_count() {
        // The set-based view provably conflates stars of different sizes:
        // the full runs of K_{1,2} and K_{1,5} produce identical state
        // sets under ANY 1-round automaton (same initial states, and the
        // hub sees the same *set* either way). Demonstrate with the
        // isolated-vertex automaton.
        let a = no_isolated_vertex();
        let s2 = generators::star(3);
        let s5 = generators::star(6);
        let run2: BTreeSet<usize> = a.run(&s2, &[0; 3]).into_iter().collect();
        let run5: BTreeSet<usize> = a.run(&s5, &[0; 6]).into_iter().collect();
        assert_eq!(run2, run5);
    }
}
