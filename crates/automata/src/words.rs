//! Finite word automata: DFAs, NFAs, and the boolean/closure toolbox.
//!
//! Words are slices of symbols `&[usize]` over an alphabet `0..alphabet`.
//! The toolbox implements everything the Büchi–Elgot–Trakhtenbrot compiler
//! ([`crate::mso_words`]) needs: product, union, complement, subset-
//! construction determinization, Moore minimization, emptiness, and
//! language equivalence.

use std::collections::{BTreeSet, HashMap, VecDeque};

/// A deterministic finite automaton.
///
/// # Example
///
/// ```
/// use locert_automata::Dfa;
///
/// // Even number of 1s over {0, 1}.
/// let dfa = Dfa::new(2, 2, 0, vec![true, false], vec![
///     vec![0, 1],
///     vec![1, 0],
/// ]).unwrap();
/// assert!(dfa.accepts(&[1, 0, 1]));
/// assert!(!dfa.accepts(&[1, 0, 0]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    num_states: usize,
    alphabet: usize,
    start: usize,
    accepting: Vec<bool>,
    /// `transitions[state][symbol] = next state`.
    transitions: Vec<Vec<usize>>,
}

impl Dfa {
    /// Builds a DFA, validating shapes and ranges.
    ///
    /// Returns `None` if the transition table is ragged, a target state is
    /// out of range, `start` is out of range, or `accepting` has the wrong
    /// length.
    pub fn new(
        num_states: usize,
        alphabet: usize,
        start: usize,
        accepting: Vec<bool>,
        transitions: Vec<Vec<usize>>,
    ) -> Option<Self> {
        if start >= num_states || accepting.len() != num_states || transitions.len() != num_states {
            return None;
        }
        for row in &transitions {
            if row.len() != alphabet || row.iter().any(|&t| t >= num_states) {
                return None;
            }
        }
        Some(Dfa {
            num_states,
            alphabet,
            start,
            accepting,
            transitions,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The successor of `state` on `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `symbol` is out of range.
    pub fn step(&self, state: usize, symbol: usize) -> usize {
        self.transitions[state][symbol]
    }

    /// The state reached from the start on `word`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of range.
    pub fn run(&self, word: &[usize]) -> usize {
        word.iter().fold(self.start, |q, &a| self.step(q, a))
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[usize]) -> bool {
        self.accepting[self.run(word)]
    }

    /// The complement DFA (accepts exactly the rejected words).
    pub fn complement(&self) -> Dfa {
        let mut c = self.clone();
        for a in &mut c.accepting {
            *a = !*a;
        }
        c
    }

    /// Product DFA accepting the intersection of the two languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Product DFA accepting the union of the two languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let n = self.num_states * other.num_states;
        let code = |a: usize, b: usize| a * other.num_states + b;
        let mut transitions = vec![vec![0; self.alphabet]; n];
        let mut accepting = vec![false; n];
        for a in 0..self.num_states {
            for b in 0..other.num_states {
                accepting[code(a, b)] = combine(self.accepting[a], other.accepting[b]);
                for s in 0..self.alphabet {
                    transitions[code(a, b)][s] =
                        code(self.transitions[a][s], other.transitions[b][s]);
                }
            }
        }
        Dfa {
            num_states: n,
            alphabet: self.alphabet,
            start: code(self.start, other.start),
            accepting,
            transitions,
        }
    }

    /// Whether the language is empty (no reachable accepting state).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start] = true;
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                return false;
            }
            for s in 0..self.alphabet {
                let t = self.transitions[q][s];
                if !seen[t] {
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if any.
    pub fn shortest_accepted(&self) -> Option<Vec<usize>> {
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; self.num_states];
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start] = true;
        let mut hit = None;
        'bfs: while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                hit = Some(q);
                break 'bfs;
            }
            for s in 0..self.alphabet {
                let t = self.transitions[q][s];
                if !seen[t] {
                    seen[t] = true;
                    pred[t] = Some((q, s));
                    queue.push_back(t);
                }
            }
        }
        let mut q = hit?;
        let mut word = Vec::new();
        while let Some((p, s)) = pred[q] {
            word.push(s);
            q = p;
        }
        word.reverse();
        Some(word)
    }

    /// Whether the two DFAs accept the same language (via symmetric
    /// difference emptiness).
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let a_not_b = self.intersect(&other.complement());
        let b_not_a = other.intersect(&self.complement());
        a_not_b.is_empty() && b_not_a.is_empty()
    }

    /// Moore minimization: merges indistinguishable states and drops
    /// unreachable ones.
    pub fn minimize(&self) -> Dfa {
        // Restrict to reachable states first.
        let mut reach = vec![false; self.num_states];
        let mut queue = VecDeque::from([self.start]);
        reach[self.start] = true;
        while let Some(q) = queue.pop_front() {
            for s in 0..self.alphabet {
                let t = self.transitions[q][s];
                if !reach[t] {
                    reach[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let reachable: Vec<usize> = (0..self.num_states).filter(|&q| reach[q]).collect();
        // Initial partition by acceptance; refine until stable.
        let mut class = vec![usize::MAX; self.num_states];
        for &q in &reachable {
            class[q] = usize::from(self.accepting[q]);
        }
        loop {
            // Signature: (class, classes of successors).
            let mut sig_to_new: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut new_class = vec![usize::MAX; self.num_states];
            for &q in &reachable {
                let sig = (
                    class[q],
                    (0..self.alphabet)
                        .map(|s| class[self.transitions[q][s]])
                        .collect::<Vec<_>>(),
                );
                let next = sig_to_new.len();
                let c = *sig_to_new.entry(sig).or_insert(next);
                new_class[q] = c;
            }
            let stable = reachable.iter().all(|&q| new_class[q] == class[q])
                || sig_to_new.len()
                    == reachable
                        .iter()
                        .map(|&q| class[q])
                        .collect::<BTreeSet<_>>()
                        .len();
            class = new_class;
            if stable {
                break;
            }
        }
        let num_classes = reachable
            .iter()
            .map(|&q| class[q])
            .collect::<BTreeSet<_>>()
            .len();
        let mut transitions = vec![vec![0; self.alphabet]; num_classes];
        let mut accepting = vec![false; num_classes];
        for &q in &reachable {
            let c = class[q];
            accepting[c] = self.accepting[q];
            for s in 0..self.alphabet {
                transitions[c][s] = class[self.transitions[q][s]];
            }
        }
        Dfa {
            num_states: num_classes,
            alphabet: self.alphabet,
            start: class[self.start],
            accepting,
            transitions,
        }
    }
}

/// A nondeterministic finite automaton (multiple start states, no
/// ε-transitions — the MSO compiler never needs them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    num_states: usize,
    alphabet: usize,
    start: BTreeSet<usize>,
    accepting: Vec<bool>,
    /// `transitions[state][symbol] = set of successors`.
    transitions: Vec<Vec<BTreeSet<usize>>>,
}

impl Nfa {
    /// Builds an NFA, validating shapes and ranges (see [`Dfa::new`]).
    pub fn new(
        num_states: usize,
        alphabet: usize,
        start: BTreeSet<usize>,
        accepting: Vec<bool>,
        transitions: Vec<Vec<BTreeSet<usize>>>,
    ) -> Option<Self> {
        if accepting.len() != num_states
            || transitions.len() != num_states
            || start.iter().any(|&q| q >= num_states)
        {
            return None;
        }
        for row in &transitions {
            if row.len() != alphabet || row.iter().any(|set| set.iter().any(|&t| t >= num_states)) {
                return None;
            }
        }
        Some(Nfa {
            num_states,
            alphabet,
            start,
            accepting,
            transitions,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The successor set of `state` on `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `symbol` is out of range.
    pub fn successors(&self, state: usize, symbol: usize) -> &BTreeSet<usize> {
        &self.transitions[state][symbol]
    }

    /// The start-state set.
    pub fn start_states(&self) -> &BTreeSet<usize> {
        &self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// Whether the NFA accepts `word`.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut current = self.start.clone();
        for &a in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                next.extend(self.transitions[q][a].iter().copied());
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// Subset-construction determinization (reachable subsets only).
    pub fn determinize(&self) -> Dfa {
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = vec![self.start.clone()];
        index.insert(self.start.clone(), 0);
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < subsets.len() {
            let cur = subsets[i].clone();
            let mut row = Vec::with_capacity(self.alphabet);
            for a in 0..self.alphabet {
                let mut next = BTreeSet::new();
                for &q in &cur {
                    next.extend(self.transitions[q][a].iter().copied());
                }
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    subsets.push(next);
                    subsets.len() - 1
                });
                row.push(id);
            }
            transitions.push(row);
            i += 1;
        }
        let accepting = subsets
            .iter()
            .map(|s| s.iter().any(|&q| self.accepting[q]))
            .collect();
        Dfa {
            num_states: subsets.len(),
            alphabet: self.alphabet,
            start: 0,
            accepting,
            transitions,
        }
    }

    /// Union of two NFAs (disjoint juxtaposition).
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn union(&self, other: &Nfa) -> Nfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let off = self.num_states;
        let mut transitions = self.transitions.clone();
        for row in &other.transitions {
            transitions.push(
                row.iter()
                    .map(|set| set.iter().map(|&q| q + off).collect())
                    .collect(),
            );
        }
        let mut start = self.start.clone();
        start.extend(other.start.iter().map(|&q| q + off));
        let mut accepting = self.accepting.clone();
        accepting.extend(other.accepting.iter().copied());
        Nfa {
            num_states: self.num_states + other.num_states,
            alphabet: self.alphabet,
            start,
            accepting,
            transitions,
        }
    }

    /// Product NFA for the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let code = |a: usize, b: usize| a * other.num_states + b;
        let n = self.num_states * other.num_states;
        let mut transitions = vec![vec![BTreeSet::new(); self.alphabet]; n];
        let mut accepting = vec![false; n];
        for a in 0..self.num_states {
            for b in 0..other.num_states {
                accepting[code(a, b)] = self.accepting[a] && other.accepting[b];
                for s in 0..self.alphabet {
                    let mut set = BTreeSet::new();
                    for &ta in &self.transitions[a][s] {
                        for &tb in &other.transitions[b][s] {
                            set.insert(code(ta, tb));
                        }
                    }
                    transitions[code(a, b)][s] = set;
                }
            }
        }
        let start = self
            .start
            .iter()
            .flat_map(|&a| other.start.iter().map(move |&b| code(a, b)))
            .collect();
        Nfa {
            num_states: n,
            alphabet: self.alphabet,
            start,
            accepting,
            transitions,
        }
    }

    /// Complement via determinization.
    pub fn complement(&self) -> Nfa {
        Nfa::from_dfa(&self.determinize().complement())
    }

    /// Views a DFA as an NFA.
    pub fn from_dfa(d: &Dfa) -> Nfa {
        Nfa {
            num_states: d.num_states,
            alphabet: d.alphabet,
            start: BTreeSet::from([d.start]),
            accepting: d.accepting.clone(),
            transitions: d
                .transitions
                .iter()
                .map(|row| row.iter().map(|&t| BTreeSet::from([t])).collect())
                .collect(),
        }
    }

    /// Relabels the *input*: the result reads symbol `s` as `map[s]`
    /// (`transitions'[q][s] = transitions[q][map[s]]`), producing an NFA
    /// over `new_alphabet = map.len()` symbols. Dual of [`Nfa::project`]:
    /// `project` merges symbols of the language, `pullback` duplicates
    /// behavior across symbols of a new alphabet.
    ///
    /// # Panics
    ///
    /// Panics if a map target is out of range.
    pub fn pullback(&self, map: &[usize]) -> Nfa {
        assert!(
            map.iter().all(|&m| m < self.alphabet),
            "pullback source symbol out of range"
        );
        let transitions = (0..self.num_states)
            .map(|q| {
                map.iter()
                    .map(|&m| self.transitions[q][m].clone())
                    .collect()
            })
            .collect();
        Nfa {
            num_states: self.num_states,
            alphabet: map.len(),
            start: self.start.clone(),
            accepting: self.accepting.clone(),
            transitions,
        }
    }

    /// Projects each symbol through `map` (`map[symbol]` = new symbol),
    /// producing an NFA over `new_alphabet`. Used by the MSO compiler to
    /// erase a variable track (several old symbols map to one new symbol,
    /// making the result genuinely nondeterministic).
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != alphabet` or a target symbol is out of
    /// range.
    pub fn project(&self, new_alphabet: usize, map: &[usize]) -> Nfa {
        assert_eq!(map.len(), self.alphabet, "projection map length mismatch");
        assert!(
            map.iter().all(|&m| m < new_alphabet),
            "projection target out of range"
        );
        let mut transitions = vec![vec![BTreeSet::new(); new_alphabet]; self.num_states];
        for q in 0..self.num_states {
            for (old, &new) in map.iter().enumerate() {
                let targets: Vec<usize> = self.transitions[q][old].iter().copied().collect();
                transitions[q][new].extend(targets);
            }
        }
        Nfa {
            num_states: self.num_states,
            alphabet: new_alphabet,
            start: self.start.clone(),
            accepting: self.accepting.clone(),
            transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over {0,1} accepting words with an even number of 1s.
    fn even_ones() -> Dfa {
        Dfa::new(2, 2, 0, vec![true, false], vec![vec![0, 1], vec![1, 0]]).unwrap()
    }

    /// DFA over {0,1} accepting words ending in 1.
    fn ends_in_one() -> Dfa {
        Dfa::new(2, 2, 0, vec![false, true], vec![vec![0, 1], vec![0, 1]]).unwrap()
    }

    #[test]
    fn dfa_validation() {
        assert!(Dfa::new(1, 1, 1, vec![true], vec![vec![0]]).is_none());
        assert!(Dfa::new(1, 1, 0, vec![], vec![vec![0]]).is_none());
        assert!(Dfa::new(1, 2, 0, vec![true], vec![vec![0]]).is_none());
        assert!(Dfa::new(1, 1, 0, vec![true], vec![vec![5]]).is_none());
    }

    #[test]
    fn dfa_run_and_accept() {
        let d = even_ones();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[1, 1]));
        assert!(!d.accepts(&[1]));
        assert_eq!(d.run(&[1, 0, 1, 1]), 1);
    }

    #[test]
    fn complement_flips() {
        let d = even_ones().complement();
        assert!(!d.accepts(&[]));
        assert!(d.accepts(&[1]));
    }

    #[test]
    fn intersection_and_union() {
        let both = even_ones().intersect(&ends_in_one());
        assert!(both.accepts(&[1, 1]));
        assert!(!both.accepts(&[1]));
        assert!(!both.accepts(&[1, 1, 0]));
        let either = even_ones().union(&ends_in_one());
        assert!(either.accepts(&[1]));
        assert!(either.accepts(&[0, 0]));
        assert!(!either.accepts(&[1, 0]));
    }

    #[test]
    fn emptiness_and_witness() {
        let d = even_ones().intersect(&even_ones().complement());
        assert!(d.is_empty());
        assert_eq!(d.shortest_accepted(), None);
        let w = ends_in_one().shortest_accepted().unwrap();
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn equivalence() {
        let a = even_ones();
        let doubled = a.intersect(&a); // same language, more states.
        assert!(a.equivalent(&doubled));
        assert!(!a.equivalent(&ends_in_one()));
    }

    #[test]
    fn minimize_collapses_product() {
        let doubled = even_ones().intersect(&even_ones());
        assert_eq!(doubled.num_states(), 4);
        let m = doubled.minimize();
        assert_eq!(m.num_states(), 2);
        assert!(m.equivalent(&even_ones()));
    }

    #[test]
    fn minimize_drops_unreachable() {
        // State 2 is unreachable.
        let d = Dfa::new(
            3,
            1,
            0,
            vec![false, true, true],
            vec![vec![1], vec![0], vec![2]],
        )
        .unwrap();
        let m = d.minimize();
        assert_eq!(m.num_states(), 2);
        assert!(m.accepts(&[0]));
        assert!(!m.accepts(&[0, 0]));
    }

    #[test]
    fn nfa_accepts_and_determinizes() {
        // NFA: guess the position of a 1 that is third from the end.
        let mut t = vec![vec![BTreeSet::new(); 2]; 4];
        t[0][0] = BTreeSet::from([0]);
        t[0][1] = BTreeSet::from([0, 1]);
        t[1][0] = BTreeSet::from([2]);
        t[1][1] = BTreeSet::from([2]);
        t[2][0] = BTreeSet::from([3]);
        t[2][1] = BTreeSet::from([3]);
        let nfa = Nfa::new(
            4,
            2,
            BTreeSet::from([0]),
            vec![false, false, false, true],
            t,
        )
        .unwrap();
        assert!(nfa.accepts(&[1, 0, 0]));
        assert!(nfa.accepts(&[0, 1, 1, 1]));
        assert!(!nfa.accepts(&[1, 0, 0, 0]));
        let dfa = nfa.determinize();
        for w in [
            vec![],
            vec![1],
            vec![1, 0, 0],
            vec![0, 1, 0, 1],
            vec![1, 1, 1],
            vec![0, 0, 1, 0, 0],
        ] {
            assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn nfa_union_intersect_complement() {
        let a = Nfa::from_dfa(&even_ones());
        let b = Nfa::from_dfa(&ends_in_one());
        let u = a.union(&b);
        assert!(u.accepts(&[1]));
        assert!(u.accepts(&[0]));
        assert!(!u.accepts(&[1, 0]));
        let i = a.intersect(&b);
        assert!(i.accepts(&[1, 1]));
        assert!(!i.accepts(&[1]));
        let c = a.complement();
        assert!(c.accepts(&[1]));
        assert!(!c.accepts(&[1, 1]));
    }

    #[test]
    fn projection_merges_symbols() {
        // Over {0,1,2}: accept words containing symbol 2; project 2 onto 0.
        let mut t = vec![vec![BTreeSet::new(); 3]; 2];
        t[0][0] = BTreeSet::from([0]);
        t[0][1] = BTreeSet::from([0]);
        t[0][2] = BTreeSet::from([1]);
        t[1][0] = BTreeSet::from([1]);
        t[1][1] = BTreeSet::from([1]);
        t[1][2] = BTreeSet::from([1]);
        let nfa = Nfa::new(2, 3, BTreeSet::from([0]), vec![false, true], t).unwrap();
        let proj = nfa.project(2, &[0, 1, 0]);
        // Now a word of 0s *may* have contained a 2: nondeterministic accept.
        assert!(proj.accepts(&[0]));
        assert!(proj.accepts(&[0, 1, 0]));
        assert!(!proj.accepts(&[1, 1]));
        assert!(!proj.accepts(&[]));
    }
}
