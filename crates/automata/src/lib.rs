//! Automata substrate for MSO certification (Section 4 of the paper).
//!
//! Two automata families power Theorem 2.2:
//!
//! - **Word automata** ([`words`]) with the classical
//!   Büchi–Elgot–Trakhtenbrot compiler from MSO-on-words to NFAs
//!   ([`mso_words`]): the paper's warm-up, and the engine behind the
//!   state-labeling certification of MSO properties on *path* graphs;
//! - **Unranked–unordered tree automata with threshold counting guards**
//!   ([`trees`]) — the paper's *unary ordering Presburger* (UOP) tree
//!   automata \[Boneva–Talbot]: transitions inspect, for each state `q`,
//!   how many children carry `q`, compared against constants. These
//!   capture exactly MSO on the unordered unranked rooted trees the paper
//!   certifies, and their runs are the constant-size certificates of
//!   Theorem 2.2.
//!
//! A library of ready-made property automata lives in [`library`], each
//! cross-validated against ground truth (direct combinatorial checks and
//! the brute-force MSO evaluator of `locert-logic`). Two discussion
//! appendices of the paper are also implemented: the LCL generalization
//! to unbounded degrees via counting guards ([`lcl`], Appendix C.2) and
//! Reiter's distributed graph automata ([`dga`], Appendix A.3).

#![allow(clippy::needless_range_loop)]

pub mod dga;
pub mod lcl;
pub mod library;
pub mod mso_words;
pub mod synthesis;
pub mod trees;
pub mod words;

pub use trees::{CountAtom, Guard, LabeledTree, TreeAutomaton};
pub use words::{Dfa, Nfa};
