//! Unranked–unordered tree automata with threshold counting guards — the
//! paper's *unary ordering Presburger* (UOP) tree automata \[7].
//!
//! A [`TreeAutomaton`] runs bottom-up over a [`LabeledTree`]: a run assigns
//! a state to every node; the assignment is locally correct at a node with
//! label `l` and state `q` when the guard `δ(q, l)` is satisfied by the
//! *multiset of children states* — and guards can only compare, for a set
//! of states `S`, the number of children carrying a state of `S` against
//! constants ([`Guard`]). The tree is accepted when some run puts an
//! accepting state at the root. By Boneva–Talbot (Proposition 8 of \[7],
//! quoted as the engine of Theorem 2.2), these automata recognize exactly
//! the MSO-definable sets of unordered unranked labeled rooted trees.
//!
//! The run itself is the certificate in the Theorem 2.2 scheme: each node
//! can check its own guard by looking at its children's states.
//!
//! Counting is *capped*: every constant in a guard is at most
//! [`TreeAutomaton::cap`], and count vectors saturate there — sound
//! because `Σ min(xᵢ, C) ≥ c ⇔ Σ xᵢ ≥ c` whenever `c ≤ C`.

use locert_graph::{NodeId, RootedTree};
use std::collections::HashMap;

/// One threshold atom: "the number of children whose state lies in
/// `states` (a bitmask) compares against `count`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountAtom {
    /// Bitmask of states counted together.
    pub states: u64,
    /// The threshold constant.
    pub count: usize,
}

/// A boolean combination of threshold atoms over children-state counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// Always satisfied.
    True,
    /// Never satisfied.
    False,
    /// At least `count` children carry a state of `states`.
    AtLeast(CountAtom),
    /// At most `count` children carry a state of `states`.
    AtMost(CountAtom),
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// "Exactly `count` children carry a state of `states`."
    pub fn exactly(states: u64, count: usize) -> Guard {
        Guard::And(
            Box::new(Guard::AtLeast(CountAtom { states, count })),
            Box::new(Guard::AtMost(CountAtom { states, count })),
        )
    }

    /// "No child at all" (leaf guard), given the total number of states.
    pub fn leaf(num_states: usize) -> Guard {
        Guard::AtMost(CountAtom {
            states: mask_all(num_states),
            count: 0,
        })
    }

    /// Evaluates the guard against per-state children counts (uncapped;
    /// sums saturate internally).
    pub fn eval(&self, counts: &[usize]) -> bool {
        match self {
            Guard::True => true,
            Guard::False => false,
            Guard::AtLeast(a) => set_count(counts, a.states) >= a.count,
            Guard::AtMost(a) => set_count(counts, a.states) <= a.count,
            Guard::Not(g) => !g.eval(counts),
            Guard::And(a, b) => a.eval(counts) && b.eval(counts),
            Guard::Or(a, b) => a.eval(counts) || b.eval(counts),
        }
    }

    /// Largest constant appearing in the guard.
    pub fn max_constant(&self) -> usize {
        match self {
            Guard::True | Guard::False => 0,
            Guard::AtLeast(a) | Guard::AtMost(a) => a.count,
            Guard::Not(g) => g.max_constant(),
            Guard::And(a, b) | Guard::Or(a, b) => a.max_constant().max(b.max_constant()),
        }
    }

    /// Largest state index referenced (None if no atom).
    fn max_state(&self) -> Option<usize> {
        match self {
            Guard::True | Guard::False => None,
            Guard::AtLeast(a) | Guard::AtMost(a) => {
                if a.states == 0 {
                    None
                } else {
                    Some(63 - a.states.leading_zeros() as usize)
                }
            }
            Guard::Not(g) => g.max_state(),
            Guard::And(a, b) | Guard::Or(a, b) => a.max_state().max(b.max_state()),
        }
    }

    /// Rewrites every atom's state set through `f` (used by products).
    fn map_states(&self, f: &impl Fn(u64) -> u64) -> Guard {
        match self {
            Guard::True => Guard::True,
            Guard::False => Guard::False,
            Guard::AtLeast(a) => Guard::AtLeast(CountAtom {
                states: f(a.states),
                count: a.count,
            }),
            Guard::AtMost(a) => Guard::AtMost(CountAtom {
                states: f(a.states),
                count: a.count,
            }),
            Guard::Not(g) => Guard::Not(Box::new(g.map_states(f))),
            Guard::And(a, b) => Guard::And(Box::new(a.map_states(f)), Box::new(b.map_states(f))),
            Guard::Or(a, b) => Guard::Or(Box::new(a.map_states(f)), Box::new(b.map_states(f))),
        }
    }
}

fn mask_all(num_states: usize) -> u64 {
    if num_states >= 64 {
        u64::MAX
    } else {
        (1u64 << num_states) - 1
    }
}

fn set_count(counts: &[usize], states: u64) -> usize {
    counts
        .iter()
        .enumerate()
        .filter(|&(q, _)| states & (1u64 << q) != 0)
        .map(|(_, &c)| c)
        .sum()
}

/// A rooted tree whose nodes carry labels from `0..num_labels`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledTree {
    tree: RootedTree,
    labels: Vec<usize>,
    num_labels: usize,
}

impl LabeledTree {
    /// Pairs a rooted tree with labels.
    ///
    /// Returns `None` if `labels` has the wrong length or a label is out
    /// of range.
    pub fn new(tree: RootedTree, labels: Vec<usize>, num_labels: usize) -> Option<Self> {
        if labels.len() != tree.num_nodes() || labels.iter().any(|&l| l >= num_labels) {
            return None;
        }
        Some(LabeledTree {
            tree,
            labels,
            num_labels,
        })
    }

    /// An unlabeled tree (every node labeled 0).
    pub fn unlabeled(tree: RootedTree) -> Self {
        let n = tree.num_nodes();
        LabeledTree {
            tree,
            labels: vec![0; n],
            num_labels: 1,
        }
    }

    /// The underlying rooted tree.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The label of node `v`.
    pub fn label(&self, v: NodeId) -> usize {
        self.labels[v.0]
    }

    /// Number of distinct labels.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }
}

/// An unranked–unordered bottom-up tree automaton with counting guards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeAutomaton {
    num_states: usize,
    num_labels: usize,
    /// `guards[state][label]`.
    guards: Vec<Vec<Guard>>,
    accepting: Vec<bool>,
}

impl TreeAutomaton {
    /// Builds an automaton, validating dimensions and state references.
    ///
    /// Returns `None` on ragged guard tables, out-of-range states in
    /// atoms, or more than 64 states.
    pub fn new(
        num_states: usize,
        num_labels: usize,
        guards: Vec<Vec<Guard>>,
        accepting: Vec<bool>,
    ) -> Option<Self> {
        if num_states == 0
            || num_states > 64
            || guards.len() != num_states
            || accepting.len() != num_states
        {
            return None;
        }
        for row in &guards {
            if row.len() != num_labels {
                return None;
            }
            for g in row {
                if let Some(ms) = g.max_state() {
                    if ms >= num_states {
                        return None;
                    }
                }
            }
        }
        Some(TreeAutomaton {
            num_states,
            num_labels,
            guards,
            accepting,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Whether `state` accepts at the root.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The guard of `(state, label)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn guard(&self, state: usize, label: usize) -> &Guard {
        &self.guards[state][label]
    }

    /// The saturation cap: all guard constants are `≤ cap`, and counting
    /// to `cap` decides every atom.
    pub fn cap(&self) -> usize {
        self.guards
            .iter()
            .flatten()
            .map(Guard::max_constant)
            .max()
            .unwrap_or(0)
    }

    /// Checks a full run: `states[v]` for every node, local correctness at
    /// every node, acceptance at the root.
    pub fn is_accepting_run(&self, t: &LabeledTree, states: &[usize]) -> bool {
        if states.len() != t.tree().num_nodes() || t.num_labels() > self.num_labels {
            return false;
        }
        if states.iter().any(|&q| q >= self.num_states) {
            return false;
        }
        for v in 0..states.len() {
            let v = NodeId(v);
            let mut counts = vec![0usize; self.num_states];
            for &c in t.tree().children(v) {
                counts[states[c.0]] += 1;
            }
            if !self.guards[states[v.0]][t.label(v)].eval(&counts) {
                return false;
            }
        }
        self.accepting[states[t.tree().root().0]]
    }

    /// The set of feasible states for every node (bottom-up
    /// nondeterministic evaluation), as bitmasks.
    ///
    /// A state `q` is feasible at node `v` if the children can each pick a
    /// feasible state such that `δ(q, label(v))` holds on the resulting
    /// counts. The existential choice is decided by a DP over capped count
    /// vectors.
    pub fn feasible_states(&self, t: &LabeledTree) -> Vec<u64> {
        let n = t.tree().num_nodes();
        let cap = self.cap();
        let mut feasible = vec![0u64; n];
        for v in t.tree().postorder() {
            let kids = t.tree().children(v);
            let vectors = self.reachable_count_vectors(kids, &feasible, cap);
            let label = t.label(v);
            for q in 0..self.num_states {
                if vectors
                    .iter()
                    .any(|vec| self.guards[q][label].eval(&to_usize(vec)))
                {
                    feasible[v.0] |= 1u64 << q;
                }
            }
        }
        feasible
    }

    /// All capped count vectors reachable by assigning each child one of
    /// its feasible states.
    fn reachable_count_vectors(
        &self,
        kids: &[NodeId],
        feasible: &[u64],
        cap: usize,
    ) -> Vec<Vec<u8>> {
        let mut set: Vec<Vec<u8>> = vec![vec![0u8; self.num_states]];
        for &c in kids {
            let mut next: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
            for vec in &set {
                for q in 0..self.num_states {
                    if feasible[c.0] & (1u64 << q) != 0 {
                        let mut w = vec.clone();
                        w[q] = w[q].saturating_add(1).min(cap as u8 + 1);
                        next.insert(w);
                    }
                }
            }
            set = next.into_iter().collect();
            if set.is_empty() {
                break;
            }
        }
        set
    }

    /// Whether the automaton accepts `t`.
    pub fn accepts(&self, t: &LabeledTree) -> bool {
        let feasible = self.feasible_states(t);
        let root = t.tree().root();
        (0..self.num_states).any(|q| feasible[root.0] & (1u64 << q) != 0 && self.accepting[q])
    }

    /// An accepting run (state per node), if one exists. This is exactly
    /// the certificate of Theorem 2.2.
    pub fn accepting_run(&self, t: &LabeledTree) -> Option<Vec<usize>> {
        let n = t.tree().num_nodes();
        let feasible = self.feasible_states(t);
        let root = t.tree().root();
        let root_state = (0..self.num_states)
            .find(|&q| feasible[root.0] & (1u64 << q) != 0 && self.accepting[q])?;
        let mut states = vec![usize::MAX; n];
        states[root.0] = root_state;
        // Top-down: each node's state is fixed; choose children states.
        let mut order = t.tree().postorder();
        order.reverse(); // parents before children.
        let cap = self.cap();
        for v in order {
            let q = states[v.0];
            debug_assert_ne!(q, usize::MAX);
            let kids = t.tree().children(v);
            if kids.is_empty() {
                continue;
            }
            let choice = self
                .choose_child_states(kids, &feasible, &self.guards[q][t.label(v)], cap)
                .expect("feasibility promised a satisfying choice");
            for (i, &c) in kids.iter().enumerate() {
                states[c.0] = choice[i];
            }
        }
        debug_assert!(self.is_accepting_run(t, &states));
        Some(states)
    }

    /// Finds one per-child state choice satisfying `guard`, via the count
    /// DP with parent pointers.
    fn choose_child_states(
        &self,
        kids: &[NodeId],
        feasible: &[u64],
        guard: &Guard,
        cap: usize,
    ) -> Option<Vec<usize>> {
        // layer i: map vector -> (prev vector, chosen state).
        type Layer = HashMap<Vec<u8>, (Vec<u8>, usize)>;
        let mut layers: Vec<Layer> = Vec::new();
        let zero = vec![0u8; self.num_states];
        let mut current: Vec<Vec<u8>> = vec![zero.clone()];
        for &c in kids {
            let mut layer = HashMap::new();
            for vec in &current {
                for q in 0..self.num_states {
                    if feasible[c.0] & (1u64 << q) != 0 {
                        let mut w = vec.clone();
                        w[q] = w[q].saturating_add(1).min(cap as u8 + 1);
                        layer.entry(w).or_insert_with(|| (vec.clone(), q));
                    }
                }
            }
            current = layer.keys().cloned().collect();
            layers.push(layer);
        }
        let target = current.into_iter().find(|vec| guard.eval(&to_usize(vec)))?;
        // Walk back the layers.
        let mut choice = vec![usize::MAX; kids.len()];
        let mut cur = target;
        for i in (0..kids.len()).rev() {
            let (prev, q) = layers[i].get(&cur)?.clone();
            choice[i] = q;
            cur = prev;
        }
        Some(choice)
    }

    /// Product automaton; `combine` merges acceptance.
    ///
    /// # Panics
    ///
    /// Panics if label counts differ or the product exceeds 64 states.
    pub fn product(
        &self,
        other: &TreeAutomaton,
        combine: impl Fn(bool, bool) -> bool,
    ) -> TreeAutomaton {
        assert_eq!(self.num_labels, other.num_labels, "label alphabet mismatch");
        let n = self.num_states * other.num_states;
        assert!(n <= 64, "product exceeds 64 states");
        let code = |a: usize, b: usize| a * other.num_states + b;
        // Atom rewriting: a set S of A-states becomes the set of product
        // states whose A-component is in S (and symmetrically).
        let lift_a = |s: u64| {
            let mut out = 0u64;
            for a in 0..self.num_states {
                if s & (1u64 << a) != 0 {
                    for b in 0..other.num_states {
                        out |= 1u64 << code(a, b);
                    }
                }
            }
            out
        };
        let lift_b = |s: u64| {
            let mut out = 0u64;
            for b in 0..other.num_states {
                if s & (1u64 << b) != 0 {
                    for a in 0..self.num_states {
                        out |= 1u64 << code(a, b);
                    }
                }
            }
            out
        };
        let mut guards = Vec::with_capacity(n);
        let mut accepting = vec![false; n];
        for a in 0..self.num_states {
            for b in 0..other.num_states {
                let mut row = Vec::with_capacity(self.num_labels);
                for l in 0..self.num_labels {
                    row.push(Guard::And(
                        Box::new(self.guards[a][l].map_states(&lift_a)),
                        Box::new(other.guards[b][l].map_states(&lift_b)),
                    ));
                }
                guards.push(row);
                accepting[code(a, b)] = combine(self.accepting[a], other.accepting[b]);
            }
        }
        TreeAutomaton {
            num_states: n,
            num_labels: self.num_labels,
            guards,
            accepting,
        }
    }

    /// Intersection of the recognized tree languages.
    pub fn intersect(&self, other: &TreeAutomaton) -> TreeAutomaton {
        self.product(other, |a, b| a && b)
    }

    /// Union of the recognized tree languages.
    ///
    /// Correct when both automata are complete (every tree has at least
    /// one run in each) — which [`TreeAutomaton::is_deterministic`]
    /// automata are; for incomplete nondeterministic automata use
    /// completion first.
    pub fn union_complete(&self, other: &TreeAutomaton) -> TreeAutomaton {
        self.product(other, |a, b| a || b)
    }

    /// Complement by flipping acceptance. **Only sound for deterministic
    /// complete automata** (checked in debug builds when feasible).
    pub fn complement_deterministic(&self) -> TreeAutomaton {
        let mut c = self.clone();
        for a in &mut c.accepting {
            *a = !*a;
        }
        c
    }

    /// Whether the automaton is deterministic and complete over *all*
    /// capped count vectors: for every label and every capped vector,
    /// exactly one state's guard holds.
    ///
    /// This is stronger than determinism on reachable configurations but
    /// is exactly the discipline the [`crate::library`] automata follow,
    /// and it licenses [`TreeAutomaton::complement_deterministic`] and
    /// [`TreeAutomaton::union_complete`].
    ///
    /// # Panics
    ///
    /// Panics if the enumeration `(cap+2)^{num_states}` exceeds `10^7`
    /// vectors.
    pub fn is_deterministic(&self) -> bool {
        let cap = self.cap();
        let base = cap + 2;
        let total = (base as f64).powi(self.num_states as i32);
        assert!(total <= 1e7, "determinism check domain too large");
        let mut vec = vec![0usize; self.num_states];
        loop {
            for l in 0..self.num_labels {
                let holds = (0..self.num_states)
                    .filter(|&q| self.guards[q][l].eval(&vec))
                    .count();
                if holds != 1 {
                    return false;
                }
            }
            // Increment the mixed-radix vector.
            let mut i = 0;
            loop {
                if i == self.num_states {
                    return true;
                }
                vec[i] += 1;
                if vec[i] < base {
                    break;
                }
                vec[i] = 0;
                i += 1;
            }
        }
    }
}

fn to_usize(v: &[u8]) -> Vec<usize> {
    v.iter().map(|&x| x as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locert_graph::{generators, Graph};

    fn rooted(g: &Graph, r: usize) -> RootedTree {
        RootedTree::from_tree(g, NodeId(r)).unwrap()
    }

    /// Single-state automaton accepting every tree.
    fn accept_all() -> TreeAutomaton {
        TreeAutomaton::new(1, 1, vec![vec![Guard::True]], vec![true]).unwrap()
    }

    /// Two-state automaton: state 0 = leaf, state 1 = internal.
    fn leaf_or_internal() -> TreeAutomaton {
        let all = mask_all(2);
        TreeAutomaton::new(
            2,
            1,
            vec![
                vec![Guard::leaf(2)],
                vec![Guard::AtLeast(CountAtom {
                    states: all,
                    count: 1,
                })],
            ],
            vec![false, true],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(TreeAutomaton::new(0, 1, vec![], vec![]).is_none());
        assert!(TreeAutomaton::new(1, 1, vec![vec![]], vec![true]).is_none());
        assert!(TreeAutomaton::new(
            1,
            1,
            vec![vec![Guard::AtLeast(CountAtom {
                states: 1 << 5,
                count: 1
            })]],
            vec![true]
        )
        .is_none());
    }

    #[test]
    fn accept_all_accepts() {
        let t = LabeledTree::unlabeled(rooted(&generators::star(5), 0));
        assert!(accept_all().accepts(&t));
    }

    #[test]
    fn leaf_or_internal_classifies_roots() {
        let a = leaf_or_internal();
        let single = LabeledTree::unlabeled(rooted(&Graph::empty(1), 0));
        assert!(!a.accepts(&single)); // root is a leaf: state 0, rejecting.
        let star = LabeledTree::unlabeled(rooted(&generators::star(4), 0));
        assert!(a.accepts(&star));
    }

    #[test]
    fn feasible_states_and_run_agree() {
        let a = leaf_or_internal();
        let t = LabeledTree::unlabeled(rooted(&generators::path(5), 0));
        let run = a.accepting_run(&t).unwrap();
        assert!(a.is_accepting_run(&t, &run));
        // Leaves get state 0, internals state 1.
        assert_eq!(run[4], 0);
        assert_eq!(run[0], 1);
    }

    #[test]
    fn is_accepting_run_rejects_corrupted_runs() {
        let a = leaf_or_internal();
        let t = LabeledTree::unlabeled(rooted(&generators::path(3), 0));
        let mut run = a.accepting_run(&t).unwrap();
        run[1] = 0; // middle vertex forged as leaf.
        assert!(!a.is_accepting_run(&t, &run));
        // Wrong length.
        assert!(!a.is_accepting_run(&t, &[1, 1]));
        // Out-of-range state.
        assert!(!a.is_accepting_run(&t, &[7, 0, 0]));
    }

    #[test]
    fn guard_eval_thresholds() {
        let g = Guard::exactly(0b01, 2);
        assert!(g.eval(&[2, 5]));
        assert!(!g.eval(&[1, 0]));
        assert!(!g.eval(&[3, 0]));
        let h = Guard::Or(
            Box::new(Guard::AtLeast(CountAtom {
                states: 0b10,
                count: 1,
            })),
            Box::new(Guard::AtMost(CountAtom {
                states: 0b11,
                count: 0,
            })),
        );
        assert!(h.eval(&[0, 1]));
        assert!(h.eval(&[0, 0]));
        assert!(!h.eval(&[1, 0]));
    }

    #[test]
    fn product_intersection() {
        // accept_all ∩ leaf_or_internal ≡ leaf_or_internal.
        let p = accept_all().intersect(&leaf_or_internal());
        for g in [generators::star(4), generators::path(6)] {
            let t = LabeledTree::unlabeled(rooted(&g, 0));
            assert_eq!(p.accepts(&t), leaf_or_internal().accepts(&t));
        }
    }

    #[test]
    fn deterministic_complement() {
        let a = leaf_or_internal();
        assert!(a.is_deterministic());
        let c = a.complement_deterministic();
        let single = LabeledTree::unlabeled(rooted(&Graph::empty(1), 0));
        assert!(c.accepts(&single));
        let star = LabeledTree::unlabeled(rooted(&generators::star(4), 0));
        assert!(!c.accepts(&star));
    }

    #[test]
    fn nondeterministic_automaton_guessing() {
        // Accepts trees with some leaf at depth exactly 2 below the root:
        // states: 0 = Off, 1 = On0 (chosen leaf), 2 = On1, 3 = On2 (root).
        let off = 0u64;
        let _ = off;
        let guards = vec![
            // Off: all children Off or On-chains not ending here — children
            // must all be Off (the marked path is unique and goes through
            // one chain).
            vec![Guard::AtMost(CountAtom {
                states: 0b1110,
                count: 0,
            })],
            // On0: a leaf.
            vec![Guard::leaf(4)],
            // On1: exactly one On0 child, no other On.
            vec![Guard::And(
                Box::new(Guard::exactly(0b0010, 1)),
                Box::new(Guard::AtMost(CountAtom {
                    states: 0b1100,
                    count: 0,
                })),
            )],
            // On2: exactly one On1 child, no other On.
            vec![Guard::And(
                Box::new(Guard::exactly(0b0100, 1)),
                Box::new(Guard::AtMost(CountAtom {
                    states: 0b1010,
                    count: 0,
                })),
            )],
        ];
        let a = TreeAutomaton::new(4, 1, guards, vec![false, false, false, true]).unwrap();
        // Star: all leaves at depth 1 → reject.
        let star = LabeledTree::unlabeled(rooted(&generators::star(5), 0));
        assert!(!a.accepts(&star));
        // Path of 3 rooted at an end: leaf at depth 2 → accept.
        let p3 = LabeledTree::unlabeled(rooted(&generators::path(3), 0));
        assert!(a.accepts(&p3));
        // Path of 4 rooted at an end: single leaf at depth 3 → reject.
        let p4 = LabeledTree::unlabeled(rooted(&generators::path(4), 0));
        assert!(!a.accepts(&p4));
        // Spider with legs of length 2: accept, and a run exists.
        let sp = LabeledTree::unlabeled(rooted(&generators::spider(3, 2), 0));
        assert!(a.accepts(&sp));
        let run = a.accepting_run(&sp).unwrap();
        assert!(a.is_accepting_run(&sp, &run));
    }

    #[test]
    fn labels_affect_acceptance() {
        // Accept iff the root's label is 1 (guards: state 0 only from
        // label-0 nodes, state 1 only from label-1 nodes).
        let guards = vec![
            vec![Guard::True, Guard::False],
            vec![Guard::False, Guard::True],
        ];
        let a = TreeAutomaton::new(2, 2, guards, vec![false, true]).unwrap();
        let tree = rooted(&generators::star(3), 0);
        let t1 = LabeledTree::new(tree.clone(), vec![1, 0, 0], 2).unwrap();
        assert!(a.accepts(&t1));
        let t0 = LabeledTree::new(tree, vec![0, 1, 1], 2).unwrap();
        assert!(!a.accepts(&t0));
    }

    #[test]
    fn labeled_tree_validation() {
        let tree = rooted(&generators::path(3), 0);
        assert!(LabeledTree::new(tree.clone(), vec![0, 1], 2).is_none());
        assert!(LabeledTree::new(tree.clone(), vec![0, 1, 5], 2).is_none());
        assert!(LabeledTree::new(tree, vec![0, 1, 1], 2).is_some());
    }

    #[test]
    fn cap_saturation_is_sound() {
        // Guard "at least 3 children in state 0" on a node with many
        // children: capped counting must still fire.
        let g = Guard::AtLeast(CountAtom {
            states: 0b1,
            count: 3,
        });
        let a = TreeAutomaton::new(2, 1, vec![vec![Guard::leaf(2)], vec![g]], vec![false, true])
            .unwrap();
        let big_star = LabeledTree::unlabeled(rooted(&generators::star(10), 0));
        assert!(a.accepts(&big_star));
        let small_star = LabeledTree::unlabeled(rooted(&generators::star(3), 0));
        assert!(!a.accepts(&small_star));
    }
}
