//! Lower bounds via two-party nondeterministic communication complexity
//! (Section 7 of the paper).
//!
//! The pipeline has three layers:
//!
//! 1. [`cc`]: the nondeterministic EQUALITY problem, the Theorem 7.1
//!    bound (a protocol needs `Ω(ℓ)` certificate bits), and the
//!    *fooling-set attack* that constructively breaks any too-short
//!    protocol;
//! 2. [`framework`]: the Section 7.1 reduction framework — gadget graphs
//!    `G(s_A, s_B)` partitioned into `V_A ∪ V_α ∪ V_β ∪ V_B`, and the
//!    Proposition 7.2 simulation turning any local verifier into an
//!    EQUALITY protocol whose certificate holds only the `V_α ∪ V_β`
//!    labels;
//! 3. the two instantiations: [`automorphism`] (Theorem 2.3:
//!    fixed-point-free automorphism needs `Ω̃(n)` bits on bounded-depth
//!    trees) and [`treedepth_gadget`] (Theorem 2.5: treedepth ≤ 5 needs
//!    `Ω(log n)` bits), plus the [`bounds`] calculators that evaluate the
//!    `Ω(ℓ/r)` rates.

pub mod automorphism;
pub mod bounds;
pub mod cc;
pub mod framework;
pub mod treedepth_gadget;
